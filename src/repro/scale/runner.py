"""Execute a multi-tenant :class:`~repro.scale.scenario.Scenario`.

One simulated machine serves *traffic*: every tenant gets its own PFS
mount (namespace) and a private striping window over the shared I/O
nodes; every job is a cohort of rank processes that wakes at its seeded
arrival offset, opens its own file(s), reads to completion in the
tenant's I/O mode, and closes.  Jobs overlap freely -- the machine runs
once, to quiescence, with all cohorts live -- which is exactly the
regime the single-job experiments never enter.

Determinism: arrivals are pure functions of the scenario seed, client
assignment and file placement are functions of declaration order, and
the machine's canonical same-timestamp arbitration does the rest, so a
:class:`ScenarioResult` fingerprint is bit-identical under either
tie-break order and across the in-process vs. sharded runner
(:mod:`repro.scale.shard`).  Fault-free tenants keep the PR 6 fast
kernel engaged; nothing here schedules wall-clock-dependent events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.sanitizers import report_fingerprint
from repro.config import MachineConfig, PFSConfig
from repro.machine import Machine
from repro.obs.fairness import MB, FairnessReport
from repro.pfs.stripe import StripeAttributes
from repro.scale.scenario import KB, Scenario, Tenant
from repro.workloads.tenant import ArrivalDrivenJob


class ScenarioError(AssertionError):
    """A scenario run violated a machine invariant or lost a job."""


@dataclass
class JobSpan:
    """One job's lifecycle timestamps (simulated seconds)."""

    tenant: str
    job: int
    arrival_s: float
    #: When the whole cohort finished opening (reads begin here).
    opened_s: float
    #: When the last rank finished its reads (closes follow).
    finished_s: float


@dataclass
class ScenarioResult:
    """Everything a scenario run measured, fingerprint-stable.

    Compared fields feed
    :func:`repro.analysis.sanitizers.report_fingerprint`; the attached
    machine (``compare=False``) is for post-hoc inspection only.
    """

    scenario: str
    n_compute: int
    n_io: int
    seed: int
    total_bytes: int
    #: Last read completion minus first job arrival.
    elapsed_s: float
    #: Whole-machine delivered bandwidth over the traffic window.
    aggregate_bandwidth_mbps: float
    fairness: FairnessReport
    jobs: Tuple[JobSpan, ...]
    machine: Optional[Machine] = field(default=None, compare=False, repr=False)

    @property
    def jain(self) -> float:
        return self.fairness.jain

    def fingerprint(self) -> str:
        return report_fingerprint(self)

    def to_jsonable(self) -> dict:
        return {
            "scenario": self.scenario,
            "nodes": self.n_compute + self.n_io,
            "n_compute": self.n_compute,
            "n_io": self.n_io,
            "jobs": len(self.jobs),
            "total_bytes": self.total_bytes,
            "elapsed_s": round(self.elapsed_s, 6),
            "aggregate_bandwidth_mbps": round(self.aggregate_bandwidth_mbps, 4),
            "jain_index": round(self.jain, 6),
            "fairness": self.fairness.to_jsonable(),
            "fingerprint": self.fingerprint(),
        }


def tenant_stripe_windows(scenario: Scenario) -> Dict[str, Tuple[int, ...]]:
    """Each tenant's striping window over the shared I/O nodes.

    Tenants without an explicit ``stripe_base`` are packed onto
    consecutive disjoint windows (wrapping at ``n_io``) so homogeneous
    scale-out traffic spreads across every server; an explicit base pins
    the tenant (overlapping bases are how contention cells are built).
    A mount's *default* attrs would put every tenant on I/O nodes
    ``0..factor-1`` -- the one placement that cannot scale -- so the
    runner always passes these windows explicitly per file.
    """
    windows: Dict[str, Tuple[int, ...]] = {}
    cursor = 0
    for tenant in scenario.tenants:
        base = tenant.stripe_base if tenant.stripe_base is not None else cursor % scenario.n_io
        windows[tenant.name] = tuple(
            (base + j) % scenario.n_io for j in range(tenant.stripe_factor)
        )
        if tenant.stripe_base is None:
            cursor += tenant.stripe_factor
    return windows


def job_clients(scenario: Scenario) -> Dict[Tuple[str, int], Tuple[int, ...]]:
    """Compute-node (client) indices for every ``(tenant, job)``.

    Tenant *i* of *n* anchors at compute node ``i * n_compute // n``;
    its jobs claim consecutive runs of ``nprocs`` clients from there
    (mod ``n_compute``).  Proportional anchoring matters on big meshes:
    it keeps each tenant's compute column aligned with its striping
    window's I/O column, so mesh distance stays O(stripe factor) as the
    machine grows -- a naive packed cursor puts high-index tenants
    hundreds of columns from their servers and per-hop latency alone
    destroys fairness.  The map is a pure function of the scenario
    (never of arrival order, tie-break, or which worker runs the cell).
    """
    placement: Dict[Tuple[str, int], Tuple[int, ...]] = {}
    n_compute = scenario.n_compute
    n_tenants = len(scenario.tenants)
    for index, tenant in enumerate(scenario.tenants):
        base = (index * n_compute) // n_tenants
        for job in range(tenant.n_jobs):
            start = base + job * tenant.nprocs
            placement[(tenant.name, job)] = tuple(
                (start + r) % n_compute for r in range(tenant.nprocs)
            )
    return placement


def job_filename(tenant: Tenant, job: int, index: int) -> str:
    return f"{tenant.name}-j{job}-f{index}"


def run_scenario(
    scenario: Scenario,
    *,
    faults=None,
    attribute_interference: bool = False,
    keep_machine: bool = False,
    verify: bool = True,
) -> ScenarioResult:
    """Run *scenario* on one fresh machine; returns the measured result.

    ``faults`` attaches a :class:`~repro.faults.plan.FaultPlan` to the
    machine (the scenario schema itself stays fault-free; crash-window
    campaigns inject plans from the test harness).  With
    ``attribute_interference=True`` every tenant is additionally raced
    *alone* on its own fresh machine and
    ``result.fairness.interference[tenant]`` reports the solo/shared
    bandwidth ratio (>= 1: the tenant ran slower under contention);
    the extra runs never touch the primary result's fingerprint.
    """
    config = MachineConfig(
        n_compute=scenario.n_compute,
        n_io=scenario.n_io,
        tie_break=scenario.tie_break,
        telemetry=scenario.telemetry,
        block_size=scenario.block_kb * KB,
        faults=faults,
    )
    machine = Machine(config)
    windows = tenant_stripe_windows(scenario)
    placement = job_clients(scenario)

    # -- namespaces and files (setup time, no simulated cost) ---------------
    mounts = {}
    for tenant in scenario.tenants:
        mount = machine.mount(
            f"/{tenant.name}",
            PFSConfig(
                stripe_unit=tenant.stripe_unit_kb * KB,
                stripe_factor=tenant.stripe_factor,
            ),
        )
        mounts[tenant.name] = mount
        window = windows[tenant.name]
        for job in range(tenant.n_jobs):
            for index in range(tenant.files_per_job):
                # Rotate first-stripe placement within the tenant's
                # window so a population of files spreads evenly.
                serial = job * tenant.files_per_job + index
                machine.create_file(
                    mount,
                    job_filename(tenant, job, index),
                    tenant.file_size_bytes,
                    attrs=StripeAttributes(
                        stripe_unit=tenant.stripe_unit_kb * KB,
                        stripe_group=window,
                        rotation=serial % tenant.stripe_factor,
                    ),
                )

    # -- job cohorts --------------------------------------------------------
    jobs: Dict[Tuple[str, int], ArrivalDrivenJob] = {}
    first_arrival = None
    for tenant in scenario.tenants:
        offsets = tenant.start_offsets(scenario.seed)
        for job_index, arrival_s in enumerate(offsets):
            prefetcher_factory = (
                (
                    lambda rank, t=tenant: machine.build_prefetcher(
                        rank, policy=t.prefetch_policy, depth=t.prefetch_depth
                    )
                )
                if tenant.prefetch
                else None
            )
            job = ArrivalDrivenJob(
                machine,
                mounts[tenant.name],
                [
                    job_filename(tenant, job_index, index)
                    for index in range(tenant.files_per_job)
                ],
                tenant.mode,
                request_size=tenant.request_bytes,
                rounds=tenant.rounds,
                clients=[machine.clients[c] for c in placement[(tenant.name, job_index)]],
                arrival_s=arrival_s,
                compute_delay_s=tenant.compute_delay_s,
                prefetcher_factory=prefetcher_factory,
                name=f"{tenant.name}-j{job_index}",
            )
            jobs[(tenant.name, job_index)] = job
            job.spawn()
            if first_arrival is None or arrival_s < first_arrival:
                first_arrival = arrival_s

    if scenario.telemetry:
        # Per-tenant telemetry labels: each probe sums over the tenant's
        # job handles (handles accumulate as cohorts open; closed
        # handles keep their stats).  Pull-based -- no events, so
        # enabling telemetry never moves a fingerprint.
        for tenant in scenario.tenants:
            tenant_jobs = [jobs[key] for key in sorted(jobs) if key[0] == tenant.name]
            label = {"tenant": tenant.name}
            machine.obs.telemetry.register_probe(
                "tenant_bytes_read",
                lambda js=tenant_jobs: float(sum(job.bytes_read for job in js)),
                labels=label,
                help="Bytes delivered to this tenant's read calls",
                kind="counter",
            )
            machine.obs.telemetry.register_probe(
                "tenant_read_calls",
                lambda js=tenant_jobs: float(
                    sum(h.stats.read_calls for job in js for h in job.handles)
                ),
                labels=label,
                help="Read calls completed by this tenant",
                kind="counter",
            )

    machine.run()

    # -- settle -------------------------------------------------------------
    incomplete = [key for key in sorted(jobs) if not jobs[key].completed]
    if incomplete:
        raise ScenarioError(f"jobs never finished reading: {incomplete}")
    if verify:
        problems = machine.verify()
        if problems:
            raise ScenarioError("; ".join(problems))

    fairness = FairnessReport()
    for tenant in scenario.tenants:
        usage = fairness.usage(tenant.name)
        usage.jobs = tenant.n_jobs
        for key in sorted(jobs):
            if key[0] != tenant.name:
                continue
            for handle in jobs[key].handles:
                usage.record(handle.stats.bytes_read, handle.stats.call_durations)

    spans = {
        key: JobSpan(
            tenant=key[0],
            job=key[1],
            arrival_s=jobs[key].arrival_s,
            opened_s=jobs[key].opened_s,
            finished_s=jobs[key].finished_s,
        )
        for key in sorted(jobs)
    }
    last_finish = max(spans[key].finished_s for key in sorted(spans))
    elapsed_s = last_finish - (first_arrival or 0.0)
    total_bytes = fairness.total_bytes
    result = ScenarioResult(
        scenario=scenario.name,
        n_compute=scenario.n_compute,
        n_io=scenario.n_io,
        seed=scenario.seed,
        total_bytes=total_bytes,
        elapsed_s=elapsed_s,
        aggregate_bandwidth_mbps=(total_bytes / elapsed_s) / MB if elapsed_s > 0 else 0.0,
        fairness=fairness,
        jobs=tuple(spans[key] for key in sorted(spans)),
        machine=machine if keep_machine else None,
    )

    if attribute_interference:
        interference: Dict[str, float] = {}
        for tenant in scenario.tenants:
            solo = run_scenario(scenario.only(tenant.name), verify=verify)
            shared_bw = fairness.tenants[tenant.name].bandwidth_mbps
            solo_bw = solo.fairness.tenants[tenant.name].bandwidth_mbps
            interference[tenant.name] = solo_bw / shared_bw if shared_bw > 0 else 0.0
        result.fairness.interference = interference

    return result
