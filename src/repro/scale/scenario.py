"""Declarative multi-tenant scenarios: tenants, arrivals, machine shape.

A :class:`Scenario` describes *traffic* rather than one collective: a
machine size (the paper stops at 8+8 nodes; here 16 up to 2048), a set
of :class:`Tenant`\\ s -- each a population of jobs in one PFS I/O mode
with its own files, striping window, prefetch policy and
:class:`ArrivalProcess` -- and a seed.  Scenarios are plain frozen
dataclasses, JSON-loadable (``Scenario.from_json`` /
``Scenario.load``), and **zero wall-clock**: arrival offsets are a pure
function of ``(seed, tenant, job)`` via SHA-256-derived uniforms, so
the same scenario file always produces the same simulated schedule on
any machine, under either tie-break order.

The execution semantics (one simulated machine, per-tenant mounts and
stripe windows, cohort-per-job processes) live in
:mod:`repro.scale.runner`; this module is the schema.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.core.policies import POLICY_NAMES
from repro.pfs.modes import IOMode

KB = 1024

#: Supported arrival-process kinds.
ARRIVAL_KINDS = ("staggered", "uniform", "poisson")

#: The mixed-mode rotation used by :func:`mixed_scenario` (the modes the
#: ROADMAP names for multi-tenant traffic).
MIXED_MODES = ("M_RECORD", "M_SYNC", "M_UNIX", "M_ASYNC")


def unit_uniform(seed: int, stream: str, k: int) -> float:
    """Deterministic uniform in [0, 1): SHA-256 of ``seed:stream:k``.

    Process-, platform- and wall-clock-independent (unlike ``hash()``
    or ``random`` global state), so seeded arrivals are reproducible
    across the sharded runner's worker processes.
    """
    digest = hashlib.sha256(f"{seed}:{stream}:{k}".encode("utf-8")).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


@dataclass(frozen=True)
class ArrivalProcess:
    """When a tenant's jobs start, in simulated seconds.

    - ``staggered``: job *i* starts at ``start_s + i * interval_s``
      (deterministic ramps; ``interval_s=0`` means all at once);
    - ``uniform``: jobs land uniformly at random in
      ``[start_s, start_s + interval_s)``, sorted;
    - ``poisson``: exponential inter-arrivals with mean ``interval_s``
      after ``start_s`` (the aggregated-users stand-in).

    Offsets are rounded to nanoseconds so the schedule is a stable
    finite decimal in JSON round-trips.
    """

    kind: str = "staggered"
    start_s: float = 0.0
    interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(f"arrival kind must be one of {ARRIVAL_KINDS}, got {self.kind!r}")
        if self.start_s < 0:
            raise ValueError("arrival start must be non-negative")
        if self.interval_s < 0:
            raise ValueError("arrival interval must be non-negative")

    def offsets(self, n_jobs: int, seed: int, stream: str) -> Tuple[float, ...]:
        """The start offset of every job, seeded and wall-clock-free."""
        if self.kind == "staggered":
            raw = [self.start_s + i * self.interval_s for i in range(n_jobs)]
        elif self.kind == "uniform":
            raw = sorted(
                self.start_s + unit_uniform(seed, f"{stream}:uniform", i) * self.interval_s
                for i in range(n_jobs)
            )
        else:  # poisson
            raw = []
            t = self.start_s
            for i in range(n_jobs):
                u = unit_uniform(seed, f"{stream}:poisson", i)
                t += -self.interval_s * math.log(1.0 - u)
                raw.append(t)
        return tuple(round(t, 9) for t in raw)


@dataclass(frozen=True)
class Tenant:
    """One tenant: a population of jobs sharing mode, files and policy.

    Each *job* is a cohort of ``nprocs`` rank processes that wakes at
    its arrival offset, opens the job's own file(s) in ``iomode``,
    performs ``rounds`` reads of ``request_kb`` per rank per file, and
    closes.  Every job owns ``files_per_job`` files (no two jobs share
    a file, so overlapping arrivals never collide on mode
    coordination); a tenant therefore contributes
    ``n_jobs * files_per_job`` files to the namespace.
    """

    name: str
    iomode: str = "M_RECORD"
    n_jobs: int = 1
    nprocs: int = 4
    request_kb: int = 64
    rounds: int = 4
    files_per_job: int = 1
    stripe_factor: int = 8
    stripe_unit_kb: int = 64
    #: First I/O node of this tenant's striping window; None lets the
    #: runner spread tenants across disjoint windows (scale-out), an
    #: explicit value pins tenants onto shared servers (contention).
    stripe_base: Optional[int] = None
    compute_delay_s: float = 0.0
    prefetch: bool = True
    prefetch_policy: str = "one-ahead"
    prefetch_depth: int = 1
    arrival: ArrivalProcess = field(default_factory=ArrivalProcess)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError("tenant name must be non-empty and slash-free")
        if self.iomode not in IOMode.__members__:
            raise ValueError(
                f"iomode must be one of {tuple(IOMode.__members__)}, got {self.iomode!r}"
            )
        for attr in ("n_jobs", "nprocs", "request_kb", "rounds", "files_per_job",
                     "stripe_factor", "stripe_unit_kb"):
            if getattr(self, attr) < 1:
                raise ValueError(f"tenant {self.name!r}: {attr} must be >= 1")
        if self.stripe_base is not None and self.stripe_base < 0:
            raise ValueError(f"tenant {self.name!r}: stripe_base must be >= 0")
        if self.compute_delay_s < 0:
            raise ValueError(f"tenant {self.name!r}: compute delay must be non-negative")
        if self.prefetch_policy not in POLICY_NAMES:
            raise ValueError(
                f"tenant {self.name!r}: prefetch_policy must be one of {POLICY_NAMES}"
            )
        if self.prefetch_depth < 0:
            raise ValueError(f"tenant {self.name!r}: prefetch_depth must be >= 0")

    @property
    def mode(self) -> IOMode:
        return IOMode[self.iomode]

    @property
    def request_bytes(self) -> int:
        return self.request_kb * KB

    @property
    def file_size_bytes(self) -> int:
        """Sized so one job performs a full pass: every rank completes
        ``rounds`` requests whatever the mode's pointer discipline."""
        return self.request_bytes * self.nprocs * self.rounds

    @property
    def n_files(self) -> int:
        return self.n_jobs * self.files_per_job

    def start_offsets(self, seed: int) -> Tuple[float, ...]:
        return self.arrival.offsets(self.n_jobs, seed, stream=self.name)


@dataclass(frozen=True)
class Scenario:
    """A machine shape plus the tenant set that drives traffic at it."""

    name: str
    n_compute: int
    n_io: int
    tenants: Tuple[Tenant, ...]
    seed: int = 0
    tie_break: str = "fifo"
    telemetry: bool = False
    block_kb: int = 64

    def __post_init__(self) -> None:
        # Tolerate lists from JSON loads.
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if self.n_compute < 1 or self.n_io < 1:
            raise ValueError("scenario needs at least one compute and one I/O node")
        if not self.tenants:
            raise ValueError("scenario needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        if self.tie_break not in ("fifo", "lifo"):
            raise ValueError("tie_break must be 'fifo' or 'lifo'")
        for tenant in self.tenants:
            if tenant.nprocs > self.n_compute:
                raise ValueError(
                    f"tenant {tenant.name!r} wants {tenant.nprocs} ranks but the "
                    f"machine has {self.n_compute} compute nodes"
                )
            if tenant.stripe_factor > self.n_io:
                raise ValueError(
                    f"tenant {tenant.name!r} stripe factor {tenant.stripe_factor} "
                    f"exceeds {self.n_io} I/O nodes"
                )
            if tenant.stripe_base is not None and tenant.stripe_base >= self.n_io:
                raise ValueError(
                    f"tenant {tenant.name!r} stripe_base {tenant.stripe_base} "
                    f"outside 0..{self.n_io - 1}"
                )

    @property
    def total_nodes(self) -> int:
        """Compute + I/O nodes (the service node rides along for free)."""
        return self.n_compute + self.n_io

    @property
    def total_files(self) -> int:
        return sum(t.n_files for t in self.tenants)

    @property
    def total_jobs(self) -> int:
        return sum(t.n_jobs for t in self.tenants)

    def with_tie_break(self, tie_break: str) -> "Scenario":
        return replace(self, tie_break=tie_break)

    def only(self, tenant_name: str) -> "Scenario":
        """The same machine serving just one tenant (the solo baseline
        interference attribution compares against)."""
        kept = tuple(t for t in self.tenants if t.name == tenant_name)
        if not kept:
            raise ValueError(f"no tenant {tenant_name!r} in scenario {self.name!r}")
        return replace(self, name=f"{self.name}:solo:{tenant_name}", tenants=kept)

    # -- JSON schema ---------------------------------------------------------

    def to_dict(self) -> dict:
        out = asdict(self)
        out["tenants"] = list(out["tenants"])
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        data = dict(data)
        tenants = []
        for entry in data.pop("tenants", ()):
            entry = dict(entry)
            arrival = entry.pop("arrival", None)
            if arrival is not None:
                entry["arrival"] = ArrivalProcess(**arrival)
            tenants.append(Tenant(**entry))
        return cls(tenants=tuple(tenants), **data)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "Scenario":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())


# -- canned scenario families ------------------------------------------------


def homogeneous_scenario(
    total_nodes: int,
    n_tenants: int,
    *,
    name: Optional[str] = None,
    iomode: str = "M_RECORD",
    nprocs: int = 4,
    rounds: int = 4,
    request_kb: int = 64,
    n_jobs: int = 1,
    files_per_job: int = 1,
    stripe_factor: int = 8,
    stripe_base: Optional[int] = None,
    compute_delay_s: float = 0.0,
    arrival: Optional[ArrivalProcess] = None,
    seed: int = 0,
    tie_break: str = "fifo",
) -> Scenario:
    """*n_tenants* identical tenants on a ``total_nodes``-node machine.

    The homogeneous cell the fairness acceptance bound applies to:
    identical tenants must come out with Jain's index >= 0.9.  With
    ``stripe_base=None`` the runner spreads tenants across disjoint
    striping windows (scale-out); pinning every tenant to the same base
    turns the cell into a contention probe.
    """
    n_compute, n_io = split_nodes(total_nodes)
    factor = min(stripe_factor, n_io)
    tenants = tuple(
        Tenant(
            name=f"t{i:03d}",
            iomode=iomode,
            n_jobs=n_jobs,
            nprocs=nprocs,
            request_kb=request_kb,
            rounds=rounds,
            files_per_job=files_per_job,
            stripe_factor=factor,
            stripe_base=stripe_base,
            compute_delay_s=compute_delay_s,
            arrival=arrival or ArrivalProcess(),
        )
        for i in range(n_tenants)
    )
    return Scenario(
        name=name or f"homog-{total_nodes}n-{n_tenants}t-{iomode}",
        n_compute=n_compute,
        n_io=n_io,
        tenants=tenants,
        seed=seed,
        tie_break=tie_break,
    )


def mixed_scenario(
    total_nodes: int,
    n_tenants: int,
    *,
    name: Optional[str] = None,
    modes: Sequence[str] = MIXED_MODES,
    nprocs: int = 4,
    rounds: int = 4,
    request_kb: int = 64,
    n_jobs: int = 2,
    files_per_job: int = 1,
    stripe_factor: int = 8,
    stagger_s: float = 0.02,
    seed: int = 0,
    tie_break: str = "fifo",
) -> Scenario:
    """Tenants cycling through *modes* with staggered job arrivals --
    the mixed-traffic cell (and the 64-node 8-tenant determinism
    anchor, see :func:`anchor_scenario`)."""
    n_compute, n_io = split_nodes(total_nodes)
    factor = min(stripe_factor, n_io)
    tenants = tuple(
        Tenant(
            name=f"{modes[i % len(modes)].lower().replace('m_', '')}{i:02d}",
            iomode=modes[i % len(modes)],
            n_jobs=n_jobs,
            nprocs=nprocs,
            request_kb=request_kb,
            rounds=rounds,
            files_per_job=files_per_job,
            stripe_factor=factor,
            arrival=ArrivalProcess(kind="staggered", start_s=i * stagger_s, interval_s=stagger_s),
        )
        for i in range(n_tenants)
    )
    return Scenario(
        name=name or f"mixed-{total_nodes}n-{n_tenants}t",
        n_compute=n_compute,
        n_io=n_io,
        tenants=tenants,
        seed=seed,
        tie_break=tie_break,
    )


def anchor_scenario(tie_break: str = "fifo") -> Scenario:
    """The 64-node 8-tenant mixed scenario whose fingerprint the
    acceptance criteria pin: bit-identical under fifo/lifo and across
    the in-process vs. sharded runner (see
    ``tests/test_scale_determinism.py`` and BENCH_9's ``scale.anchor``
    block)."""
    return mixed_scenario(64, 8, name="anchor-64n-8t", seed=1996, tie_break=tie_break)


def split_nodes(total_nodes: int) -> Tuple[int, int]:
    """Half compute, half I/O -- delegates to
    :meth:`repro.config.MachineConfig.sized` so the scenario layer and
    direct config construction can never disagree about a machine
    shape."""
    from repro.config import MachineConfig

    cfg = MachineConfig.sized(total_nodes)
    return cfg.n_compute, cfg.n_io
