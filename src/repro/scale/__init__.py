"""Multi-tenant scale-out: declarative scenarios, a traffic runner,
and a process-pool shard engine.

The paper's machine serves one collective at a time; this package makes
it serve *traffic* -- many concurrent jobs from many tenants, on meshes
16 up to 2048 nodes -- while keeping every result bit-exact:

- :mod:`repro.scale.scenario` -- the schema: frozen
  :class:`Scenario`/:class:`Tenant`/:class:`ArrivalProcess` dataclasses,
  JSON round-trip, seeded wall-clock-free arrivals, canned builders;
- :mod:`repro.scale.runner` -- execution: per-tenant mounts and striping
  windows, arrival-driven job cohorts, :class:`ScenarioResult` with a
  :class:`~repro.obs.fairness.FairnessReport` and a canonical
  fingerprint;
- :mod:`repro.scale.shard` -- a process pool over independent cells with
  a key-sorted, order-independent merge.

Nothing imports this package by default -- the single-job experiment
paths and their golden fingerprints are untouched unless a caller opts
in (``repro.machine`` must never import ``repro.scale``; the
determinism regression tests enforce the direction).
"""

from repro.scale.scenario import (
    ARRIVAL_KINDS,
    MIXED_MODES,
    ArrivalProcess,
    Scenario,
    Tenant,
    anchor_scenario,
    homogeneous_scenario,
    mixed_scenario,
    split_nodes,
    unit_uniform,
)
from repro.scale.runner import (
    JobSpan,
    ScenarioError,
    ScenarioResult,
    job_clients,
    run_scenario,
    tenant_stripe_windows,
)
from repro.scale.shard import ScenarioCell, merged_fingerprints, run_cells

__all__ = [
    "ARRIVAL_KINDS",
    "MIXED_MODES",
    "ArrivalProcess",
    "JobSpan",
    "Scenario",
    "ScenarioCell",
    "ScenarioError",
    "ScenarioResult",
    "Tenant",
    "anchor_scenario",
    "homogeneous_scenario",
    "job_clients",
    "merged_fingerprints",
    "mixed_scenario",
    "run_cells",
    "run_scenario",
    "split_nodes",
    "tenant_stripe_windows",
    "unit_uniform",
]
