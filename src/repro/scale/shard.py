"""Process-pool sharding of independent scenario cells.

A scale sweep is a bag of *cells* -- one :class:`Scenario` each, no
shared state -- so wall-clock parallelism is free: each worker process
builds its own machine, runs its cell, and ships back a plain dict.
Because every cell is already bit-exact (seeded arrivals, canonical
arbitration), the merge rule can afford to be brutal about determinism:

- results carry their cell *key* and are sorted by it, so the merged
  list is independent of completion order, worker count, and whether
  the pool ran at all (``in_process=True`` gives the same bytes);
- the deterministic payload (``result`` -- fingerprint, bandwidths,
  fairness) is separated from the wall-clock payload (``wall_time_s``),
  so callers can fingerprint the former and report the latter;
- a cell that raises is reported as ``{"error": ...}`` under its key
  rather than poisoning the pool.

Workers receive scenarios as JSON dicts (pickle-stable across spawn and
fork start methods) and re-hydrate via :meth:`Scenario.from_dict`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.scale.runner import run_scenario
from repro.scale.scenario import Scenario


@dataclass(frozen=True)
class ScenarioCell:
    """One unit of sharded work: a sort key plus its scenario."""

    key: str
    scenario: Scenario

    def payload(self) -> Tuple[str, dict]:
        return (self.key, self.scenario.to_dict())


def _run_cell(payload: Tuple[str, dict]) -> dict:
    """Worker entry point: run one cell, return a JSON-able record.

    Module-level (picklable) on purpose; must stay import-light on the
    worker side -- everything it needs comes through *payload*.
    """
    key, scenario_dict = payload
    started = time.perf_counter()  # sim-ok: R001 -- wall_time_s is bench metadata, never simulated time
    try:
        result = run_scenario(Scenario.from_dict(scenario_dict))
    except Exception as exc:  # surface, don't poison the pool
        return {"key": key, "error": f"{type(exc).__name__}: {exc}"}
    record = {"key": key, "result": result.to_jsonable()}
    record["wall_time_s"] = round(time.perf_counter() - started, 3)  # sim-ok: R001 -- bench metadata
    return record


def run_cells(
    cells: Sequence[Union[ScenarioCell, Tuple[str, Scenario]]],
    processes: Optional[int] = None,
    in_process: bool = False,
) -> List[dict]:
    """Run every cell, sharded across a process pool; merged by key.

    ``in_process=True`` (or a single-cell bag, or ``processes=1``) runs
    sequentially in this process -- the degenerate shard the determinism
    tests compare the pooled path against.  Duplicate keys are rejected
    up front: the merge is keyed, so a collision could silently drop a
    cell.
    """
    normalized = [cell if isinstance(cell, ScenarioCell) else ScenarioCell(*cell) for cell in cells]
    keys = [cell.key for cell in normalized]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate cell keys: {sorted(keys)}")
    payloads = [cell.payload() for cell in normalized]

    if in_process or processes == 1 or len(payloads) <= 1:
        records = [_run_cell(payload) for payload in payloads]
    else:
        import multiprocessing

        if processes is None:
            processes = min(len(payloads), multiprocessing.cpu_count())
        with multiprocessing.Pool(processes=processes) as pool:
            records = pool.map(_run_cell, payloads)

    # Completion/submission order must not matter: merge by key.
    return sorted(records, key=lambda record: record["key"])


def merged_fingerprints(records: Sequence[dict]) -> Dict[str, str]:
    """Cell key -> scenario fingerprint for every successful cell."""
    return {
        record["key"]: record["result"]["fingerprint"]
        for record in records
        if "result" in record
    }
