"""Machine builder: wires the full simulated Paragon together.

A :class:`Machine` owns the environment, the mesh, the compute / I/O /
service nodes, the storage stack behind each I/O node (SCSI bus, RAID-3
array, UFS, buffer cache, PFS server), the coordination service, and
one PFS client per compute node.

Layout mirrors the real machine loosely: compute nodes occupy row 0 of
the mesh, I/O nodes row 1, and the service node (which hosts the
file-pointer coordination service) row 2.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig, PFSConfig
from repro.core import Prefetcher, make_policy
from repro.core.tuner import OnlineTuner, TunerConfig
from repro.faults.injector import FaultInjector
from repro.hardware.mesh import Mesh
from repro.hardware.node import Node, NodeKind
from repro.hardware.raid import RAID3Array
from repro.hardware.scsi import SCSIBus
from repro.paragonos.art import AsyncRequestManager
from repro.paragonos.buffercache import BufferCache
from repro.paragonos.rpc import RPCEndpoint
from repro.paragonos.syncdaemon import SyncDaemon
from repro.pfs.client import PFSClient
from repro.pfs.coordinator import CoordinatorService
from repro.pfs.file import PFSFile
from repro.pfs.mount import PFSMount
from repro.pfs.server import PFSServer
from repro.pfs.stripe import StripeAttributes, ufs_file_size
from repro.obs import Observability
from repro.sim import Environment
from repro.ufs import UFS, BlockDevice


class Machine:
    """A fully wired simulated Paragon."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        cfg = self.config
        self.env = Environment(tie_break=cfg.tie_break)
        #: Unified observability handle: stats registry + request tracer
        #: + telemetry (metric registry, probes, sampler).
        self.obs = Observability(
            self.env,
            trace=cfg.trace,
            telemetry=cfg.telemetry,
            telemetry_interval_s=cfg.telemetry_interval_s,
        )
        #: Back-compat alias -- satisfies the full Monitor interface.
        self.monitor = self.obs

        #: Fault-injection runtime; None when the plan is absent, and the
        #: entire fault plane (retries, dedup logs, degraded checks) is
        #: then inert.
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self.env, cfg.faults, monitor=self.monitor)
            if cfg.faults is not None
            else None
        )

        width = max(cfg.n_compute, cfg.n_io, 1)
        self.mesh = Mesh(
            self.env, width, 3, params=cfg.hardware.mesh, monitor=self.monitor, faults=self.faults
        )

        # -- nodes ---------------------------------------------------------
        self.compute_nodes: List[Node] = [
            Node(self.env, i, NodeKind.COMPUTE, (i, 0), params=cfg.hardware.node)
            for i in range(cfg.n_compute)
        ]
        self.io_nodes: List[Node] = [
            Node(
                self.env,
                cfg.n_compute + i,
                NodeKind.IO,
                (i, 1),
                params=cfg.hardware.node,
            )
            for i in range(cfg.n_io)
        ]
        self.service_node = Node(
            self.env,
            cfg.n_compute + cfg.n_io,
            NodeKind.SERVICE,
            (0, 2),
            params=cfg.hardware.node,
        )

        # -- storage stacks on the I/O nodes ------------------------------------
        self.buses: List[SCSIBus] = []
        self.arrays: List[RAID3Array] = []
        self.ufses: List[UFS] = []
        self.caches: List[BufferCache] = []
        self.servers: List[PFSServer] = []
        self.sync_daemons: List[SyncDaemon] = []
        self.io_endpoints: Dict[int, RPCEndpoint] = {}
        for i, node in enumerate(self.io_nodes):
            bus = SCSIBus(self.env, name=f"scsi{i}", params=cfg.hardware.scsi, monitor=self.monitor)
            array = RAID3Array(
                self.env,
                bus,
                name=f"raid{i}",
                disk_params=cfg.hardware.disk,
                raid_params=cfg.hardware.raid,
                elevator=cfg.disk_elevator,
                monitor=self.monitor,
                faults=self.faults,
            )
            ufs = UFS(
                BlockDevice(array, cfg.block_size),
                fs_id=i,
                name=f"ufs{i}",
                monitor=self.monitor,
            )
            cache = BufferCache(
                self.env,
                capacity_blocks=cfg.cache_blocks,
                block_size=cfg.block_size,
                name=f"bcache{i}",
                monitor=self.monitor,
            )
            endpoint = RPCEndpoint(
                self.env, node, self.mesh, monitor=self.monitor, faults=self.faults
            )
            server = PFSServer(
                self.env,
                node,
                endpoint,
                ufs,
                cache=cache,
                readahead_blocks=cfg.server_readahead_blocks,
                write_back=cfg.write_back,
                coalesce=cfg.ufs_coalesce,
                monitor=self.monitor,
                faults=self.faults,
            )
            if cfg.write_back:
                self.sync_daemons.append(
                    SyncDaemon(
                        self.env,
                        cache,
                        interval_s=cfg.sync_interval_s,
                        name=f"syncd{i}",
                        monitor=self.monitor,
                    )
                )
            self.buses.append(bus)
            self.arrays.append(array)
            # Rebuild byte-conservation target: the copy-back pass walks
            # the array up to the bytes the UFS has actually allocated
            # (free space holds no live data to reconstruct).
            array.live_bytes_fn = (
                lambda u=ufs: (u.device.total_blocks - u.allocator.free_blocks) * u.block_size
            )
            self.ufses.append(ufs)
            self.caches.append(cache)
            self.servers.append(server)
            self.io_endpoints[i] = endpoint

        # -- coordination service on the service node -----------------------------
        self.coordinator_endpoint = RPCEndpoint(
            self.env,
            self.service_node,
            self.mesh,
            monitor=self.monitor,
            faults=self.faults,
        )
        self.coordinator = CoordinatorService(self.env, self.coordinator_endpoint)

        # -- PFS clients on the compute nodes ------------------------------------------
        self.clients: List[PFSClient] = []
        for node in self.compute_nodes:
            endpoint = RPCEndpoint(
                self.env, node, self.mesh, monitor=self.monitor, faults=self.faults
            )
            art = AsyncRequestManager(
                self.env, node, max_threads=cfg.art_threads, monitor=self.monitor
            )
            client = PFSClient(
                self.env,
                node,
                endpoint,
                self.mesh,
                self.io_endpoints,
                self.coordinator_endpoint,
                art=art,
                monitor=self.monitor,
                faults=self.faults,
            )
            if self.faults is not None:
                windows = cfg.faults.crash_windows(f"node{node.node_id}")
                if windows:
                    client.crash_windows = windows
                    # The RPC retry loop raises NodeCrashed while the
                    # node is down instead of consuming replies.
                    endpoint.halted_fn = lambda c=client: c.crashed_at(self.env.now)
            self.clients.append(client)

        #: Online prefetch-parameter tuner (:mod:`repro.core.tuner`);
        #: None (default) keeps the tuner plane entirely inert -- no
        #: events, no hooks, bit-identical runs.
        self.tuner: Optional[OnlineTuner] = (
            OnlineTuner(
                self.env,
                TunerConfig(interval_s=cfg.tuner_interval_s),
                monitor=self.monitor,
            )
            if cfg.tuner
            else None
        )

        self.mounts: Dict[str, PFSMount] = {}
        # One machine-wide file-id counter shared by every mount: ids
        # key UFS inodes across mounts, and a fresh machine always
        # numbers its files 1, 2, ... (process-history independent).
        self._file_ids = itertools.count(1)

        # Time-scheduled faults (disk failure/repair) fire from a driver
        # process against the named arrays.
        if self.faults is not None:
            self.faults.start({array.name: array for array in self.arrays})
            # Every node_crash/node_restart target must name a compute
            # node this machine actually has (typos would otherwise
            # silently never fire).
            from repro.faults.plan import NODE_LIFECYCLE_KINDS, FaultError

            known = {f"node{node.node_id}" for node in self.compute_nodes}
            for spec in cfg.faults.specs:
                if spec.kind in NODE_LIFECYCLE_KINDS and spec.target not in known:
                    raise FaultError(
                        f"{spec.kind} targets unknown compute node "
                        f"{spec.target!r}; known: {sorted(known)}"
                    )

        # -- node-level telemetry probes (nodes take no monitor handle) ----------
        telemetry = self.obs.telemetry
        for node in self.compute_nodes + self.io_nodes + [self.service_node]:
            label = {"node": str(node.node_id)}
            # Normalised by CPU count so value/elapsed is a [0, 1] fraction.
            telemetry.register_probe(
                "node_cpu_busy_seconds",
                lambda n=node: n.cpu_busy_s / n.params.cpu_count,
                labels=label,
                help="CPU busy-seconds per node, normalised by CPU count",
                kind="counter",
            )
            telemetry.register_probe(
                "node_msgproc_busy_seconds",
                lambda n=node: n.msgproc_busy_s,
                labels=label,
                help="Message-processor busy-seconds per node",
                kind="counter",
            )
            telemetry.register_probe(
                "node_memory_used_bytes",
                lambda n=node: float(n.memory.used_bytes),
                labels=label,
                help="Allocated node memory in bytes",
            )

    # -- PFS administration -------------------------------------------------------

    def stripe_attributes(self, pfs: PFSConfig) -> StripeAttributes:
        """Resolve a :class:`PFSConfig` against this machine's I/O nodes."""
        factor = pfs.stripe_factor or self.config.n_io
        if factor > self.config.n_io:
            raise ValueError(f"stripe factor {factor} exceeds {self.config.n_io} I/O nodes")
        return StripeAttributes(stripe_unit=pfs.stripe_unit, stripe_group=tuple(range(factor)))

    def mount(self, name: str = "/pfs", pfs: Optional[PFSConfig] = None) -> PFSMount:
        """Create a PFS mount with the given striping/buffering defaults."""
        if name in self.mounts:
            raise ValueError(f"mount {name!r} already exists")
        pfs = pfs or PFSConfig()
        mount = PFSMount(
            name,
            self.stripe_attributes(pfs),
            buffered=pfs.buffered,
            file_ids=self._file_ids,
        )
        self.mounts[name] = mount
        return mount

    def create_file(
        self,
        mount: PFSMount,
        name: str,
        size_bytes: int,
        attrs: Optional[StripeAttributes] = None,
        rotate: bool = False,
    ) -> PFSFile:
        """Create a PFS file and its UFS stripe files (setup time, no
        simulated cost -- the paper's files pre-exist its measurements).

        With ``rotate=True`` the file's first stripe unit is placed on a
        per-file rotated group member, spreading a population of files
        (e.g. the "Separate Files" workload) across the I/O nodes.
        """
        pfs_file = mount.create_file(name, size_bytes=size_bytes, attrs=attrs)
        if rotate:
            from dataclasses import replace

            pfs_file.attrs = replace(
                pfs_file.attrs,
                rotation=pfs_file.file_id % pfs_file.attrs.stripe_factor,
            )
        for group_index, io_index in enumerate(pfs_file.attrs.stripe_group):
            stripe_bytes = ufs_file_size(pfs_file.attrs, size_bytes, group_index)
            # Always create the stripe file, even when empty, so later
            # writes can extend it.
            self.ufses[io_index].create(pfs_file.file_id, size_bytes=stripe_bytes)
        self.coordinator.register_file(pfs_file)
        return pfs_file

    def remove_file(self, mount: PFSMount, name: str) -> None:
        pfs_file = mount.remove(name)
        for io_index in pfs_file.attrs.stripe_group:
            if self.ufses[io_index].exists(pfs_file.file_id):
                self.ufses[io_index].unlink(pfs_file.file_id)
        self.coordinator.unregister_file(pfs_file)

    def unmount(self, name: str) -> None:
        """Tear down a mount: audit, remove its files, drop the mount.

        Multi-tenant scenarios (:mod:`repro.scale`) mount one namespace
        per tenant and tear it down when the tenant leaves the machine.
        The delivery audit (invariant 7) is settled *before* the stripe
        files disappear -- :meth:`verify` runs first and any violation
        aborts the unmount -- and the audited entries for this mount's
        files are then pruned so later :meth:`verify` calls on the
        shared machine don't flag the departed tenant's file ids as
        unknown.
        """
        mount = self.mounts.get(name)
        if mount is None:
            raise ValueError(f"no mount {name!r}; mounted: {sorted(self.mounts)}")
        problems = self.verify()
        if problems:
            raise AssertionError(f"unmount {name!r} with invariant violations: " + "; ".join(problems))
        file_ids = {pfs_file.file_id for pfs_file in mount.files.values()}
        for filename in list(mount.files):
            self.remove_file(mount, filename)
        if self.faults is not None and file_ids:
            self.faults.deliveries[:] = [
                entry for entry in self.faults.deliveries if entry[0] not in file_ids
            ]
        del self.mounts[name]

    def build_prefetcher(
        self,
        rank: int = 0,
        *,
        policy: Optional[str] = None,
        depth: Optional[int] = None,
        quota_bytes: Optional[int] = None,
        stride_detect: Optional[bool] = None,
    ) -> Prefetcher:
        """A prefetcher configured from this machine's policy knobs.

        Builds the policy named by ``config.prefetch_policy`` (with
        ``prefetch_depth`` / ``prefetch_quota_bytes`` /
        ``prefetch_stride_detect``) and, when the online tuner is
        enabled, attaches the prefetcher to it.  The default config
        yields exactly the paper's prototype
        (``Prefetcher(OneRequestAhead())``), so factory call sites that
        route through here stay bit-identical to the seed.

        The keyword overrides let one machine serve *heterogeneous*
        prefetch configurations -- multi-tenant scenarios where each
        tenant names its own policy/depth (:mod:`repro.scale`) -- while
        still inheriting the machine's monitor and tuner wiring.  The
        positional signature stays a drop-in
        :data:`~repro.workloads.synthetic.PrefetcherFactory`.
        """
        cfg = self.config
        policy_name = cfg.prefetch_policy if policy is None else policy
        prefetcher = Prefetcher(
            make_policy(
                policy_name,
                depth=cfg.prefetch_depth if depth is None else depth,
                quota_bytes=cfg.prefetch_quota_bytes if quota_bytes is None else quota_bytes,
                stride_detect=(
                    cfg.prefetch_stride_detect if stride_detect is None else stride_detect
                ),
            ),
            monitor=self.monitor,
        )
        if self.tuner is not None:
            self.tuner.attach(prefetcher)
        return prefetcher

    # -- invariants --------------------------------------------------------------------

    def verify(self, strict: bool = False) -> List[str]:
        """Check machine-wide invariants; returns violation descriptions.

        Cheap enough to run after every test workload.  With
        ``strict=True`` raises AssertionError on the first violation.
        """
        problems: List[str] = []

        # 1. Block conservation on every UFS.
        for ufs in self.ufses:
            allocated = sum(  # sim-ok: R003v2 -- post-quiescence integer sum, order-free
                inode.nblocks for inode in ufs._inodes.values()
            )
            total = ufs.allocator.free_blocks + allocated
            if total != ufs.device.total_blocks:
                problems.append(
                    f"{ufs.name}: {ufs.allocator.free_blocks} free + "
                    f"{allocated} allocated != {ufs.device.total_blocks} total"
                )

        # 2. Caches within capacity (dirty pressure may overflow
        #    transiently; clean blocks never may).
        for cache in self.caches:
            if len(cache) - cache.dirty_count > cache.capacity_blocks:
                problems.append(
                    f"{cache.name}: {len(cache)} blocks ({cache.dirty_count} "
                    f"dirty) exceeds capacity {cache.capacity_blocks}"
                )

        # 3. Every mounted file is registered with the coordinator and its
        #    stripe files never exceed the logical size.
        for mount_point in sorted(self.mounts):
            mount = self.mounts[mount_point]
            for fname in sorted(mount.files):
                pfs_file = mount.files[fname]
                if pfs_file.file_id not in self.coordinator._files:
                    problems.append(f"{pfs_file.name!r} not registered with the coordinator")
                stripe_total = 0
                for io_index in pfs_file.attrs.stripe_group:
                    if self.ufses[io_index].exists(pfs_file.file_id):
                        stripe_total += self.ufses[io_index].inode(pfs_file.file_id).size_bytes
                if stripe_total > pfs_file.size_bytes:
                    problems.append(
                        f"{pfs_file.name!r}: stripe files hold {stripe_total} "
                        f"bytes > logical size {pfs_file.size_bytes}"
                    )

        # 4. Node memory accounting is non-negative and within capacity.
        for node in self.compute_nodes + self.io_nodes:
            if node.memory.used_bytes < 0:
                problems.append(f"node {node.node_id}: negative memory usage")
            if node.memory.used_bytes > node.memory.capacity_bytes:
                problems.append(f"node {node.node_id}: memory over capacity")

        # 5. Servers never delivered fewer bytes than clients demanded.
        client_bytes = self.monitor.counter_value("pfs_client.demand_bytes")
        server_bytes = sum(
            self.monitor.counter_value(f"pfs_server.{n.node_id}.bytes_reads") for n in self.io_nodes
        )
        if server_bytes < client_bytes:
            problems.append(
                f"servers read {server_bytes} bytes but clients received "
                f"{client_bytes} demand bytes"
            )

        # 6. No leaked resource holds once the event queue has drained
        #    (a held CPU / mesh link / SCSI bus with no event left to
        #    release it can never be released).
        from repro.analysis.sanitizers import leaked_resources

        for leak in leaked_resources(self.env):
            problems.append(str(leak))

        # 7. Under fault injection, every byte range delivered along an
        #    audited path -- demand reads handed to the application,
        #    prefetched data landed in client buffers, readahead blocks
        #    pulled into server caches -- is byte-identical to the
        #    fault-free content (recovered reads -- retries, degraded-mode
        #    reconstruction, copy-back rebuild -- must be transparent).
        #    Each path logs a digest; we recompute ground truth from the
        #    stripe files.  Demand/prefetch offsets are PFS-file-space;
        #    readahead offsets are UFS-stripe-space on their I/O node.
        if self.faults is not None:
            import hashlib

            from repro.pfs.stripe import decluster

            attrs_by_id = {}
            for mount_point in sorted(self.mounts):
                for fname in sorted(self.mounts[mount_point].files):
                    pfs_file = self.mounts[mount_point].files[fname]
                    attrs_by_id[pfs_file.file_id] = pfs_file.attrs
            for (
                file_id, offset, nbytes, digest, kind, io_node,
            ) in self.faults.deliveries:
                if kind == "readahead":
                    truth = self.ufses[io_node].content(file_id, offset, nbytes).to_bytes()
                else:
                    attrs = attrs_by_id.get(file_id)
                    if attrs is None:
                        problems.append(f"delivery audit: unknown file_id {file_id}")
                        continue
                    pieces = sorted(
                        decluster(attrs, offset, nbytes),
                        key=lambda p: p.pfs_offset,
                    )
                    truth = b"".join(
                        self.ufses[p.io_node].content(file_id, p.ufs_offset, p.length).to_bytes()
                        for p in pieces
                    )
                expected = hashlib.sha256(truth).hexdigest()
                if digest != expected:
                    problems.append(
                        f"delivery audit: file {file_id} {kind} "
                        f"[{offset}, {offset + nbytes}) delivered bytes "
                        f"differ from fault-free content"
                    )

        if strict and problems:
            raise AssertionError("; ".join(problems))
        return problems

    def describe(self) -> str:
        """Human-readable inventory of the machine (config + hardware)."""
        cfg = self.config
        hw = cfg.hardware
        lines = [
            f"Simulated Paragon: {cfg.n_compute} compute + {cfg.n_io} I/O "
            f"nodes + 1 service node on a "
            f"{self.mesh.width}x{self.mesh.height} mesh",
            f"  file-system block: {cfg.block_size // 1024}KB; "
            f"buffer cache: {cfg.cache_blocks} blocks/I/O node; "
            f"ARTs: {cfg.art_threads}/compute node",
            f"  storage per I/O node: RAID-3 {hw.raid.data_disks}+1 "
            f"({hw.disk.media_rate_bps / 2**20:.1f} MB/s media each) behind "
            f"SCSI at {hw.scsi.bandwidth_bps / 2**20:.1f} MB/s",
            f"  node: {hw.node.cpu_count} CPU(s), "
            f"{hw.node.memory_bytes // 2**20}MB memory, receive path "
            f"{hw.node.receive_bps / 2**20:.1f} MB/s",
            f"  mesh links: {hw.mesh.link_bandwidth_bps / 2**20:.0f} MB/s",
            f"  write policy: "
            f"{'write-back (sync every ' + str(cfg.sync_interval_s) + 's)' if cfg.write_back else 'write-through'}"
            f"; server readahead: {cfg.server_readahead_blocks} blocks",
        ]
        if self.mounts:
            lines.append("  mounts:")
            for mount in self.mounts.values():
                lines.append(f"    {mount!r}")
        return "\n".join(lines)

    def utilization_report(self) -> Dict[str, float]:
        """Busy fraction of every active component since t=0.

        Keys: ``raid<i>``, ``scsi<i>``, ``cpu<i>`` (compute nodes),
        ``msgproc<i>`` (compute nodes); values in [0, 1].  Useful for
        spotting the bottleneck a workload actually hit.
        """
        elapsed = self.env.now
        if elapsed <= 0:
            return {}
        report: Dict[str, float] = {}
        for i, array in enumerate(self.arrays):
            report[f"raid{i}"] = min(1.0, array.busy_s / elapsed)
        for i, bus in enumerate(self.buses):
            report[f"scsi{i}"] = min(1.0, bus.busy_s / elapsed)
        for node in self.compute_nodes:
            i = node.node_id
            capacity = node.params.cpu_count
            report[f"cpu{i}"] = min(1.0, node.cpu_busy_s / (elapsed * capacity))
            report[f"msgproc{i}"] = min(1.0, node.msgproc_busy_s / elapsed)
        return report

    def bottleneck(self) -> Optional[str]:
        """Name of the busiest component (None before any time passes)."""
        report = self.utilization_report()
        if not report:
            return None
        return max(report, key=report.get)

    # -- running -------------------------------------------------------------------------

    def run(self, until=None):
        """Run the simulation (delegates to the environment)."""
        return self.env.run(until=until)

    def spawn(self, generator, name: Optional[str] = None):
        """Start a process on the machine."""
        return self.env.process(generator, name=name)

    def io_node_positions(self) -> List[Tuple[int, int]]:
        return [node.position for node in self.io_nodes]

    def __repr__(self) -> str:
        return (
            f"<Machine {self.config.n_compute}C/{self.config.n_io}IO "
            f"block={self.config.block_size}>"
        )
