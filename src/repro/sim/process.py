"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each ``yield``-ed value must
be an :class:`~repro.sim.events.Event`; the process sleeps until the event
fires and is resumed with the event's value (or, on failure, the event's
exception is thrown into the generator).

A process is itself an event: it triggers when the generator finishes
(value = the generator's return value) or raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class _InterruptEvent(Event):
    """Internal urgent event used to deliver an interrupt."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [self._deliver]
        self.env.schedule(self, priority_urgent=True)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if process._value is not PENDING:
            return  # process already finished; drop the interrupt
        # Unsubscribe the process from whatever it is waiting on and
        # resume it with the failed interrupt event.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """An active component executing a generator function."""

    __slots__ = ("_generator", "_target", "name", "order_key", "_children")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
        order_key: Optional[tuple] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Causal order key: a tuple path in the spawn tree.  Root
        #: processes (spawned outside any process context) get ``(n,)``
        #: in spawn order; a process spawned by a running process gets
        #: ``parent.order_key + (child_index,)``.  Because the key is
        #: derived from causal structure -- never from event-queue
        #: insertion order -- it is stable under permuted tie-breaking
        #: and is the default arbitration key for
        #: :class:`~repro.sim.resources.ArbitratedResource`.
        #:
        #: An explicit ``order_key`` bypasses both counters: neither the
        #: parent's child index nor the root counter advances, so a
        #: process whose *spawner identity* is tie-order-dependent (e.g.
        #: a rebuild kicked off lazily from whichever access noticed the
        #: repair time had passed) can still carry a canonical key
        #: without perturbing its accidental parent's future children.
        self._children = 0
        if order_key is not None:
            self.order_key = order_key
        else:
            parent = env.active_process
            if parent is None:
                env._root_processes += 1
                self.order_key = (env._root_processes,)
            else:
                parent._children += 1
                self.order_key = parent.order_key + (parent._children,)
        #: The event this process is currently waiting on (None when
        #: running or finished).
        self._target: Optional[Event] = None
        # Kick off the process via an initialisation event.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks = [self._resume]
        env.schedule(init, priority_urgent=True)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt this process, throwing :class:`Interrupt` into it."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        _InterruptEvent(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with *event*'s value or exception."""
        env = self.env
        env._active_process = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The waited-on event failed; throw into the generator.
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, None)
            except StopIteration as stop:
                # Process finished normally.
                self._ok = True
                self._value = stop.value
                if self.callbacks or env._tick_hooks:
                    # Someone is waiting (or a telemetry sampler counts
                    # event pops): deliver the terminal event normally.
                    env.schedule(self)
                else:
                    # Un-joined process: mark processed without an event.
                    # A later ``yield proc`` sees the processed state and
                    # resumes immediately -- same sim time either way.
                    self.callbacks = None
                break
            except BaseException as exc:
                # Process crashed; fail the process event.
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                # Invalid yield: feed the error back into the generator.
                event = Event(env)
                event._ok = False
                event._value = TypeError(f"process {self.name!r} yielded non-event {next_event!r}")
                event._defused = False
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: subscribe and go to sleep.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: resume immediately with its value.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
