"""Discrete-event simulation kernel.

A from-scratch, generator-based discrete-event simulation (DES) kernel in
the style of SimPy, providing the substrate on which the Paragon hardware,
operating system, and parallel file system models are built.

Public surface:

- :class:`~repro.sim.environment.Environment` -- event loop and clock.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf` --
  event primitives.
- :class:`~repro.sim.process.Process`, :class:`~repro.sim.process.Interrupt`
  -- coroutine processes.
- :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.PriorityResource`,
  :class:`~repro.sim.resources.Container`,
  :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.FilterStore` -- shared resources.
- :class:`~repro.sim.monitor.Monitor`,
  :class:`~repro.sim.monitor.TimeWeightedStat` -- instrumentation.
"""

from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.monitor import CounterStat, Monitor, TimeWeightedStat
from repro.sim.process import Interrupt, Process
from repro.sim.resources import (
    ArbitratedResource,
    ArbitratedStore,
    Container,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "ArbitratedResource",
    "ArbitratedStore",
    "Container",
    "CounterStat",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "Monitor",
    "PriorityResource",
    "Process",
    "Resource",
    "Store",
    "TimeWeightedStat",
    "Timeout",
]
