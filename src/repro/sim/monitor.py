"""Compatibility shim: statistics moved to :mod:`repro.obs.monitor`.

The counters/time-weighted/series classes now live in the unified
observability subsystem (``repro.obs``) alongside the request tracer.
This module re-exports them so existing ``repro.sim.monitor`` imports
keep working.
"""

from repro.obs.monitor import CounterStat, Monitor, SeriesStat, TimeWeightedStat

__all__ = ["CounterStat", "Monitor", "SeriesStat", "TimeWeightedStat"]
