"""Event primitives for the simulation kernel.

An :class:`Event` moves through three states:

1. *pending* -- created, not yet triggered.
2. *triggered* -- given a value (or failure) and scheduled on the event
   queue; ``event.triggered`` is True.
3. *processed* -- the environment has popped it and run its callbacks;
   ``event.processed`` is True.

Processes wait on events by ``yield``-ing them; the kernel resumes the
process with the event's value (or throws the event's exception into it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.environment import Environment

#: Scheduling priorities.  Lower runs earlier at the same simulated time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

#: Sentinel for "no value yet".
PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks run when the event is processed.  ``None`` once
        #: processed (guards double-processing).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure was caught by a waiter (suppresses crash)."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception*."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition ---------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ -- timeouts are the hottest event type,
        # and they are born already triggered.
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of events to values for fired conditions."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [e._value for e in self.events]

    def items(self):
        return [(e, e._value) for e in self.events]

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of events.

    The condition triggers when ``evaluate(events, n_fired)`` returns True,
    or fails as soon as any constituent event fails.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        if self._evaluate(self._events, 0) and not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None and event._value is not PENDING:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Fail the condition; mark the inner failure defused.
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires when *all* events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires when *any* event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
