"""Shared resources for simulation processes.

- :class:`Resource` -- a semaphore with *capacity* slots and a FIFO wait
  queue (e.g. a disk head, a SCSI bus, a file-pointer token).
- :class:`PriorityResource` -- like :class:`Resource` but the wait queue is
  ordered by a priority key.
- :class:`Container` -- holds a continuous quantity (e.g. bytes of memory).
- :class:`Store` / :class:`FilterStore` -- hold discrete items (e.g. message
  queues between nodes).

Requests are events; processes ``yield`` them and may use them as context
managers for automatic release::

    with resource.request() as req:
        yield req
        ... hold the resource ...
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List

from repro.sim.events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


# fast-path: requires=telemetry -- one merged event replaces the grant + timeout chain; only telemetry could see the difference
def _deferred_grant(event: Event, delay: Any) -> None:
    """Trigger *event* as a merged grant resuming after *delay*.

    The slot is held from now (``users.append`` happened in the caller);
    the waiter's frame runs later.  The resume time is built by
    successive addition -- a tuple of delays yields the exact same float
    a chain of timeouts would have -- and the event's value is set to
    the grant time so the waiter's bookkeeping stays bit-identical.
    """
    env = event.env
    now = env.now
    if type(delay) is tuple:
        when = now
        for leg in delay:
            when += leg
    else:
        when = now + delay
    event._ok = True
    event._value = now
    env.schedule_at(event, when)


class Request(Event):
    """A request to hold one slot of a :class:`Resource`.

    ``resume_delay`` is the merged-grant fast path: a request carrying a
    positive delay (or a tuple of delays) is granted at the same instant
    it would otherwise be (the slot is held from the grant time), but
    the requester is resumed after the delay(s) -- one scheduled event
    instead of a grant event plus follow-on
    :class:`~repro.sim.events.Timeout` chain.  A tuple reproduces the
    exact float arithmetic of successive timeouts (``(g + a) + b``).
    The event's value is the grant time, so the resumed process can do
    its wait/hold bookkeeping bit-identically to the stepped path;
    a plain (unmerged) grant yields ``None`` and the grant time is
    simply ``env.now``.
    """

    __slots__ = ("resource", "resume_delay")

    def __init__(self, resource: "Resource", resume_delay: Any = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.resume_delay = resume_delay
        resource._do_request(self)

    def _grant(self) -> None:
        """Trigger the grant, deferring the resume by ``resume_delay``."""
        delay = self.resume_delay
        if delay:
            # sim-ok: R006 -- resume_delay is only ever non-zero when the requester's own fast-path gate (telemetry off) passed
            _deferred_grant(self, delay)
        else:
            self.succeed()

    def cancel(self) -> None:
        """Withdraw an unfulfilled request from the wait queue."""
        if self._value is PENDING:
            self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)


class PriorityRequest(Request):
    """A resource request with an explicit priority (lower = earlier)."""

    __slots__ = ("priority", "time", "_key")

    def __init__(self, resource: "PriorityResource", priority: float = 0.0) -> None:
        self.priority = priority
        self.time = resource.env.now
        self._key = (priority, resource._next_seq())
        super().__init__(resource)


class Resource:
    """Semaphore with *capacity* slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []
        env.register_resource(self)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, resume_delay: float = 0.0) -> Request:
        return Request(self, resume_delay)

    def release(self, request: Request) -> None:
        """Release a slot previously granted to *request*."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an unfulfilled or already-released request is a
            # no-op (e.g. context-manager exit after cancellation).
            if request._value is PENDING:
                self._cancel(request)
            return
        self._grant_waiters()

    # -- internals -------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request._grant()
        else:
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_waiters(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt._grant()


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by request priority."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: List[tuple] = []
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def request(self, priority: float = 0.0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            assert isinstance(request, PriorityRequest)
            heapq.heappush(self._heap, (request._key, request))

    def _cancel(self, request: Request) -> None:
        self._heap = [(k, r) for (k, r) in self._heap if r is not request]
        heapq.heapify(self._heap)

    def _grant_waiters(self) -> None:
        while self._heap and len(self.users) < self._capacity:
            _key, nxt = heapq.heappop(self._heap)
            self.users.append(nxt)
            nxt.succeed()


def _key_order(key: Any) -> Any:
    """Best-effort natural ordering wrapper for arbitration keys.

    Keys at one resource are normally homogeneous (all process order
    keys, or all caller-supplied tuples) and compare natively; if a
    resource ever sees mixed shapes, fall back to a stable textual
    order so settlement remains deterministic rather than raising.
    """
    return _CanonKey(key)


class _CanonKey:
    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_CanonKey") -> bool:
        try:
            return self.key < other.key
        except TypeError:
            return repr(self.key) < repr(other.key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _CanonKey) and self.key == other.key


class ArbitratedRequest(Event):
    """A request to hold one slot of an :class:`ArbitratedResource`.

    ``resume_delay`` works exactly as on :class:`Request`: the slot is
    held from the (canonically settled) grant instant, but the waiter's
    frame resumes after the delay(s) -- merging the grant and its
    follow-on timeout chain into one scheduled event.  The event's
    value is the exact grant time (``None`` for a plain grant).
    """

    __slots__ = ("resource", "key", "arrived_at", "resume_delay", "_seq")

    def __init__(
        self,
        resource: "ArbitratedResource",
        key: Any,
        resume_delay: Any = 0.0,
    ) -> None:
        # Inlined Event.__init__ + queue insertion -- arbitrated requests
        # are the hottest request type (every mesh hop makes one).
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.key = key
        self.arrived_at = env._now
        self.resume_delay = resume_delay
        seq = resource._seq + 1
        resource._seq = seq
        self._seq = seq
        resource.queue.append(self)
        if not resource._settle_queued:
            resource._settle_queued = True
            env._dirty_arbiters.append(resource)

    def cancel(self) -> None:
        """Withdraw an unfulfilled request from the wait queue."""
        if self._value is PENDING:
            self.resource._cancel(self)

    def __enter__(self) -> "ArbitratedRequest":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)


class ArbitratedResource:
    """Semaphore whose same-timestamp grants are settled canonically.

    A plain :class:`Resource` grants a free slot synchronously, so when
    two processes request it at the same simulated time the winner is
    whichever *event* happened to pop first -- a tie-order race.  An
    ``ArbitratedResource`` never grants synchronously: requests collect
    during the timestep, and when the environment has processed every
    event at the current time it settles the resource, granting free
    slots to waiters ordered by ``(arrival time, key)``.  The key is
    model content (defaulting to the requesting process's causal
    :attr:`~repro.sim.process.Process.order_key`), so the outcome is
    identical under any tie-breaking permutation of the event queue.

    Grants still happen at the same simulated time the request was made
    (settlement never advances the clock), so switching a model from
    ``Resource`` to ``ArbitratedResource`` changes *who wins a tie*,
    never *how long anything takes*.

    API mirrors :class:`Resource`: ``request()`` returns an event to
    ``yield``, usable as a context manager; ``release()`` frees a slot.
    ``request(key=...)`` overrides the arbitration key; two requests with
    equal arrival time and equal keys fall back to insertion order (give
    contenders distinct keys to keep settlement canonical).
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[ArbitratedRequest] = []
        self.queue: List[ArbitratedRequest] = []
        self._seq = 0
        #: Set while queued for settlement (managed by the environment).
        self._settle_queued = False
        env.register_resource(self)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, key: Any = None, resume_delay: Any = 0.0) -> ArbitratedRequest:
        if key is None:
            proc = self.env._active_process
            key = proc.order_key if proc is not None else ()
        return ArbitratedRequest(self, key, resume_delay)

    def release(self, request: ArbitratedRequest) -> None:
        """Release a slot previously granted to *request*."""
        try:
            self.users.remove(request)
        except ValueError:
            if request._value is PENDING:
                self._cancel(request)
            return
        if self.queue:
            self.env._mark_arbiter_dirty(self)

    # -- internals -------------------------------------------------------

    def _cancel(self, request: ArbitratedRequest) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _order(self, request: ArbitratedRequest) -> Any:
        return (request.arrived_at, _key_order(request.key), request._seq)

    def _settle(self) -> None:
        """Grant free slots to waiters in canonical order."""
        queue = self.queue
        if not queue:
            return
        users = self.users
        free = self._capacity - len(users)
        if free <= 0:
            return
        if len(queue) > 1:
            queue.sort(key=self._order)
        while queue and free > 0:
            nxt = queue.pop(0)
            users.append(nxt)
            free -= 1
            delay = nxt.resume_delay
            if delay:
                # Merged grant: hold the slot from now, resume the
                # waiter after the delay(s) with one scheduled event.
                # sim-ok: R006 -- resume_delay is only ever non-zero when the requester's own fast-path gate (telemetry off) passed
                _deferred_grant(nxt, delay)
            else:
                nxt.succeed()


class ArbitratedStorePut(Event):
    """A request to place *item* into an :class:`ArbitratedStore`."""

    __slots__ = ("store", "item", "key", "arrived_at", "_seq")

    def __init__(self, store: "ArbitratedStore", item: Any, key: Any) -> None:
        super().__init__(store.env)
        self.store = store
        self.item = item
        self.key = key
        self.arrived_at = store.env.now
        store._do_put(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled put from the wait queue."""
        if self._value is PENDING:
            try:
                self.store._put_queue.remove(self)
            except ValueError:
                pass


class ArbitratedStoreGet(Event):
    """A request to take the oldest item from an :class:`ArbitratedStore`."""

    __slots__ = ("store", "key", "arrived_at", "_seq")

    def __init__(self, store: "ArbitratedStore", key: Any) -> None:
        super().__init__(store.env)
        self.store = store
        self.key = key
        self.arrived_at = store.env.now
        store._do_get(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled get from the wait queue."""
        if self._value is PENDING:
            try:
                self.store._get_queue.remove(self)
            except ValueError:
                pass


class ArbitratedStore:
    """Store whose same-timestamp puts and gets settle canonically.

    A plain :class:`Store` admits puts and serves gets synchronously in
    event-pop order, so when two processes put (or get) at the same
    simulated time the item order is whichever event happened to pop
    first -- the same tie-order race :class:`ArbitratedResource` closes
    for semaphores.  An ``ArbitratedStore`` stages both sides during the
    timestep and settles when the environment has processed every event
    at the current time: queued puts are admitted ordered by ``(arrival
    time, key)`` and queued gets are served in the same canonical order,
    each taking the oldest admitted item.  Keys default to the calling
    process's causal :attr:`~repro.sim.process.Process.order_key`.

    Settlement never advances the clock, so switching a model from
    ``Store`` to ``ArbitratedStore`` changes *which same-timestamp put
    lands first*, never *how long anything takes*.  The admitted items
    live in ``.items`` (same attribute as :class:`Store`, so telemetry
    probes and pool scans keep working).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[ArbitratedStorePut] = []
        self._get_queue: List[ArbitratedStoreGet] = []
        self._seq = 0
        #: Set while queued for settlement (managed by the environment).
        self._settle_queued = False
        env.register_resource(self)

    @property
    def capacity(self) -> float:
        return self._capacity

    def _default_key(self, key: Any) -> Any:
        if key is None:
            proc = self.env.active_process
            key = proc.order_key if proc is not None else ()
        return key

    def put(self, item: Any, key: Any = None) -> ArbitratedStorePut:
        return ArbitratedStorePut(self, item, self._default_key(key))

    def get(self, key: Any = None) -> ArbitratedStoreGet:
        return ArbitratedStoreGet(self, self._default_key(key))

    # -- internals -------------------------------------------------------

    def _do_put(self, event: ArbitratedStorePut) -> None:
        self._seq += 1
        event._seq = self._seq
        self._put_queue.append(event)
        self.env._mark_arbiter_dirty(self)

    def _do_get(self, event: ArbitratedStoreGet) -> None:
        self._seq += 1
        event._seq = self._seq
        self._get_queue.append(event)
        self.env._mark_arbiter_dirty(self)

    @staticmethod
    def _order(event: Any) -> Any:
        return (event.arrived_at, _key_order(event.key), event._seq)

    def _settle(self) -> None:
        """Admit queued puts and serve queued gets in canonical order."""
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and len(self.items) < self._capacity:
                if len(self._put_queue) > 1:
                    self._put_queue.sort(key=self._order)
                while self._put_queue and len(self.items) < self._capacity:
                    put = self._put_queue.pop(0)
                    self.items.append(put.item)
                    if put.callbacks or self.env._tick_hooks:
                        put.succeed()
                    else:
                        # Fire-and-forget put (nobody yielded it): admit
                        # without scheduling a wake-up event.
                        put._ok = True
                        put._value = None
                        put.callbacks = None
                    progressed = True
            if self._get_queue and self.items:
                if len(self._get_queue) > 1:
                    self._get_queue.sort(key=self._order)
                while self._get_queue and self.items:
                    get = self._get_queue.pop(0)
                    get.succeed(self.items.pop(0))
                    progressed = True


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """Holds a continuous quantity between 0 and *capacity*."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._put_queue: List[ContainerPut] = []
        self._get_queue: List[ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self._level + put.amount <= self._capacity:
                    self._put_queue.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self._level >= get.amount:
                    self._get_queue.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progressed = True


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class FilterStoreGet(StoreGet):
    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]) -> None:
        self.filter = filter
        super().__init__(store)


class Store:
    """FIFO store of discrete items with optional capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            idx = 0
            while idx < len(self._put_queue):
                put = self._put_queue[idx]
                if self._do_put(put):
                    self._put_queue.pop(idx)
                    progressed = True
                else:
                    idx += 1
            idx = 0
            while idx < len(self._get_queue):
                get = self._get_queue[idx]
                if self._do_get(get):
                    self._get_queue.pop(idx)
                    progressed = True
                else:
                    idx += 1


class FilterStore(Store):
    """Store whose ``get`` takes a predicate selecting which item to take."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        assert isinstance(event, FilterStoreGet)
        for i, item in enumerate(self.items):
            if event.filter(item):
                self.items.pop(i)
                event.succeed(item)
                return True
        return False
