"""The simulation environment: clock and event loop."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Tuple, Union

from repro.sim.events import (
    PENDING,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


#: Heap entries are ``(time, key, event)`` with ``key`` packing priority
#: and tie-break rank into one integer: ``priority * 2**53 +
#: tie_sign * eid``.  Urgent events (priority 0) sort below normal ones
#: (priority 1) at the same time regardless of eid, and within a
#: priority the eid term reproduces fifo (+eid) or lifo (-eid) popping
#: exactly as the old ``(time, priority, tie_sign*eid, event)`` 4-tuple
#: did -- one tuple slot and one comparison fewer per push/pop.  2**53
#: leaves room for 9e15 events, far beyond any run.
_NORMAL_BASE = 1 << 53


class StopSimulation(Exception):
    """Raised to stop the event loop when the ``until`` event fires."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event._ok:
            raise cls(event._value)
        raise event._value


class Environment:
    """Discrete-event simulation environment.

    The environment owns the simulated clock (:attr:`now`, in seconds) and
    the pending-event queue.  Time only advances inside :meth:`run`.
    """

    #: Valid tie-breaking orders for same-(time, priority) events.
    TIE_BREAKS = ("fifo", "lifo")

    def __init__(self, initial_time: float = 0.0, tie_break: str = "fifo") -> None:
        if tie_break not in self.TIE_BREAKS:
            raise ValueError(f"tie_break must be one of {self.TIE_BREAKS}, got {tie_break!r}")
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._eid = 0
        #: Tie-breaking among events with equal (time, priority).  The
        #: default ("fifo") pops them in scheduling order; "lifo" pops
        #: them in reverse.  The tie-order race sanitizer runs the same
        #: experiment under both orders: a mechanism-faithful simulation
        #: must produce bit-identical reports either way, because
        #: same-timestamp arbitration is settled by canonical keys
        #: (:class:`~repro.sim.resources.ArbitratedResource`), never by
        #: event insertion order.
        self.tie_break = tie_break
        self._tie_sign = 1 if tie_break == "fifo" else -1
        self._active_process: Optional[Process] = None
        #: Observers called as ``hook(now)`` after each processed event.
        #: Hooks must never schedule events or mutate simulation state --
        #: they exist so telemetry can sample in simulated time without a
        #: perpetual sampler process keeping a run-until-empty loop alive.
        self._tick_hooks: List[Any] = []
        #: Arbitrated resources with undecided grants, settled when the
        #: current timestep has no events left (see :meth:`step`).
        self._dirty_arbiters: List[Any] = []
        #: Every resource ever constructed on this environment, in
        #: creation order -- the runtime leak sanitizer walks this.
        self._resources: List[Any] = []
        #: Root-process counter used to assign causal order keys (see
        #: :attr:`~repro.sim.process.Process.order_key`).
        self._root_processes = 0

    # -- introspection --------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_process

    @property
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after *delay* seconds."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
        order_key: Optional[tuple] = None,
    ) -> Process:
        """Start a new :class:`Process` running *generator*.

        ``order_key`` overrides the causal spawn-tree key (see
        :attr:`~repro.sim.process.Process.order_key`) -- use it when the
        spawner's identity is itself tie-order-dependent.
        """
        return Process(self, generator, name=name, order_key=order_key)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of *events* has fired."""
        return AnyOf(self, events)

    def register_resource(self, resource: Any) -> None:
        """Record *resource* for end-of-run leak checking.

        Called by the constructors in :mod:`repro.sim.resources`.  The
        list is append-only and in creation order, so walking it is
        deterministic.
        """
        self._resources.append(resource)

    @property
    def resources(self) -> Tuple[Any, ...]:
        """All resources constructed on this environment (creation order)."""
        return tuple(self._resources)

    def _mark_arbiter_dirty(self, arbiter: Any) -> None:
        """Queue *arbiter* for settlement at the end of this timestep."""
        if not arbiter._settle_queued:
            arbiter._settle_queued = True
            self._dirty_arbiters.append(arbiter)

    def _settle_arbiters(self) -> None:
        """Settle every dirty arbitrated resource (canonical grant order).

        Settling may resume processes at the current time, which may
        dirty further arbiters; :meth:`step` loops until the timestep is
        quiescent before letting the clock advance.
        """
        while self._dirty_arbiters:
            # Swap the batch out so settles that re-dirty arbiters append
            # to a fresh list; processing order matches the one-at-a-time
            # FIFO exactly (current batch in order, then the new batch).
            batch = self._dirty_arbiters
            self._dirty_arbiters = []
            for arbiter in batch:
                arbiter._settle_queued = False
                arbiter._settle()

    def add_tick_hook(self, hook) -> None:
        """Register *hook* to observe the clock after every :meth:`step`.

        The hook receives the current simulated time.  It runs outside any
        process context and must be a pure observer: scheduling events or
        touching resources from a hook would perturb the run it is meant
        to measure.
        """
        self._tick_hooks.append(hook)

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority_urgent: bool = False,
    ) -> None:
        """Put *event* on the queue to be processed after *delay*."""
        eid = self._eid + 1
        self._eid = eid
        key = self._tie_sign * eid
        if not priority_urgent:
            key += _NORMAL_BASE
        heappush(self._queue, (self._now + delay, key, event))

    # fast-path: requires=telemetry -- merged grants elide interior events only telemetry tick hooks could observe
    def schedule_at(
        self,
        event: Event,
        when: float,
        priority_urgent: bool = False,
    ) -> None:
        """Put *event* on the queue at absolute time *when* (>= now).

        Merged-grant fast paths use this to reproduce the *exact* float
        a chain of successive timeouts would have produced (``(g + a) +
        b`` is not bit-identical to ``g + (a + b)``); callers pass the
        successively-added absolute time rather than a summed delay.
        """
        eid = self._eid + 1
        self._eid = eid
        key = self._tie_sign * eid
        if not priority_urgent:
            key += _NORMAL_BASE
        heappush(self._queue, (when, key, event))

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock.

        Before the clock may advance past the current time (or the queue
        runs dry), pending arbitrated-resource grants are settled so that
        same-timestamp acquisition order is decided by canonical keys,
        never by event insertion order.
        """
        queue = self._queue
        if self._dirty_arbiters and (not queue or queue[0][0] > self._now):
            self._settle_arbiters()
        try:
            when, _key, event = heappop(queue)
        except IndexError:
            raise EmptySchedule() from None

        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An un-waited-for event failed: crash the simulation so bugs
            # do not pass silently.
            exc = event._value
            raise exc

        if self._tick_hooks:
            for hook in self._tick_hooks:
                hook(when)

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` -- run until the event queue is empty.
            number -- run until the clock reaches that time.
            :class:`Event` -- run until that event is processed and return
            its value.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                stop_event.callbacks.append(StopSimulation.callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before the current time ({self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks = [StopSimulation.callback]
                self.schedule(stop_event, delay=at - self._now, priority_urgent=True)

        # Inlined event loop: identical to calling step() repeatedly but
        # without the per-event method call and re-resolved globals.
        queue = self._queue
        pop = heappop
        try:
            while True:
                if self._dirty_arbiters and (not queue or queue[0][0] > self._now):
                    self._settle_arbiters()
                if not queue:
                    raise EmptySchedule()
                when, _key, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if self._tick_hooks:
                    for hook in self._tick_hooks:
                        hook(when)
        except StopSimulation as stop:
            return stop.args[0]
        except EmptySchedule:
            if stop_event is not None and stop_event._value is PENDING:
                raise RuntimeError(
                    f"no scheduled events left but {stop_event!r} was not triggered"
                ) from None
        return None

    def __repr__(self) -> str:
        return f"<Environment t={self._now:.6f} queued={len(self._queue)}>"
