"""Trace exporters: Chrome trace JSON, latency breakdowns, critical path.

Three consumers of a :class:`~repro.obs.trace.Tracer`'s spans:

- :func:`chrome_trace_events` / :func:`chrome_trace_json` -- the Chrome
  ``trace_event`` format (load the JSON in Perfetto or
  ``chrome://tracing``); one "process" track per simulated node.
- :func:`latency_breakdown` -- partitions each root span's duration
  exactly over the span kinds on its critical path, answering "where
  did the read-call time go, layer by layer".  The per-kind seconds of
  one root sum to that root's duration by construction.
- :func:`critical_path_report` -- the same partition restricted to the
  slowest rank, rendered as a "what bounded the slowest rank" digest.

The partition is *critical-path attribution*: a span's interval is
split at its children's boundaries; uncovered sub-intervals count as
the span's own kind, and sub-intervals covered by concurrent children
are charged to the child finishing last (the one actually gating
progress), recursively.  Unlike naive per-kind duration sums, this
never double-counts concurrent work, so the layer seconds add up to
the wall time being explained.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import Span, Tracer

#: Stable display order for well-known span kinds (unknown kinds sort last).
KIND_ORDER = (
    "client_call",
    "coordinate",
    "prefetch_wait",
    "prefetch_hit_copy",
    "prefetch_issue",
    "art_setup",
    "art_io",
    "stripe_piece",
    "rpc_call",
    "mesh_xfer",
    "server_io",
    "disk_service",
    "scsi_xfer",
    "prefetch_land",
)


# -- Chrome trace_event ----------------------------------------------------


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """Spans as Chrome ``trace_event`` dicts (complete "X" events).

    Timestamps are microseconds of simulated time.  ``pid`` is the
    simulated node (one track per node, named via process_name metadata
    events); ``tid`` is the trace (request) ID, so one request's spans
    line up on one row within its node.
    """
    events: List[dict] = []
    nodes = sorted({s.node_id for s in tracer.spans if s.node_id is not None})
    for node_id in nodes:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node_id,
                "tid": 0,
                "args": {"name": f"node {node_id}"},
            }
        )
    for span in tracer.spans:
        if span.end is None:
            continue
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.attrs:
            args.update(span.attrs)
        events.append(
            {
                "name": span.kind,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "pid": span.node_id if span.node_id is not None else -1,
                "tid": span.trace_id,
                "args": args,
            }
        )
    return events


def chrome_trace_json(tracer: Tracer, indent: Optional[int] = None) -> str:
    """The Chrome trace as a JSON string (``traceEvents`` envelope)."""
    return json.dumps(
        {"traceEvents": chrome_trace_events(tracer), "displayTimeUnit": "ms"},
        indent=indent,
    )


# -- critical-path breakdown ------------------------------------------------


def _children_index(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    index: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is not None and span.end is not None:
            index.setdefault(span.parent_id, []).append(span)
    return index


def _attribute(
    span: Span,
    lo: float,
    hi: float,
    children: Dict[int, List[Span]],
    acc: Dict[str, float],
) -> None:
    """Charge the interval [lo, hi] of *span* to kinds, recursively.

    Sub-intervals not covered by any child count as ``span.kind``;
    covered sub-intervals are charged to the covering child that ends
    last (critical-path semantics for concurrent children).
    """
    if hi <= lo:
        return
    kids = [c for c in children.get(span.span_id, ()) if c.end > lo and c.start < hi]
    if not kids:
        acc[span.kind] = acc.get(span.kind, 0.0) + (hi - lo)
        return
    # Elementary boundaries from the clipped child intervals.
    bounds = {lo, hi}
    for c in kids:
        bounds.add(max(lo, c.start))
        bounds.add(min(hi, c.end))
    cuts = sorted(bounds)
    for a, b in zip(cuts, cuts[1:]):
        if b <= a:
            continue
        covering = [c for c in kids if c.start <= a and c.end >= b]
        if not covering:
            acc[span.kind] = acc.get(span.kind, 0.0) + (b - a)
            continue
        winner = max(covering, key=lambda c: (c.end, c.span_id))
        _attribute(winner, a, b, children, acc)


def breakdown_of(span: Span, tracer: Tracer) -> Dict[str, float]:
    """Critical-path partition of one (finished) span's duration."""
    acc: Dict[str, float] = {}
    if span.end is not None:
        _attribute(span, span.start, span.end, _children_index(tracer.spans), acc)
    return acc


def latency_breakdown(
    tracer: Tracer,
    root_kind: str = "client_call",
    rank: Optional[int] = None,
) -> Dict[str, float]:
    """Per-kind seconds summed over every *root_kind* root span.

    With *rank* given, only roots whose ``rank`` attribute matches are
    included.  The values sum (exactly, up to float addition) to the
    total duration of the included roots -- for ``client_call`` roots of
    one rank, that is the rank's total read-call time.
    """
    children = _children_index(tracer.spans)
    acc: Dict[str, float] = {}
    for root in tracer.roots(root_kind):
        if root.end is None:
            continue
        if rank is not None and (root.attrs or {}).get("rank") != rank:
            continue
        _attribute(root, root.start, root.end, children, acc)
    return acc


def _kind_sort_key(kind: str) -> Tuple[int, str]:
    try:
        return (KIND_ORDER.index(kind), kind)
    except ValueError:
        return (len(KIND_ORDER), kind)


def render_breakdown(
    breakdown: Dict[str, float], title: str = "Per-layer latency breakdown"
) -> str:
    """Fixed-width text table of a breakdown dict."""
    total = sum(breakdown.values())
    lines = [title, "-" * len(title)]
    width = max((len(k) for k in breakdown), default=5)
    for kind in sorted(breakdown, key=_kind_sort_key):
        seconds = breakdown[kind]
        pct = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"{kind.rjust(width)}  {seconds:10.4f}s  {pct:5.1f}%")
    lines.append(f"{'total'.rjust(width)}  {total:10.4f}s  100.0%")
    return "\n".join(lines)


def critical_path_report(tracer: Tracer) -> str:
    """What bounded the slowest rank's read-call time.

    Finds the rank whose ``client_call`` spans total the most simulated
    time (the rank that sets the paper's collective bandwidth), renders
    its per-layer breakdown, and names the single slowest call and the
    layer that dominated it.
    """
    totals: Dict[object, float] = {}
    for root in tracer.roots("client_call"):
        if root.end is None:
            continue
        rank = (root.attrs or {}).get("rank")
        totals[rank] = totals.get(rank, 0.0) + root.duration
    if not totals:
        return "critical path: no finished client_call spans recorded"
    slowest_rank = max(totals, key=lambda r: (totals[r], str(r)))
    breakdown = latency_breakdown(tracer, rank=slowest_rank)
    dominant = max(breakdown, key=breakdown.get)
    calls = [
        r
        for r in tracer.roots("client_call")
        if r.end is not None and (r.attrs or {}).get("rank") == slowest_rank
    ]
    slowest_call = max(calls, key=lambda s: s.duration)
    call_breakdown = breakdown_of(slowest_call, tracer)
    call_dominant = max(call_breakdown, key=call_breakdown.get)
    lines = [
        f"critical path: rank {slowest_rank} bounds the collective "
        f"(read-call time {totals[slowest_rank]:.4f}s over {len(calls)} calls)",
        f"dominant layer: {dominant} "
        f"({breakdown[dominant]:.4f}s, "
        f"{100.0 * breakdown[dominant] / totals[slowest_rank]:.1f}% of read-call time)",
        f"slowest call: {slowest_call.duration:.4f}s at t={slowest_call.start:.4f}s, "
        f"bounded by {call_dominant} "
        f"({call_breakdown[call_dominant]:.4f}s)",
        "",
        render_breakdown(breakdown, title=f"Breakdown of rank {slowest_rank}"),
    ]
    return "\n".join(lines)
