"""Aggregate statistics: counters, time-weighted signals, sample series.

Historically this lived at ``repro.sim.monitor``; it is now part of the
unified observability subsystem (``repro.obs``) alongside the tracer.
``repro.sim.monitor`` remains as a compatibility shim.

Models register named statistics on a :class:`Monitor`:

- :class:`CounterStat` -- monotonically increasing counts (requests issued,
  cache hits, bytes moved).
- :class:`TimeWeightedStat` -- piecewise-constant values integrated over
  simulated time (queue lengths, utilisation).
- :class:`SeriesStat` -- raw samples (latencies) with summary statistics.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class CounterStat:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def __repr__(self) -> str:
        return f"<CounterStat {self.name}={self.value}>"


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal."""

    __slots__ = ("name", "env", "_value", "_last_change", "_area", "_start", "_max")

    def __init__(self, env: "Environment", name: str, initial: float = 0.0) -> None:
        self.env = env
        self.name = name
        self._value = initial
        self._last_change = env.now
        self._start = env.now
        self._area = 0.0
        self._max = initial

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.env.now
        self._area += self._value * (now - self._last_change)
        self._last_change = now
        self._value = value
        if value > self._max:
            self._max = value

    def adjust(self, delta: float) -> None:
        self.set(self._value + delta)

    @property
    def maximum(self) -> float:
        return self._max

    def mean(self) -> float:
        """Time-weighted mean from creation to now.

        Degenerate window: when queried at the instant the stat was
        created (``env.now == start``, zero elapsed time) there is no
        interval to integrate over, so the mean is *defined* as the
        current value -- the limit of the time-weighted mean as the
        window shrinks to zero, since only the latest value has any
        weight going forward.  Values set and overwritten within the
        zero-width window carry no weight.
        """
        now = self.env.now
        total = now - self._start
        if total == 0:
            # Explicit degenerate-window definition (see docstring); not
            # a float accident.
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / total

    def __repr__(self) -> str:
        return f"<TimeWeightedStat {self.name}={self._value} mean={self.mean():.4g}>"


class SeriesStat:
    """Collects raw samples and offers summary statistics."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    def record(self, sample: float) -> None:
        self.samples.append(sample)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    def minimum(self) -> float:
        return min(self.samples) if self.samples else math.nan

    def maximum(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, q in [0, 100]."""
        if not self.samples:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        data = sorted(self.samples)
        if len(data) == 1:
            return data[0]
        pos = (len(data) - 1) * q / 100.0
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return data[lo]
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def __repr__(self) -> str:
        return f"<SeriesStat {self.name} n={self.count} mean={self.mean():.4g}>"


class Monitor:
    """Registry of named statistics for one simulation run."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._counters: Dict[str, CounterStat] = {}
        self._weighted: Dict[str, TimeWeightedStat] = {}
        self._series: Dict[str, SeriesStat] = {}

    def counter(self, name: str) -> CounterStat:
        stat = self._counters.get(name)
        if stat is None:
            stat = self._counters[name] = CounterStat(name)
        return stat

    def time_weighted(self, name: str, initial: float = 0.0) -> TimeWeightedStat:
        stat = self._weighted.get(name)
        if stat is None:
            stat = self._weighted[name] = TimeWeightedStat(self.env, name, initial)
        return stat

    def series(self, name: str) -> SeriesStat:
        stat = self._series.get(name)
        if stat is None:
            stat = self._series[name] = SeriesStat(name)
        return stat

    def counter_value(self, name: str) -> float:
        stat = self._counters.get(name)
        return stat.value if stat is not None else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Flat snapshot of every statistic's headline value."""
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[f"counter.{name}"] = c.value
        for name, w in self._weighted.items():
            out[f"tw.{name}.mean"] = w.mean()
            out[f"tw.{name}.max"] = w.maximum
        for name, s in self._series.items():
            out[f"series.{name}.count"] = s.count
            out[f"series.{name}.mean"] = s.mean()
        return out
