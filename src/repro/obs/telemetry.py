"""Fleet-wide telemetry: labeled metrics, probes, and a simulated-time sampler.

The tracer (PR 1) answers "where did *this* read's time go"; telemetry
answers "which resource filled up first as the run progressed" -- the
question behind the paper's 160->224 KB crossover.  Three pieces:

- :class:`MetricRegistry` -- Prometheus-shaped metric families
  (:class:`CounterMetric`, :class:`GaugeMetric`, :class:`HistogramMetric`
  with fixed bucket bounds), each fanned out over label sets.
- Probes -- zero-argument callables registered per labeled series
  (``lambda: raid.busy_s``).  Components own plain floats/ints; telemetry
  reads them, so the hot path never pays a method call when disabled.
- :class:`Telemetry` -- the facade on ``machine.obs``.  When enabled it
  installs an :class:`~repro.sim.environment.Environment` *tick hook* and
  snapshots every probe into a time series at a fixed simulated-time
  cadence.

Why a tick hook and not a sampler *process*: the machine's event loop
runs until the queue is empty, so a perpetual ``while True: yield
timeout`` sampler would keep the run alive forever.  A hook observes the
clock after each processed event and never schedules anything -- which
also makes the bit-identical guarantee structural: an enabled run cannot
perturb the event queue because it never touches it.

The contract mirrors tracing exactly: zero overhead when disabled
(components accumulate the same plain counters either way; probes are
simply never registered) and bit-identical :class:`BandwidthReport`\\ s
when enabled (asserted in ``tests/test_obs_telemetry.py``).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: Canonical label encoding: sorted ``(key, value)`` pairs.
LabelsKey = Tuple[Tuple[str, str], ...]

#: Default histogram bounds for simulated-time durations (seconds).
#: Spans 0.1 ms (a memcpy) to 2.5 s (a saturated collective read call).
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


def labels_key(labels: Optional[Mapping[str, str]]) -> LabelsKey:
    """Canonicalise a labels mapping into a hashable, sorted key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class CounterMetric:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class GaugeMetric:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramMetric:
    """Fixed-bound cumulative-bucket histogram (Prometheus semantics).

    ``counts[i]`` is the number of observations ``<= bounds[i]``; the
    final slot counts the ``+Inf`` overflow.  ``sum``/``count`` allow
    mean recovery.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts, the way Prometheus exposes them."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _NullMetric:
    """Accepts every metric operation and records nothing.

    Returned by a disabled :class:`Telemetry` so instrumented components
    can hold one unconditional reference (``self._hist.observe(dt)``)
    with near-zero cost and no branches.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricFamily:
    """One named metric fanned out over label sets."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: Dict[LabelsKey, object] = {}

    def child(self, labels: Optional[Mapping[str, str]] = None):
        key = labels_key(labels)
        metric = self.children.get(key)
        if metric is None:
            if self.kind == "counter":
                metric = CounterMetric()
            elif self.kind == "gauge":
                metric = GaugeMetric()
            elif self.kind == "histogram":
                metric = HistogramMetric(self.buckets or DEFAULT_TIME_BUCKETS_S)
            else:  # pragma: no cover - kinds are fixed at creation
                raise ValueError(f"unknown metric kind {self.kind!r}")
            self.children[key] = metric
        return metric


class MetricRegistry:
    """Registry of metric families, keyed and exported in creation order."""

    def __init__(self) -> None:
        self.families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        family = self.families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help=help, buckets=buckets)
            self.families[name] = family
        elif family.kind != kind:
            raise ValueError(f"metric {name!r} already registered as {family.kind}, not {kind}")
        return family

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> CounterMetric:
        return self._family(name, "counter", help).child(labels)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> GaugeMetric:
        return self._family(name, "gauge", help).child(labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS_S,
    ) -> HistogramMetric:
        return self._family(name, "histogram", help, buckets=buckets).child(labels)


class Probe:
    """A registered resource observable: ``fn()`` -> current value."""

    __slots__ = ("name", "labels", "fn", "kind")

    def __init__(self, name: str, labels: LabelsKey, fn: Callable[[], float], kind: str):
        self.name = name
        self.labels = labels
        self.fn = fn
        self.kind = kind


class Telemetry:
    """Metric registry + probe set + simulated-time sampler.

    Parameters
    ----------
    env:
        The simulation environment (may be ``None`` for a registry used
        outside a simulation, e.g. in exporter tests).
    enabled:
        Off by default.  When off, every metric factory returns the
        shared :data:`NULL_METRIC` and probe registration is a no-op, so
        the instrumented hot paths cost one attribute load.
    interval_s:
        Sampler cadence in *simulated* seconds.  Samples are taken at
        the first processed event at-or-after each due time, so the
        spacing is at least ``interval_s`` (event-time resolution, not
        wall-clock).
    """

    def __init__(
        self,
        env=None,
        enabled: bool = False,
        interval_s: float = 0.05,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.env = env
        self.enabled = bool(enabled)
        self.interval_s = float(interval_s)
        self.registry = MetricRegistry()
        self._probes: Dict[Tuple[str, LabelsKey], Probe] = {}
        #: (name, labels) -> [(sim_time, value), ...]
        self.samples: Dict[Tuple[str, LabelsKey], List[Tuple[float, float]]] = {}
        self.sample_times: List[float] = []
        self._next_due = 0.0
        if self.enabled and env is not None:
            env.add_tick_hook(self._on_tick)

    def __bool__(self) -> bool:
        return self.enabled

    # -- metric factories (NULL_METRIC when disabled) -----------------------

    def counter(self, name, labels=None, help=""):
        if not self.enabled:
            return NULL_METRIC
        return self.registry.counter(name, labels, help=help)

    def gauge(self, name, labels=None, help=""):
        if not self.enabled:
            return NULL_METRIC
        return self.registry.gauge(name, labels, help=help)

    def histogram(self, name, labels=None, help="", buckets=DEFAULT_TIME_BUCKETS_S):
        if not self.enabled:
            return NULL_METRIC
        return self.registry.histogram(name, labels, help=help, buckets=buckets)

    # -- probes -------------------------------------------------------------

    def register_probe(
        self,
        name: str,
        fn: Callable[[], float],
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        kind: str = "gauge",
    ) -> None:
        """Register ``fn`` as the source of the labeled series *name*.

        ``kind`` is ``"gauge"`` for instantaneous levels (queue depth,
        occupancy) or ``"counter"`` for monotonic accumulations
        (busy-seconds, bytes read).  Re-registering the same
        (name, labels) replaces the probe -- re-opened handles refresh
        their probes instead of leaking stale closures.
        """
        if not self.enabled:
            return
        if kind not in ("gauge", "counter"):
            raise ValueError(f"probe kind must be gauge or counter, got {kind!r}")
        key = labels_key(labels)
        self.registry._family(name, kind, help).child(labels)
        self._probes[(name, key)] = Probe(name, key, fn, kind)

    def refresh_probes(self) -> None:
        """Push every probe's current value into its registry metric.

        Called before point-in-time exports (Prometheus snapshot,
        bottleneck report) so gauges reflect *now*, not the last sample.
        """
        for probe in self._probes.values():
            metric = self.registry.families[probe.name].child(dict(probe.labels))
            metric.value = float(probe.fn())

    # -- sampling -----------------------------------------------------------

    def _on_tick(self, now: float) -> None:
        if not self.enabled:
            # Defensive: the hook is only ever installed when enabled
            # (see __init__), so this cannot fire on a disabled run --
            # but sampling from a stray hook would silently tax every
            # event pop, so guard it structurally anyway.  The
            # zero-overhead contract (env._tick_hooks stays empty when
            # telemetry is off) is asserted in
            # tests/test_kernel_perf_safety.py.
            return
        if now < self._next_due and self.sample_times:
            return
        self.sample(now)

    def sample(self, now: Optional[float] = None) -> None:
        """Take one snapshot of every probe and scalar metric at *now*.

        Idempotent per timestamp: a second call at the same (or earlier)
        simulated time is a no-op, so :meth:`finalize` after the run and
        a tick-hook sample at the final event do not duplicate rows.
        """
        if now is None:
            now = self.env.now if self.env is not None else 0.0
        if self.sample_times and now <= self.sample_times[-1]:
            return
        for probe in self._probes.values():
            value = float(probe.fn())
            metric = self.registry.families[probe.name].child(dict(probe.labels))
            metric.value = value
            self.samples.setdefault((probe.name, probe.labels), []).append((now, value))
        for family in self.registry.families.values():
            if family.kind == "histogram":
                continue
            for labels, metric in family.children.items():
                key = (family.name, labels)
                if (family.name, labels) in self._probes:
                    continue  # already sampled above, fresh from the probe
                self.samples.setdefault(key, []).append((now, metric.value))
        self.sample_times.append(now)
        self._next_due = now + self.interval_s

    def finalize(self) -> None:
        """Capture the end-of-run state as the last sample.

        Handles the degenerate cases the sampler alone would miss: a
        zero-duration run (no events -> no ticks) still gets one sample
        at t=0, and an interval longer than the run still ends with the
        final resource state on record.
        """
        if self.enabled:
            self.sample()

    # -- queries ------------------------------------------------------------

    def series(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> List[Tuple[float, float]]:
        """The sampled ``(time, value)`` series for one labeled metric."""
        return self.samples.get((name, labels_key(labels)), [])

    def series_by_name(self, name: str) -> Dict[LabelsKey, List[Tuple[float, float]]]:
        """All sampled series of family *name*, keyed by label set."""
        return {labels: pts for (fam, labels), pts in self.samples.items() if fam == name}

    @property
    def n_samples(self) -> int:
        return len(self.sample_times)

    @property
    def elapsed_s(self) -> float:
        """Simulated span covered by samples (0.0 if fewer than one)."""
        if not self.sample_times:
            return 0.0
        return self.sample_times[-1] - self.sample_times[0]

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Telemetry {state} families={len(self.registry.families)} "
            f"probes={len(self._probes)} samples={self.n_samples}>"
        )


#: Shared disabled instance for components constructed without a monitor.
NULL_TELEMETRY = Telemetry(env=None, enabled=False)


def get_telemetry(monitor) -> Telemetry:
    """Resolve the telemetry handle from a monitor-ish object.

    Mirrors :func:`repro.obs.trace.get_tracer`: components take one
    ``monitor=`` parameter; if it is an
    :class:`~repro.obs.observability.Observability` (or anything else
    carrying a ``telemetry`` attribute) the live handle is returned,
    otherwise the shared :data:`NULL_TELEMETRY`.
    """
    telemetry = getattr(monitor, "telemetry", None)
    if isinstance(telemetry, Telemetry):
        return telemetry
    return NULL_TELEMETRY
