"""Mechanism-importance observatory: automated ablation harness.

The paper attributes its bandwidth to a stack of cooperating mechanisms
(one-request-ahead prefetch, Fast Path, UFS block coalescing, ART
queueing, LOOK disk scheduling, server readahead, the drive track
cache).  This module turns "which mechanism buys which megabyte?" into
an instrument:

- a declarative **mechanism registry** mapping each named mechanism onto
  the :class:`~repro.config.MachineConfig` / :class:`~repro.config.PFSConfig`
  knob that disables it, validated so the all-mechanisms-on configuration
  is a strict no-op against the bench3 golden fingerprints;
- a **baseline-plus-one-off run-set generator** with stable run IDs
  (``ablation:M_RECORD:64kb:off=track_cache``), executed per workload
  mode through the existing observability plane;
- a **ranked importance report** (per-cell and aggregate bandwidth
  deltas plus attribution from the always-on monitor counters: disk /
  SCSI utilization, track-cache and buffer-cache hit-rate shifts)
  emitted as ``BENCH_ablation.json`` with ASCII and Markdown renderers;
- a **regression tripwire** (``python -m repro.obs.ablation --check``)
  that diffs the current importance vector against a committed
  ``benchmarks/baseline_ablation.json`` and exits non-zero when any
  mechanism's importance collapses -- a refactor that silently
  disconnects a mechanism now fails in CI instead of shipping.

Attribution is read from the always-on monitor counters and
``machine.utilization_report()`` rather than the sampling telemetry
plane so the PR-6 fast kernel stays engaged for the sweep (telemetry
sampling would force the stepped paths); ``--telemetry`` opts into full
sampling when per-run bottleneck reports are wanted.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import KB, MachineConfig, PFSConfig
from repro.hardware.params import HardwareParams

MB = 1024.0 * 1024.0

#: Workload modes the default sweep covers.  M_RECORD/M_SYNC/M_UNIX are
#: the paper's shared-file modes; M_ASYNC runs with overlapping readers
#: (no partition), the case that exercises the drive track cache.
DEFAULT_MODES = ("M_RECORD", "M_SYNC", "M_UNIX", "M_ASYNC")
#: Request sizes swept per mode: 64KB (the paper's block size), 256KB
#: (past the prefetch-gain knee), and 1024KB (each I/O node sees two
#: contiguous stripe units -- the case UFS coalescing can merge).
DEFAULT_SIZES_KB = (64, 256, 1024)
#: Rounds per rank per run (golden validation always uses 4 -- the
#: capture setting of ``tests/golden/bench3_fingerprints.json``).
DEFAULT_ROUNDS = 4
#: Computation delay between reads: the paper's "balanced workload"
#: middle ground where prefetch overlap actually matters.
DEFAULT_DELAY_S = 0.05

#: Tripwire defaults: a mechanism matters when its baseline importance
#: is >= MIN_IMPORTANCE; it has collapsed when its current importance
#: falls below baseline * COLLAPSE_RATIO and the drop exceeds ABS_TOL.
MIN_IMPORTANCE = 0.05
COLLAPSE_RATIO = 0.5
ABS_TOL = 0.02


class AblationError(Exception):
    """Raised for invalid registry entries, override paths, or reports."""


# -- mechanism registry -----------------------------------------------------


@dataclass(frozen=True)
class Mechanism:
    """One named mechanism and the config overrides that toggle it.

    Override keys are dotted paths over a run specification:

    - ``machine.<field>`` -- a :class:`MachineConfig` field;
    - ``machine.hardware.<group>.<field>`` -- a nested
      :class:`HardwareParams` field (e.g. the disk track cache);
    - ``pfs.<field>`` -- a :class:`PFSConfig` field;
    - ``workload.<field>`` -- a workload-level switch (``prefetch``).

    ``off`` disables the mechanism; ``on`` states it explicitly when the
    enabled state differs from the machine defaults; ``context`` names
    shared overrides applied to *both* sides of the comparison for
    mechanisms that are inert in the default configuration (server
    readahead only acts on buffered mounts, so its delta is measured on
    a buffered context rather than against the Fast Path baseline).
    Context mechanisms contribute nothing to the all-on baseline.
    """

    name: str
    title: str
    description: str
    off: Mapping[str, object]
    on: Mapping[str, object] = field(default_factory=dict)
    context: Mapping[str, object] = field(default_factory=dict)


MECHANISMS: Tuple[Mechanism, ...] = (
    Mechanism(
        name="prefetch",
        title="Client prefetching (one-request-ahead)",
        description=(
            "The paper's central mechanism: each rank keeps one request "
            "in flight ahead of the application, overlapping compute "
            "delay with I/O."
        ),
        off={"workload.prefetch": False},
        on={"workload.prefetch": True},
    ),
    Mechanism(
        name="fastpath",
        title="Fast Path (cache-bypass transfers)",
        description=(
            "Data moves directly between the disks and the reply "
            "message; off routes every block through the I/O-node "
            "buffer cache and pays a cache-to-message memcpy per byte."
        ),
        off={"pfs.buffered": True},
    ),
    Mechanism(
        name="ufs_coalesce",
        title="UFS block coalescing",
        description=(
            "Contiguous file-system blocks are coalesced into single "
            "disk requests; off issues one disk request per 64KB block."
        ),
        off={"machine.ufs_coalesce": False},
    ),
    Mechanism(
        name="art_queueing",
        title="ART request queueing",
        description=(
            "The async request thread pool lets each compute node keep "
            "several transfers in flight; off serialises them through a "
            "single thread."
        ),
        off={"machine.art_threads": 1},
    ),
    Mechanism(
        name="look_scheduling",
        title="LOOK disk scheduling",
        description=(
            "RAID arms serve queued requests nearest-first in the sweep "
            "direction; off dispatches in arrival order (FIFO)."
        ),
        off={"machine.disk_elevator": False},
    ),
    Mechanism(
        name="server_readahead",
        title="Server-side readahead",
        description=(
            "The I/O node pulls the next blocks of the stripe file into "
            "its cache after a buffered read -- the server-side "
            "alternative to client prefetching.  Inert on Fast Path "
            "mounts, so its delta is measured on a buffered context."
        ),
        context={"pfs.buffered": True},
        on={"machine.server_readahead_blocks": 4},
        off={"machine.server_readahead_blocks": 0},
    ),
    Mechanism(
        name="track_cache",
        title="Drive track cache",
        description=(
            "Requests falling inside the most recently transferred "
            "region are served from the drive buffer with no "
            "positioning cost; off zeroes the buffer."
        ),
        off={"machine.hardware.disk.track_cache_bytes": 0},
    ),
    Mechanism(
        name="adaptive_depth",
        title="Adaptive depth-k prefetch pipeline",
        description=(
            "Per-file controller that deepens or shallows the prefetch "
            "pipeline from the handle's own hit/partial/miss window.  "
            "Indistinguishable from the static prototype on the paper's "
            "M_RECORD cells (by design), so its delta is measured on the "
            "strided M_ASYNC family where prediction and depth matter."
        ),
        context={"workload.family": "strided"},
        on={"machine.prefetch_policy": "adaptive"},
        off={"machine.prefetch_policy": "one-ahead"},
    ),
    Mechanism(
        name="stride_detection",
        title="Stride detection for prefetch prediction",
        description=(
            "Infers the access stride from the demand offsets so "
            "lseek-strided M_ASYNC streams are predicted correctly; off "
            "falls back to the (wrong) sequential mode arithmetic.  "
            "Measured under the adaptive policy on the strided family."
        ),
        context={"workload.family": "strided", "machine.prefetch_policy": "adaptive"},
        on={"machine.prefetch_stride_detect": True},
        off={"machine.prefetch_stride_detect": False},
    ),
    Mechanism(
        name="online_tuner",
        title="Online prefetch tuner",
        description=(
            "Interval-driven retuning of depth envelope / buffer quota / "
            "request batching from each prefetcher's own counters "
            "(zero scheduled events).  Measured under the adaptive "
            "policy on the strided family."
        ),
        context={"workload.family": "strided", "machine.prefetch_policy": "adaptive"},
        on={"machine.tuner": True},
        off={"machine.tuner": False},
    ),
)


def mechanism(name: str) -> Mechanism:
    """Registry lookup by name; raises :class:`AblationError` on miss."""
    for mech in MECHANISMS:
        if mech.name == name:
            return mech
    raise AblationError(
        f"unknown mechanism {name!r}; registry has "
        f"{', '.join(m.name for m in MECHANISMS)}"
    )


def baseline_overrides() -> Dict[str, object]:
    """The all-mechanisms-on override set (context mechanisms excluded).

    Every non-context mechanism contributes its ``on`` overrides; the
    result must resolve to the pure default configs plus the workload's
    prefetch switch -- :func:`validate_registry` enforces it.
    """
    merged: Dict[str, object] = {}
    for mech in MECHANISMS:
        if mech.context:
            continue
        merged.update(mech.on)
    return merged


# -- override resolution ----------------------------------------------------

#: Workload-level override fields: the prefetch on/off switch and the
#: workload family ("collective" = the paper's shared-file readers,
#: "strided" = the non-unit-stride M_ASYNC family the depth/stride/tuner
#: mechanisms are measured on).
_WORKLOAD_FIELDS = ("prefetch", "family")
_WORKLOAD_FAMILIES = ("collective", "strided")


def resolve_configs(
    overrides: Mapping[str, object],
    tie_break: str = "fifo",
    telemetry: bool = False,
) -> Tuple[MachineConfig, PFSConfig, Dict[str, object]]:
    """Resolve dotted-path overrides into concrete run configs.

    Returns ``(machine_config, pfs_config, workload_kwargs)`` where the
    workload kwargs carry ``prefetch`` and ``family``.  Unknown paths or
    fields raise :class:`AblationError` at resolution time, so a
    registry entry pointing at a renamed knob fails loudly instead of
    silently measuring nothing.
    """
    machine_kw: Dict[str, object] = {}
    hardware_kw: Dict[str, Dict[str, object]] = {}
    pfs_kw: Dict[str, object] = {}
    workload: Dict[str, object] = {"prefetch": True, "family": "collective"}

    machine_fields = {f.name for f in dataclasses.fields(MachineConfig)}
    pfs_fields = {f.name for f in dataclasses.fields(PFSConfig)}
    hw_groups = {f.name: f for f in dataclasses.fields(HardwareParams)}

    for path in sorted(overrides):
        value = overrides[path]
        parts = path.split(".")
        if parts[0] == "machine" and len(parts) == 2:
            if parts[1] not in machine_fields or parts[1] == "hardware":
                raise AblationError(f"unknown MachineConfig field in {path!r}")
            machine_kw[parts[1]] = value
        elif parts[:2] == ["machine", "hardware"] and len(parts) == 4:
            group, fname = parts[2], parts[3]
            if group not in hw_groups:
                raise AblationError(f"unknown hardware group in {path!r}")
            group_type = type(getattr(HardwareParams(), group))
            if fname not in {f.name for f in dataclasses.fields(group_type)}:
                raise AblationError(f"unknown {group} field in {path!r}")
            hardware_kw.setdefault(group, {})[fname] = value
        elif parts[0] == "pfs" and len(parts) == 2:
            if parts[1] not in pfs_fields:
                raise AblationError(f"unknown PFSConfig field in {path!r}")
            pfs_kw[parts[1]] = value
        elif parts[0] == "workload" and len(parts) == 2:
            if parts[1] not in _WORKLOAD_FIELDS:
                raise AblationError(f"unknown workload field in {path!r}")
            if parts[1] == "family" and value not in _WORKLOAD_FAMILIES:
                raise AblationError(
                    f"unknown workload family {value!r}; known: "
                    f"{', '.join(_WORKLOAD_FAMILIES)}"
                )
            workload[parts[1]] = value
        else:
            raise AblationError(f"unresolvable override path {path!r}")

    hardware = HardwareParams()
    if hardware_kw:
        hardware = dataclasses.replace(
            hardware,
            **{
                group: dataclasses.replace(getattr(hardware, group), **fields)
                for group, fields in hardware_kw.items()
            },
        )
        machine_kw["hardware"] = hardware
    machine_cfg = MachineConfig(
        tie_break=tie_break, telemetry=telemetry, **machine_kw
    )
    pfs_cfg = PFSConfig(**pfs_kw)
    return machine_cfg, pfs_cfg, workload


# -- run-set generation -----------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One run of the sweep: a workload cell under one override set."""

    run_id: str
    mode: str
    request_kb: int
    #: "baseline", "on" (context mechanism enabled), or "off".
    role: str
    mechanism: Optional[str]
    overrides: Tuple[Tuple[str, object], ...]

    @property
    def signature(self) -> str:
        """Canonical signature of the *resolved* configuration.

        Built from the resolved configs rather than the raw override
        paths so runs that spell the same machine differently (e.g. an
        explicit ``server_readahead_blocks: 0`` vs the default) dedupe
        to one simulation.
        """
        machine_cfg, pfs_cfg, workload = resolve_configs(dict(self.overrides))
        return repr((self.mode, self.request_kb, machine_cfg, pfs_cfg, sorted(workload.items())))


def _canon(overrides: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(overrides.items()))


def generate_runs(
    modes: Sequence[str] = DEFAULT_MODES,
    sizes_kb: Sequence[int] = DEFAULT_SIZES_KB,
) -> List[RunSpec]:
    """Baseline-plus-one-off run set with stable IDs.

    Per (mode, size): one all-on baseline, one ``off=<name>`` run per
    default-on mechanism, and an ``ctx=<name>:{on,off}`` pair per
    context mechanism.  IDs are stable across releases -- they key the
    committed baseline the tripwire diffs against.
    """
    base = baseline_overrides()
    runs: List[RunSpec] = []
    for mode in modes:
        for kb in sizes_kb:
            prefix = f"ablation:{mode}:{kb}kb"
            runs.append(
                RunSpec(f"{prefix}:baseline", mode, kb, "baseline", None, _canon(base))
            )
            for mech in MECHANISMS:
                if mech.context:
                    on_ov = {**base, **mech.context, **mech.on}
                    off_ov = {**base, **mech.context, **mech.off}
                    runs.append(
                        RunSpec(
                            f"{prefix}:ctx={mech.name}:on",
                            mode, kb, "on", mech.name, _canon(on_ov),
                        )
                    )
                    runs.append(
                        RunSpec(
                            f"{prefix}:ctx={mech.name}:off",
                            mode, kb, "off", mech.name, _canon(off_ov),
                        )
                    )
                else:
                    off_ov = {**base, **mech.off}
                    runs.append(
                        RunSpec(
                            f"{prefix}:off={mech.name}",
                            mode, kb, "off", mech.name, _canon(off_ov),
                        )
                    )
    return runs


# -- execution --------------------------------------------------------------


def _round(value: float, places: int = 4) -> float:
    return round(value, places)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _attribution(machine, report) -> Dict[str, object]:
    """Per-run attribution from the always-on observability plane."""
    util = machine.utilization_report()
    disk = [v for k, v in util.items() if k.startswith("raid")]
    scsi = [v for k, v in util.items() if k.startswith("scsi")]
    cpu = [v for k, v in util.items() if k.startswith("cpu")]
    mon = machine.monitor
    n_io = machine.config.n_io
    disk_reads = sum(mon.counter_value(f"raid{i}.reads") for i in range(n_io))
    track_hits = sum(
        mon.counter_value(f"raid{i}.track_cache_hits") for i in range(n_io)
    )
    sequential = sum(
        mon.counter_value(f"raid{i}.sequential_hits") for i in range(n_io)
    )
    cache_hits = sum(c.counts.get("hits", 0) for c in machine.caches)
    cache_misses = sum(
        c.counts.get("misses", 0) + c.counts.get("collapsed_misses", 0)
        for c in machine.caches
    )
    record: Dict[str, object] = {
        "bottleneck": machine.bottleneck(),
        "disk_util_mean": _round(_mean(disk)),
        "disk_util_max": _round(max(disk) if disk else 0.0),
        "scsi_util_mean": _round(_mean(scsi)),
        "cpu_util_mean": _round(_mean(cpu)),
        "disk_reads": int(disk_reads),
        "track_cache_hits": int(track_hits),
        "sequential_hits": int(sequential),
        "cache_hits": int(cache_hits),
        "cache_misses": int(cache_misses),
    }
    if report.prefetch is not None:
        stats = report.prefetch
        record["prefetch"] = {
            "hits": stats.hits,
            "partial_hits": stats.partial_hits,
            "misses": stats.misses,
            "issued": stats.issued,
        }
    return record


def execute_run(
    spec: RunSpec,
    rounds: int = DEFAULT_ROUNDS,
    compute_delay: float = DEFAULT_DELAY_S,
    tie_break: str = "fifo",
    telemetry: bool = False,
) -> Dict[str, object]:
    """Execute one run on a fresh machine; returns the run record."""
    from repro.machine import Machine
    from repro.pfs import IOMode
    from repro.workloads import CollectiveReadWorkload, StridedReadWorkload

    machine_cfg, pfs_cfg, workload_kw = resolve_configs(
        dict(spec.overrides), tie_break=tie_break, telemetry=telemetry
    )
    machine = Machine(machine_cfg)
    mount = machine.mount("/pfs", pfs_cfg)
    request = spec.request_kb * KB
    # The prefetcher factory routes through the machine's own policy /
    # tuner knobs; with the default knobs this builds exactly the
    # paper's prototype (proven against the golden fingerprints by
    # validate_registry).
    factory = machine.build_prefetcher if workload_kw["prefetch"] else None
    if workload_kw["family"] == "strided":
        # Non-unit-stride M_ASYNC readers: stride of 3 requests (an odd
        # unit step walks all I/O nodes instead of beating on a subset).
        stride = 3 * request
        file_size = stride * machine_cfg.n_compute * rounds
        machine.create_file(mount, "data", file_size)
        workload = StridedReadWorkload(
            machine,
            mount,
            "data",
            request_size=request,
            stride=stride,
            compute_delay=compute_delay,
            rounds=rounds,
            prefetcher_factory=factory,
        )
    else:
        file_size = request * machine_cfg.n_compute * rounds
        machine.create_file(mount, "data", file_size)
        workload = CollectiveReadWorkload(
            machine,
            mount,
            "data",
            request_size=request,
            compute_delay=compute_delay,
            iomode=IOMode[spec.mode],
            rounds=rounds,
            prefetcher_factory=factory,
            # M_ASYNC runs unpartitioned: every rank walks the same region
            # with its private pointer, the overlapping-readers case the
            # drive track cache exists for.
            async_partition=spec.mode != "M_ASYNC",
        )
    report = workload.run().report
    if telemetry:
        machine.obs.telemetry.finalize()
    record: Dict[str, object] = {
        "run_id": spec.run_id,
        "mode": spec.mode,
        "request_kb": spec.request_kb,
        "role": spec.role,
        "mechanism": spec.mechanism,
        "overrides": {k: v for k, v in spec.overrides},
        "bandwidth_mbps": _round(report.collective_bandwidth_mbps),
        "mean_read_access_s": _round(report.mean_read_access_time_s, 6),
        "total_bytes": report.total_bytes,
        "attribution": _attribution(machine, report),
    }
    return record


def execute_runs(
    runs: Sequence[RunSpec],
    rounds: int = DEFAULT_ROUNDS,
    compute_delay: float = DEFAULT_DELAY_S,
    tie_break: str = "fifo",
    telemetry: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, object]]:
    """Execute a run set; returns ``{run_id: record}``.

    Runs whose override signatures coincide (e.g. the buffered baseline
    shared by ``fastpath`` off and ``server_readahead``'s context-off
    leg) are simulated once and recorded under each ID with
    ``deduped_from`` naming the executed twin.
    """
    records: Dict[str, Dict[str, object]] = {}
    memo: Dict[str, str] = {}
    for spec in runs:
        twin = memo.get(spec.signature)
        if twin is not None:
            record = dict(records[twin])
            record.update(
                run_id=spec.run_id,
                role=spec.role,
                mechanism=spec.mechanism,
                deduped_from=twin,
            )
            records[spec.run_id] = record
            continue
        if progress is not None:
            progress(spec.run_id)
        records[spec.run_id] = execute_run(
            spec,
            rounds=rounds,
            compute_delay=compute_delay,
            tie_break=tie_break,
            telemetry=telemetry,
        )
        memo[spec.signature] = spec.run_id
    return records


# -- registry validation ----------------------------------------------------

_GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "tests"
    / "golden"
    / "bench3_fingerprints.json"
)


def _golden_cell_report(
    size_kb: int, prefetch: bool, iomode: str = "M_RECORD", async_partition: bool = True
):
    """Run one bench3 golden cell through the registry-resolved baseline.

    Mirrors the capture settings of ``tests/golden/bench3_fingerprints.json``
    exactly (rounds=4, no compute delay) but goes through
    :func:`resolve_configs`, so a match proves the registry's all-on
    assembly *and* this harness's run plumbing are both no-ops.
    """
    from repro.machine import Machine
    from repro.pfs import IOMode
    from repro.workloads import CollectiveReadWorkload

    overrides = dict(baseline_overrides())
    overrides["workload.prefetch"] = prefetch
    machine_cfg, pfs_cfg, workload_kw = resolve_configs(overrides)
    machine = Machine(machine_cfg)
    mount = machine.mount("/pfs", pfs_cfg)
    request = size_kb * KB
    machine.create_file(mount, "data", request * machine_cfg.n_compute * 4)
    # Routed through Machine.build_prefetcher so a golden match also
    # proves the config-driven policy plumbing is a no-op by default.
    factory = machine.build_prefetcher if workload_kw["prefetch"] else None
    workload = CollectiveReadWorkload(
        machine,
        mount,
        "data",
        request_size=request,
        iomode=IOMode[iomode],
        rounds=4,
        prefetcher_factory=factory,
        async_partition=async_partition,
    )
    return workload.run().report


#: Golden cells re-derived by validation: (golden key, cell kwargs).
GOLDEN_VALIDATION_CELLS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("table1:64kb:prefetch=True", {"size_kb": 64, "prefetch": True}),
    ("table1:64kb:prefetch=False", {"size_kb": 64, "prefetch": False}),
    ("table1:256kb:prefetch=True", {"size_kb": 256, "prefetch": True}),
    (
        "figure2:64kb:M_UNIX",
        {"size_kb": 64, "prefetch": False, "iomode": "M_UNIX", "async_partition": False},
    ),
)


def validate_registry(golden: bool = True) -> Dict[str, object]:
    """Prove the registry is sound; raises :class:`AblationError` if not.

    Structural checks: the merged all-on override set resolves to the
    pure default :class:`MachineConfig` / :class:`PFSConfig` (a registry
    entry whose ``on`` state drifted from the defaults would silently
    re-baseline every delta), and every mechanism's on/off/context
    overrides resolve to real config fields.

    With ``golden=True`` (requires a repo checkout), the registry-built
    baseline additionally re-runs the bench3 golden cells and must match
    their committed fingerprints bit-for-bit.
    """
    machine_cfg, pfs_cfg, workload_kw = resolve_configs(baseline_overrides())
    if machine_cfg != MachineConfig() or pfs_cfg != PFSConfig():
        raise AblationError(
            "registry all-on overrides do not resolve to the default "
            "MachineConfig/PFSConfig -- a mechanism's 'on' state drifted"
        )
    if workload_kw != {"prefetch": True, "family": "collective"}:
        raise AblationError(
            "registry baseline must enable client prefetch on the "
            "collective family"
        )
    for mech in MECHANISMS:
        for overrides in (mech.off, mech.on, mech.context):
            resolve_configs({**mech.context, **overrides})
        if not mech.off:
            raise AblationError(f"mechanism {mech.name!r} has no off overrides")
    result: Dict[str, object] = {
        "all_on_noop": True,
        "mechanisms": len(MECHANISMS),
        "golden_cells_checked": 0,
    }
    if not golden:
        return result
    if not _GOLDEN_PATH.exists():
        result["golden_skipped"] = f"no golden file at {_GOLDEN_PATH}"
        return result
    from repro.analysis.sanitizers import report_fingerprint

    with open(_GOLDEN_PATH) as fh:
        cells = json.load(fh)["cells"]
    checked = 0
    for key, kwargs in GOLDEN_VALIDATION_CELLS:
        report = _golden_cell_report(**kwargs)
        actual = report_fingerprint(report)
        if actual != cells[key]:
            raise AblationError(
                f"registry baseline breaks golden cell {key}: "
                f"{actual} != {cells[key]} -- the all-on configuration "
                "is not a no-op"
            )
        checked += 1
    result["golden_cells_checked"] = checked
    return result


# -- importance computation -------------------------------------------------


def _cell_attribution_shift(on: Dict, off: Dict) -> Dict[str, float]:
    """How the bottleneck picture moved when the mechanism went away."""
    a_on, a_off = on["attribution"], off["attribution"]

    def hit_rate(a: Dict) -> float:
        reads = a["disk_reads"]
        return a["track_cache_hits"] / reads if reads else 0.0

    def cache_rate(a: Dict) -> float:
        total = a["cache_hits"] + a["cache_misses"]
        return a["cache_hits"] / total if total else 0.0

    return {
        "disk_util_shift": _round(a_off["disk_util_mean"] - a_on["disk_util_mean"]),
        "cpu_util_shift": _round(a_off["cpu_util_mean"] - a_on["cpu_util_mean"]),
        "track_cache_hit_rate_shift": _round(hit_rate(a_off) - hit_rate(a_on)),
        "cache_hit_rate_shift": _round(cache_rate(a_off) - cache_rate(a_on)),
    }


def compute_cells(
    runs: Sequence[RunSpec], records: Mapping[str, Dict[str, object]]
) -> List[Dict[str, object]]:
    """Per-(mode, size, mechanism) bandwidth deltas.

    ``importance`` is the relative bandwidth the mechanism buys in that
    cell: ``(bw_on - bw_off) / bw_on``.  Negative values are legitimate
    (a mechanism that hurts a mode shows up below zero, not clamped).
    """
    by_id = {spec.run_id: spec for spec in runs}
    cells: List[Dict[str, object]] = []
    for spec in runs:
        if spec.role != "off":
            continue
        prefix = f"ablation:{spec.mode}:{spec.request_kb}kb"
        mech = mechanism(spec.mechanism)
        on_id = (
            f"{prefix}:ctx={mech.name}:on" if mech.context else f"{prefix}:baseline"
        )
        if on_id not in by_id:
            raise AblationError(f"run set misses the on-side run {on_id!r}")
        on, off = records[on_id], records[spec.run_id]
        bw_on = on["bandwidth_mbps"]
        bw_off = off["bandwidth_mbps"]
        delta = bw_on - bw_off
        cells.append(
            {
                "mode": spec.mode,
                "request_kb": spec.request_kb,
                "mechanism": mech.name,
                "run_id_on": on_id,
                "run_id_off": spec.run_id,
                "bandwidth_on_mbps": _round(bw_on),
                "bandwidth_off_mbps": _round(bw_off),
                "delta_mbps": _round(delta),
                "importance": _round(delta / bw_on if bw_on else 0.0),
                "attribution_shift": _cell_attribution_shift(on, off),
            }
        )
    return cells


def rank_importance(cells: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate per-mechanism importance, ranked, plus per-mode tables."""

    def aggregate(subset: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
        by_mech: Dict[str, List[Dict[str, object]]] = {}
        for cell in subset:
            by_mech.setdefault(cell["mechanism"], []).append(cell)
        entries = []
        for name, group in by_mech.items():
            importances = [c["importance"] for c in group]
            entries.append(
                {
                    "mechanism": name,
                    "importance": _round(_mean(importances)),
                    "mean_delta_mbps": _round(_mean([c["delta_mbps"] for c in group])),
                    "min_importance": _round(min(importances)),
                    "max_importance": _round(max(importances)),
                    "cells": len(group),
                }
            )
        entries.sort(key=lambda e: (-e["importance"], e["mechanism"]))
        return entries

    modes = sorted({cell["mode"] for cell in cells})
    return {
        "aggregate": aggregate(cells),
        "by_mode": {
            mode: aggregate([c for c in cells if c["mode"] == mode]) for mode in modes
        },
    }


def run_sweep(
    modes: Sequence[str] = DEFAULT_MODES,
    sizes_kb: Sequence[int] = DEFAULT_SIZES_KB,
    rounds: int = DEFAULT_ROUNDS,
    compute_delay: float = DEFAULT_DELAY_S,
    tie_break: str = "fifo",
    telemetry: bool = False,
    golden: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Validate, execute, and rank the full ablation sweep.

    Returns the ``BENCH_ablation.json`` report dict.  Fully
    deterministic: same settings produce a byte-identical report.
    """
    validation = validate_registry(golden=golden)
    runs = generate_runs(modes=modes, sizes_kb=sizes_kb)
    records = execute_runs(
        runs,
        rounds=rounds,
        compute_delay=compute_delay,
        tie_break=tie_break,
        telemetry=telemetry,
        progress=progress,
    )
    cells = compute_cells(runs, records)
    return {
        "bench": "ablation-observatory",
        "schema": 1,
        "settings": {
            "modes": list(modes),
            "request_sizes_kb": list(sizes_kb),
            "rounds": rounds,
            "compute_delay_s": compute_delay,
            "tie_break": tie_break,
            "telemetry": telemetry,
        },
        "validation": validation,
        "mechanisms": [
            {
                "name": m.name,
                "title": m.title,
                "description": m.description,
                "off": dict(m.off),
                "on": dict(m.on),
                "context": dict(m.context),
            }
            for m in MECHANISMS
        ],
        "runs": records,
        "cells": cells,
        "importance": rank_importance(cells),
    }


# -- renderers --------------------------------------------------------------


def _fmt_rows(header: List[str], rows: List[List[str]]) -> List[str]:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines


def _ranking_rows(report: Dict[str, object]) -> List[List[str]]:
    rows = []
    for rank, entry in enumerate(report["importance"]["aggregate"], start=1):
        rows.append(
            [
                str(rank),
                entry["mechanism"],
                f"{entry['importance'] * 100:+.1f}%",
                f"{entry['mean_delta_mbps']:+.2f}",
                f"{entry['min_importance'] * 100:+.1f}%",
                f"{entry['max_importance'] * 100:+.1f}%",
                str(entry["cells"]),
            ]
        )
    return rows


_RANK_HEADER = ["#", "mechanism", "importance", "Δ MB/s", "min", "max", "cells"]


def render_ascii(report: Dict[str, object]) -> str:
    """Fixed-width rendering of the ranked importance report."""
    settings = report["settings"]
    lines = [
        "Mechanism-importance ablation "
        f"(modes={','.join(settings['modes'])}; "
        f"sizes={','.join(str(s) for s in settings['request_sizes_kb'])}KB; "
        f"rounds={settings['rounds']}; delay={settings['compute_delay_s']}s)",
        "",
    ]
    lines.extend(_fmt_rows(_RANK_HEADER, _ranking_rows(report)))
    for mode, entries in report["importance"]["by_mode"].items():
        lines.append("")
        lines.append(f"{mode}:")
        rows = [
            [
                entry["mechanism"],
                f"{entry['importance'] * 100:+.1f}%",
                f"{entry['mean_delta_mbps']:+.2f}",
            ]
            for entry in entries
        ]
        lines.extend(_fmt_rows(["mechanism", "importance", "Δ MB/s"], rows))
    validation = report["validation"]
    lines.append("")
    lines.append(
        f"validation: all-on no-op={validation['all_on_noop']}, "
        f"golden cells checked={validation['golden_cells_checked']}"
    )
    return "\n".join(lines)


def render_markdown(report: Dict[str, object]) -> str:
    """Markdown rendering (ranked aggregate + per-mode tables)."""

    def table(header: List[str], rows: List[List[str]]) -> List[str]:
        out = ["| " + " | ".join(header) + " |"]
        out.append("|" + "|".join(" --- " for _ in header) + "|")
        for row in rows:
            out.append("| " + " | ".join(row) + " |")
        return out

    settings = report["settings"]
    lines = [
        "# Mechanism-importance ablation",
        "",
        f"Modes: {', '.join(settings['modes'])} · sizes: "
        f"{', '.join(str(s) for s in settings['request_sizes_kb'])} KB · "
        f"rounds: {settings['rounds']} · compute delay: "
        f"{settings['compute_delay_s']} s",
        "",
    ]
    lines.extend(table(_RANK_HEADER, _ranking_rows(report)))
    for mode, entries in report["importance"]["by_mode"].items():
        lines.append("")
        lines.append(f"## {mode}")
        lines.append("")
        rows = [
            [
                entry["mechanism"],
                f"{entry['importance'] * 100:+.1f}%",
                f"{entry['mean_delta_mbps']:+.2f}",
            ]
            for entry in entries
        ]
        lines.extend(table(["mechanism", "importance", "Δ MB/s"], rows))
    return "\n".join(lines) + "\n"


# -- regression tripwire ----------------------------------------------------


def check_importance(
    current: Dict[str, object],
    baseline: Dict[str, object],
    min_importance: float = MIN_IMPORTANCE,
    collapse_ratio: float = COLLAPSE_RATIO,
    abs_tol: float = ABS_TOL,
    check_settings: bool = True,
) -> List[str]:
    """Diff two importance vectors; returns violation descriptions.

    A mechanism trips the wire when it mattered in the baseline
    (importance >= *min_importance*) and its current importance fell
    below ``baseline * collapse_ratio`` with an absolute drop larger
    than *abs_tol* -- the signature of a refactor that disconnected the
    mechanism rather than ordinary noise (the simulator is
    deterministic, so any drift at identical settings is a real change).
    """
    violations: List[str] = []
    if check_settings and current.get("settings") != baseline.get("settings"):
        violations.append(
            "sweep settings differ from the baseline "
            f"(current={current.get('settings')!r}, "
            f"baseline={baseline.get('settings')!r}); importances are not "
            "comparable -- regenerate the baseline or pass matching settings"
        )
        return violations
    current_by_name = {
        e["mechanism"]: e for e in current["importance"]["aggregate"]
    }
    for entry in baseline["importance"]["aggregate"]:
        name = entry["mechanism"]
        base_imp = entry["importance"]
        if base_imp < min_importance:
            continue
        cur = current_by_name.get(name)
        if cur is None:
            violations.append(
                f"{name}: present in baseline (importance "
                f"{base_imp:.3f}) but missing from the current report"
            )
            continue
        cur_imp = cur["importance"]
        if cur_imp < base_imp * collapse_ratio and (base_imp - cur_imp) > abs_tol:
            violations.append(
                f"{name}: importance collapsed {base_imp:.3f} -> "
                f"{cur_imp:.3f} (< {collapse_ratio:.0%} of baseline, drop "
                f"> {abs_tol}); was this mechanism disconnected?"
            )
    return violations


# -- CLI --------------------------------------------------------------------

DEFAULT_OUTPUT = "BENCH_ablation.json"
DEFAULT_BASELINE = "benchmarks/baseline_ablation.json"


def _write_json(path: str, payload: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.ablation",
        description=(
            "Mechanism-importance ablation sweep and regression tripwire."
        ),
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="report path (default %(default)s)"
    )
    parser.add_argument(
        "--markdown", default=None, help="also write a Markdown rendering here"
    )
    parser.add_argument(
        "--modes",
        default=",".join(DEFAULT_MODES),
        help="comma-separated workload modes (default %(default)s)",
    )
    parser.add_argument(
        "--sizes-kb",
        default=",".join(str(s) for s in DEFAULT_SIZES_KB),
        help="comma-separated request sizes in KB (default %(default)s)",
    )
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--delay", type=float, default=DEFAULT_DELAY_S)
    parser.add_argument("--tie-break", choices=("fifo", "lifo"), default="fifo")
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="sample full telemetry per run (disables the fast kernel)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-mode, one-size smoke subset (M_RECORD, 64KB, 3 rounds)",
    )
    parser.add_argument(
        "--skip-golden",
        action="store_true",
        help="structural registry validation only (no golden cell runs)",
    )
    parser.add_argument("--list", action="store_true", help="print the registry")
    parser.add_argument(
        "--check",
        action="store_true",
        help="tripwire: diff importance against the committed baseline",
    )
    parser.add_argument(
        "--report",
        default=None,
        help="with --check: read this report instead of re-running the sweep",
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="with --check: report violations but exit 0 (CI smoke mode)",
    )
    parser.add_argument(
        "--min-importance", type=float, default=MIN_IMPORTANCE,
    )
    parser.add_argument(
        "--collapse-ratio", type=float, default=COLLAPSE_RATIO,
    )
    parser.add_argument("--abs-tol", type=float, default=ABS_TOL)
    parser.add_argument(
        "--allow-settings-mismatch",
        action="store_true",
        help="with --check: compare even when sweep settings differ",
    )
    args = parser.parse_args(argv)

    if args.list:
        for mech in MECHANISMS:
            print(f"{mech.name:16s} {mech.title}")
            print(f"{'':16s}   off: {dict(mech.off)}")
            if mech.context:
                print(f"{'':16s}   context: {dict(mech.context)} on: {dict(mech.on)}")
        return 0

    modes = tuple(m for m in args.modes.split(",") if m)
    sizes = tuple(int(s) for s in args.sizes_kb.split(",") if s)
    rounds = args.rounds
    delay = args.delay
    if args.quick:
        modes, sizes, rounds = ("M_RECORD",), (64,), 3

    if args.check and args.report is not None:
        with open(args.report) as fh:
            report = json.load(fh)
    else:
        try:
            report = run_sweep(
                modes=modes,
                sizes_kb=sizes,
                rounds=rounds,
                compute_delay=delay,
                tie_break=args.tie_break,
                telemetry=args.telemetry,
                golden=not args.skip_golden,
                progress=lambda run_id: print(f"  run {run_id}", file=sys.stderr),
            )
        except AblationError as exc:
            print(f"ablation: {exc}", file=sys.stderr)
            return 1
        _write_json(args.output, report)
        print(render_ascii(report))
        print(f"\nwrote {args.output}")
        if args.markdown:
            with open(args.markdown, "w") as fh:
                fh.write(render_markdown(report))
            print(f"wrote {args.markdown}")

    if not args.check:
        return 0

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        print(
            f"ablation: no committed baseline at {args.baseline}; generate "
            "one with --output and commit it",
            file=sys.stderr,
        )
        return 2
    violations = check_importance(
        report,
        baseline,
        min_importance=args.min_importance,
        collapse_ratio=args.collapse_ratio,
        abs_tol=args.abs_tol,
        check_settings=not args.allow_settings_mismatch,
    )
    if violations:
        for violation in violations:
            print(f"TRIPWIRE: {violation}")
        if args.advisory:
            print("(advisory mode: exiting 0)")
            return 0
        return 1
    print(f"tripwire: importance vector consistent with {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
