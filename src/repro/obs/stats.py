"""Prefetching statistics.

Historically this lived at ``repro.core.stats``; it is now part of the
unified observability subsystem (``repro.obs``).  ``repro.core.stats``
remains as a compatibility shim.

Paper section 4: "When a prefetched block is used to serve a future
request from the application, we say that there is a hit on that block.
Although hit ratio serves as a good measure of performance in a
sequential program, in a parallel programming model, overall read
bandwidth seen by an application is a better measure [...]  Another
important measure to consider is the amount of overlap of I/O with
computation."

We therefore track, per handle and aggregated:

- hits (buffer READY when the demand arrived),
- partial hits (buffer IN_FLIGHT: the demand waited only for the
  remainder -- "even if ... the data is not available in the prefetch
  cache (miss when the request is presented), if most of the read is
  already done, the performance benefits can be tremendous"),
- misses, and the wait/overlap times that quantify the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class PrefetchStats:
    """Counters and accumulators for one prefetcher."""

    #: Demand reads served entirely from a READY buffer.
    hits: int = 0
    #: Demand reads that waited for an IN_FLIGHT buffer to land.
    partial_hits: int = 0
    #: Demand reads with no covering buffer.
    misses: int = 0
    #: Prefetch requests issued.
    issued: int = 0
    #: Prefetches skipped because node memory was full.
    skipped_oom: int = 0
    #: Prefetches skipped because an overlapping buffer already existed.
    skipped_duplicate: int = 0
    #: Buffers freed without ever serving a read (wasted work).
    discarded: int = 0
    #: Prefetch transfers that errored (e.g. media failures).
    failed: int = 0
    #: Failed prefetch transfers re-issued within the retry budget (only
    #: non-zero under fault injection).  compare=False: pre-fault-plane
    #: report fingerprints must stay bit-identical, so this counter is
    #: informational -- fault tests compare it explicitly.
    retried: int = field(default=0, compare=False)
    #: Demand reads that waited on a prefetch which then failed and fell
    #: back to a direct read.
    failed_fallbacks: int = 0
    #: Times an adaptive policy paused prefetching.
    throttled: int = 0
    #: Bytes fetched by prefetch requests.
    bytes_prefetched: int = 0
    #: Bytes delivered to demand reads from prefetch buffers.
    bytes_served: int = 0
    #: Time demand reads spent waiting on in-flight prefetches.
    partial_wait_time: float = 0.0
    #: Disk/transfer time hidden from the application: for each consumed
    #: buffer, the span between prefetch issue and demand arrival capped
    #: at the prefetch's service time.
    overlap_time: float = 0.0
    #: Per-consumption overlap fractions (1.0 = fully hidden).
    overlap_fractions: List[float] = field(default_factory=list)

    @property
    def demand_reads(self) -> int:
        return self.hits + self.partial_hits + self.misses + self.failed_fallbacks

    @property
    def hit_rate(self) -> float:
        """Fraction of demand reads served fully from a ready buffer.

        Zero-read guarded: 0.0 before any demand read.  The canonical
        rate accessor consumers (adaptive policy, tuner, benches) should
        use instead of dividing counters ad hoc.
        """
        total = self.demand_reads
        return self.hits / total if total else 0.0

    @property
    def partial_hit_rate(self) -> float:
        """Fraction of demand reads that waited on an in-flight prefetch."""
        total = self.demand_reads
        return self.partial_hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of demand reads with no covering buffer (zero-read
        guarded).  Failed fallbacks count as their own category, so
        ``hit_rate + partial_hit_rate + miss_rate`` may fall short of 1
        under fault injection."""
        total = self.demand_reads
        return self.misses / total if total else 0.0

    @property
    def hit_ratio(self) -> float:
        """Back-compat alias of :attr:`hit_rate`."""
        return self.hit_rate

    @property
    def coverage(self) -> float:
        """Fraction of demand reads that touched a prefetch buffer at all."""
        total = self.demand_reads
        return (self.hits + self.partial_hits) / total if total else 0.0

    @property
    def waste_ratio(self) -> float:
        """Fraction of issued prefetches that never served a read."""
        return self.discarded / self.issued if self.issued else 0.0

    @property
    def mean_overlap_fraction(self) -> float:
        if not self.overlap_fractions:
            return 0.0
        return sum(self.overlap_fractions) / len(self.overlap_fractions)

    def merge(self, other: "PrefetchStats") -> "PrefetchStats":
        """Aggregate of two stats objects (for machine-wide reporting)."""
        out = PrefetchStats()
        for name in (
            "hits",
            "partial_hits",
            "misses",
            "issued",
            "skipped_oom",
            "skipped_duplicate",
            "discarded",
            "failed",
            "retried",
            "failed_fallbacks",
            "throttled",
            "bytes_prefetched",
            "bytes_served",
        ):
            setattr(out, name, getattr(self, name) + getattr(other, name))
        out.partial_wait_time = self.partial_wait_time + other.partial_wait_time
        out.overlap_time = self.overlap_time + other.overlap_time
        # Sorted multiset union: concatenation alone would make merge
        # order observable through dataclass equality (a+b != b+a), so
        # merging handles in a different order would yield unequal -- yet
        # semantically identical -- machine-wide stats.  Sorting keeps
        # merge commutative and associative; the mean is unaffected.
        out.overlap_fractions = sorted(self.overlap_fractions + other.overlap_fractions)
        return out

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"reads={self.demand_reads} hits={self.hits} "
            f"partial={self.partial_hits} misses={self.misses} "
            f"hit_ratio={self.hit_ratio:.2f} coverage={self.coverage:.2f} "
            f"overlap={self.mean_overlap_fraction:.2f} "
            f"issued={self.issued} wasted={self.discarded}"
        )
