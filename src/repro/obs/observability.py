"""The single observability handle a :class:`~repro.machine.Machine` owns.

:class:`Observability` bundles the statistics registry
(:class:`~repro.obs.monitor.Monitor`) and the request tracer
(:class:`~repro.obs.trace.Tracer`) behind one object that satisfies the
Monitor interface.  Components throughout the stack keep their existing
``monitor=`` constructor argument; when handed an ``Observability`` they
get counters *and* (via :func:`~repro.obs.trace.get_tracer`) the tracer,
with no wiring changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.export import (
    chrome_trace_json,
    critical_path_report,
    latency_breakdown,
    render_breakdown,
)
from repro.obs.monitor import CounterStat, Monitor, SeriesStat, TimeWeightedStat
from repro.obs.telemetry import Telemetry
from repro.obs.telemetry_export import (
    BottleneckReport,
    bottleneck_report,
    prometheus_text,
    timeseries_csv,
    timeseries_jsonl,
    utilization_heatmap,
    utilization_timeline,
)
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Observability:
    """Counters, series, time-weighted stats, and a tracer -- one handle.

    Drop-in for :class:`~repro.obs.monitor.Monitor` wherever a
    ``monitor=`` argument is expected (duck-typed: it delegates the full
    Monitor API), plus:

    - :attr:`tracer` -- the request tracer (disabled unless
      ``trace=True``);
    - :attr:`telemetry` -- the labeled metric registry + sampler
      (disabled unless ``telemetry=True``);
    - export conveniences (:meth:`chrome_trace`, :meth:`breakdown`,
      :meth:`breakdown_table`, :meth:`critical_path`, :meth:`prometheus`,
      :meth:`telemetry_csv`, :meth:`telemetry_jsonl`, :meth:`heatmap`,
      :meth:`timeline`, :meth:`bottleneck_report`).
    """

    def __init__(
        self,
        env: "Environment",
        trace: bool = False,
        telemetry: bool = False,
        telemetry_interval_s: float = 0.05,
    ) -> None:
        self.env = env
        self.monitor = Monitor(env)
        self.tracer = Tracer(env, enabled=trace)
        self.telemetry = Telemetry(env, enabled=telemetry, interval_s=telemetry_interval_s)

    # -- Monitor interface (delegation) -----------------------------------

    def counter(self, name: str) -> CounterStat:
        return self.monitor.counter(name)

    def time_weighted(self, name: str, initial: float = 0.0) -> TimeWeightedStat:
        return self.monitor.time_weighted(name, initial)

    def series(self, name: str) -> SeriesStat:
        return self.monitor.series(name)

    def counter_value(self, name: str) -> float:
        return self.monitor.counter_value(name)

    def snapshot(self) -> Dict[str, float]:
        return self.monitor.snapshot()

    # -- trace exports ------------------------------------------------------

    def chrome_trace(self, indent: Optional[int] = None) -> str:
        """Chrome ``trace_event`` JSON for the recorded spans."""
        return chrome_trace_json(self.tracer, indent=indent)

    def breakdown(self, rank: Optional[int] = None) -> Dict[str, float]:
        """Per-layer critical-path seconds (all ranks, or one rank)."""
        return latency_breakdown(self.tracer, rank=rank)

    def breakdown_table(self, rank: Optional[int] = None) -> str:
        title = (
            "Per-layer latency breakdown"
            if rank is None
            else f"Per-layer latency breakdown (rank {rank})"
        )
        return render_breakdown(self.breakdown(rank=rank), title=title)

    def critical_path(self) -> str:
        """Report on what bounded the slowest rank's read-call time."""
        return critical_path_report(self.tracer)

    def spans(self, kind: Optional[str] = None) -> List:
        return self.tracer.by_kind(kind) if kind else list(self.tracer.spans)

    # -- telemetry exports ---------------------------------------------------

    def prometheus(self) -> str:
        """Current metric state in Prometheus text exposition format."""
        return prometheus_text(self.telemetry)

    def telemetry_csv(self) -> str:
        """Sampled time series as CSV rows."""
        return timeseries_csv(self.telemetry)

    def telemetry_jsonl(self) -> str:
        """Sampled time series as JSON Lines."""
        return timeseries_jsonl(self.telemetry)

    def heatmap(self, family: str = "disk_busy_seconds", **kwargs) -> str:
        """ASCII utilization heatmap of a busy-seconds family."""
        return utilization_heatmap(self.telemetry, family, **kwargs)

    def timeline(self, family: str = "disk_busy_seconds", **kwargs) -> str:
        """ASCII utilization line chart of a busy-seconds family."""
        return utilization_timeline(self.telemetry, family, **kwargs)

    def bottleneck_report(self) -> Optional[BottleneckReport]:
        """Which resource saturated this run (None if telemetry is off)."""
        return bottleneck_report(self.telemetry)

    def __repr__(self) -> str:
        return f"<Observability tracer={self.tracer!r} telemetry={self.telemetry!r}>"
