"""Multi-tenant fairness accounting: Jain's index, percentiles, interference.

The single-job experiments judge a run by one number (the paper's
collective read bandwidth).  Once the machine serves *traffic* -- many
concurrent tenants competing for the same servers
(:mod:`repro.scale`) -- the question becomes distributional: did every
tenant get a proportional share, and who paid for the contention?

This module is pure bookkeeping over finished handle stats:

- :func:`jain_index` -- the classic fairness measure
  ``(sum x)^2 / (n * sum x^2)`` over per-tenant bandwidths, 1.0 for a
  perfectly even allocation, approaching ``1/n`` as one tenant
  monopolises the machine;
- :class:`TenantUsage` -- one tenant's delivered bytes, in-call time,
  and the sorted multiset of per-call durations (for latency
  percentiles);
- :class:`FairnessReport` -- the per-scenario aggregate, with a merge
  that is **commutative and associative** (mirroring
  :meth:`repro.obs.stats.PrefetchStats.merge`) so sharded bench cells
  can be combined in any order without moving a fingerprint.

Nothing here schedules simulation events or samples wall clocks; every
number is a pure function of the handles a scenario run collected, so
reports are bit-identical under either tie-break order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

MB = 1024 * 1024

#: Latency percentiles reported per tenant (nearest-rank).
LATENCY_PERCENTILES = (50, 90, 99)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index over non-negative allocations.

    ``(sum x)^2 / (n * sum x^2)``, in ``(0, 1]`` whenever at least one
    value is positive.  Defined as 1.0 for the degenerate all-equal
    cases (including all-zero and empty): an allocation where every
    tenant got the same amount -- even nothing -- is perfectly fair.
    The equal-values fast path also keeps the "identical tenants => 1"
    law *exact* rather than up-to-rounding; the general case uses
    :func:`math.fsum` so the index is bit-stable under permutation of
    the tenants (a correctly-rounded sum does not depend on order).
    """
    if not values:
        return 1.0
    first = values[0]
    if all(v == first for v in values):
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError("jain_index is defined over non-negative allocations")
    total = math.fsum(values)
    squares = math.fsum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def nearest_rank_percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    if not 0 < pct <= 100:
        raise ValueError("percentile must be in (0, 100]")
    rank = math.ceil(pct / 100.0 * len(sorted_values))
    return sorted_values[rank - 1]


@dataclass
class TenantUsage:
    """One tenant's aggregate I/O accounting across all of its jobs.

    Only multiset-shaped state is stored -- integer sums plus the sorted
    per-call durations.  Every float aggregate (in-call seconds, hence
    bandwidth) is *derived* from the multiset with :func:`math.fsum`, so
    it is a pure function of the call population: folding handles in any
    order, or merging shards in any grouping, yields bit-identical
    usages.  A stored running float sum would pick up 1-ulp drift from
    accumulation order and break exactly that law.
    """

    tenant: str
    #: Bytes delivered to the tenant's read calls.
    bytes_read: int = 0
    #: Jobs (arrival cohorts) that ran to completion.
    jobs: int = 0
    #: Per-call durations as a **sorted** multiset: concatenation alone
    #: would make merge order observable through equality (the same
    #: trick :meth:`PrefetchStats.merge` uses for overlap fractions).
    call_durations_s: List[float] = field(default_factory=list)

    @property
    def read_calls(self) -> int:
        return len(self.call_durations_s)

    @property
    def read_call_time_s(self) -> float:
        """Seconds the tenant's ranks spent inside read calls
        (correctly-rounded sum over the duration multiset)."""
        return math.fsum(self.call_durations_s)

    @property
    def bandwidth_mbps(self) -> float:
        """The tenant's observed bandwidth: its bytes over its own
        in-call time (the paper's per-node metric, per tenant)."""
        t = self.read_call_time_s
        return (self.bytes_read / t) / MB if t > 0 else 0.0

    @property
    def mean_call_s(self) -> float:
        return self.read_call_time_s / self.read_calls if self.read_calls else 0.0

    def latency_percentile_s(self, pct: float) -> float:
        return nearest_rank_percentile(self.call_durations_s, pct)

    def record(self, nbytes: int, durations: Sequence[float]) -> None:
        """Fold one finished handle's stats into this usage."""
        self.bytes_read += nbytes
        self.call_durations_s = sorted(self.call_durations_s + list(durations))

    def merge(self, other: "TenantUsage") -> "TenantUsage":
        """Commutative/associative aggregate of two usages of one tenant."""
        if other.tenant != self.tenant:
            raise ValueError(f"cannot merge usage of {other.tenant!r} into {self.tenant!r}")
        return TenantUsage(
            tenant=self.tenant,
            bytes_read=self.bytes_read + other.bytes_read,
            jobs=self.jobs + other.jobs,
            call_durations_s=sorted(self.call_durations_s + other.call_durations_s),
        )

    def to_jsonable(self) -> dict:
        out = {
            "tenant": self.tenant,
            "bytes_read": self.bytes_read,
            "read_call_time_s": round(self.read_call_time_s, 6),
            "read_calls": self.read_calls,
            "jobs": self.jobs,
            "bandwidth_mbps": round(self.bandwidth_mbps, 4),
        }
        for pct in LATENCY_PERCENTILES:
            out[f"latency_p{pct}_s"] = round(self.latency_percentile_s(pct), 6)
        return out


@dataclass
class FairnessReport:
    """Per-tenant usage plus the fairness verdict for one scenario run.

    ``tenants`` maps tenant name to :class:`TenantUsage`; dict equality
    ignores insertion order, and :meth:`merge` unions by name, so the
    report participates in canonical fingerprints
    (:func:`repro.analysis.sanitizers.report_fingerprint`) without any
    order sensitivity.
    """

    tenants: Dict[str, TenantUsage] = field(default_factory=dict)
    #: Cross-job interference attribution: tenant -> solo-run bandwidth
    #: over shared-run bandwidth (>= 1 means the tenant ran slower under
    #: contention; filled only when the runner also raced each tenant
    #: alone).  compare=False: attribution is derived from *extra* runs,
    #: so its presence must not move a scenario fingerprint.
    interference: Optional[Dict[str, float]] = field(default=None, compare=False)

    @property
    def jain(self) -> float:
        """Jain's index over per-tenant bandwidths (sorted by name so
        the value is independent of dict insertion history)."""
        return jain_index([self.tenants[name].bandwidth_mbps for name in sorted(self.tenants)])

    @property
    def total_bytes(self) -> int:
        return sum(u.bytes_read for u in self.tenants.values())

    def usage(self, tenant: str) -> TenantUsage:
        if tenant not in self.tenants:
            self.tenants[tenant] = TenantUsage(tenant=tenant)
        return self.tenants[tenant]

    def merge(self, other: "FairnessReport") -> "FairnessReport":
        """Union-by-tenant merge; commutative and associative because
        :meth:`TenantUsage.merge` is and dict equality is unordered."""
        merged: Dict[str, TenantUsage] = {}
        for name in sorted(set(self.tenants) | set(other.tenants)):
            a = self.tenants.get(name)
            b = other.tenants.get(name)
            if a is not None and b is not None:
                merged[name] = a.merge(b)
            else:
                only = a if a is not None else b
                # Re-wrap through merge-with-empty so the result never
                # aliases either operand's mutable usage.
                merged[name] = only.merge(TenantUsage(tenant=name))
        return FairnessReport(tenants=merged)

    def to_jsonable(self) -> dict:
        out = {
            "jain_index": round(self.jain, 6),
            "tenants": [self.tenants[name].to_jsonable() for name in sorted(self.tenants)],
        }
        if self.interference is not None:
            out["interference"] = {
                name: round(self.interference[name], 4) for name in sorted(self.interference)
            }
        return out

    def summary(self) -> str:
        tenants = ", ".join(
            f"{name}={self.tenants[name].bandwidth_mbps:.2f}MB/s" for name in sorted(self.tenants)
        )
        return f"jain={self.jain:.3f} ({tenants})"
