"""Unified observability subsystem: stats, tracing, exporters.

One package replaces the three historically disjoint instrumentation
APIs (``repro.sim.monitor`` stats, ``repro.core.stats`` prefetch
counters, ad-hoc per-component accounting):

- :mod:`repro.obs.monitor` -- counters / time-weighted / series stats;
- :mod:`repro.obs.trace` -- request-scoped typed spans with causal links
  across every layer of the simulated stack;
- :mod:`repro.obs.stats` -- prefetcher outcome statistics;
- :mod:`repro.obs.export` -- Chrome ``trace_event`` JSON, per-layer
  latency breakdowns, critical-path reports;
- :mod:`repro.obs.telemetry` -- labeled metric registry (counters,
  gauges, fixed-bucket histograms), resource probes, and the
  simulated-time sampler;
- :mod:`repro.obs.telemetry_export` -- Prometheus text snapshot,
  CSV/JSONL time series, ASCII utilization heatmap/timeline, and the
  per-run :class:`BottleneckReport`;
- :mod:`repro.obs.observability` -- the :class:`Observability` facade a
  :class:`~repro.machine.Machine` exposes as ``machine.obs``.

``repro.sim.monitor`` and ``repro.core.stats`` remain as import shims.
"""

from repro.obs.export import (
    breakdown_of,
    chrome_trace_events,
    chrome_trace_json,
    critical_path_report,
    latency_breakdown,
    render_breakdown,
)
from repro.obs.fairness import FairnessReport, TenantUsage, jain_index
from repro.obs.monitor import CounterStat, Monitor, SeriesStat, TimeWeightedStat
from repro.obs.observability import Observability
from repro.obs.stats import PrefetchStats
from repro.obs.telemetry import (
    DEFAULT_TIME_BUCKETS_S,
    NULL_TELEMETRY,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricRegistry,
    Telemetry,
    get_telemetry,
)
from repro.obs.telemetry_export import (
    BottleneckReport,
    bottleneck_report,
    prometheus_text,
    timeseries_csv,
    timeseries_jsonl,
    utilization_heatmap,
    utilization_matrix,
    utilization_timeline,
)
from repro.obs.trace import (
    NOOP_SPAN,
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
    get_tracer,
)

__all__ = [
    "BottleneckReport",
    "CounterMetric",
    "CounterStat",
    "DEFAULT_TIME_BUCKETS_S",
    "FairnessReport",
    "GaugeMetric",
    "HistogramMetric",
    "MetricRegistry",
    "Monitor",
    "NOOP_SPAN",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Observability",
    "PrefetchStats",
    "SeriesStat",
    "Span",
    "Telemetry",
    "TenantUsage",
    "TimeWeightedStat",
    "TraceContext",
    "Tracer",
    "bottleneck_report",
    "breakdown_of",
    "chrome_trace_events",
    "chrome_trace_json",
    "critical_path_report",
    "get_telemetry",
    "get_tracer",
    "jain_index",
    "latency_breakdown",
    "prometheus_text",
    "render_breakdown",
    "timeseries_csv",
    "timeseries_jsonl",
    "utilization_heatmap",
    "utilization_matrix",
    "utilization_timeline",
]
