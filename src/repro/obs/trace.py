"""Request tracing: typed spans causally linked across the whole stack.

A :class:`Tracer` records :class:`Span` objects -- named intervals of
simulated time, each belonging to a *trace* (one user-visible request)
and optionally nested under a parent span.  The PFS client opens a root
``client_call`` span per read/write call and threads a
:class:`TraceContext` down through stripe declustering, the RPC layer,
the ART machinery, the UFS, and the disk hardware, so every
``disk_service`` span can be walked back to the user call (or prefetch
issue) that caused it.

Design constraints:

- **Zero overhead when disabled.**  A disabled tracer returns a shared
  no-op span from :meth:`Tracer.begin`; no objects are allocated, no
  simulated time is consumed either way.  Tracing never schedules
  events, so enabling it cannot perturb the simulation timeline.
- **Explicit context threading.**  Instrumented calls accept a
  ``ctx: Optional[TraceContext]`` argument instead of relying on
  ambient state; concurrent processes (prefetches in flight during a
  demand read) therefore parent correctly.

Span kinds used by the stack (see ``docs/observability.md``):

``client_call``, ``coordinate``, ``stripe_piece``, ``rpc_call``,
``mesh_xfer``, ``server_io``, ``disk_service``, ``scsi_xfer``,
``art_setup``, ``art_io``, ``prefetch_issue``, ``prefetch_land``,
``prefetch_hit_copy``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, NamedTuple, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class TraceContext(NamedTuple):
    """Causal coordinates carried between layers.

    ``trace_id`` identifies the originating request (monotonically
    assigned per root span); ``span_id`` is the immediate parent span.
    """

    trace_id: int
    span_id: int


class Span:
    """One named interval of simulated time."""

    __slots__ = ("span_id", "trace_id", "parent_id", "kind", "node_id", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
        kind: str,
        node_id: Optional[int],
        start: float,
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.kind = kind
        self.node_id = node_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def ctx(self) -> TraceContext:
        """Context for children of this span."""
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:
        end = f"{self.end:.6f}" if self.end is not None else "…"
        return (
            f"<Span {self.span_id} {self.kind} trace={self.trace_id} "
            f"parent={self.parent_id} [{self.start:.6f}, {end}]>"
        )


class _NoopSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    ctx = None
    span_id = -1
    duration = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NoopSpan>"


#: The singleton no-op span; ``tracer.end`` recognises it by identity.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Span recorder bound to one simulation environment.

    Disabled by default; flip :attr:`enabled` (or construct with
    ``enabled=True``) to start recording.  Spans are kept in memory in
    creation order -- exporters in :mod:`repro.obs.export` turn them
    into Chrome traces, per-layer breakdowns and critical-path reports.
    """

    def __init__(self, env: Optional["Environment"] = None, enabled: bool = False) -> None:
        self.env = env
        self.enabled = enabled
        self.spans: List[Span] = []
        self._next_span_id = 0
        self._next_trace_id = 0

    # -- recording -------------------------------------------------------

    def begin(
        self,
        kind: str,
        ctx: Optional[TraceContext] = None,
        node_id: Optional[int] = None,
        **attrs: Any,
    ):
        """Open a span of *kind* at the current simulated time.

        With ``ctx=None`` the span starts a new trace (a fresh request
        ID); otherwise it joins ``ctx.trace_id`` under ``ctx.span_id``.
        Returns the :class:`Span`, or the shared no-op span when
        disabled -- callers never need to branch.
        """
        if not self.enabled:
            return NOOP_SPAN
        self._next_span_id += 1
        if ctx is None:
            self._next_trace_id += 1
            trace_id, parent_id = self._next_trace_id, None
        else:
            trace_id, parent_id = ctx.trace_id, ctx.span_id
        span = Span(
            self._next_span_id,
            trace_id,
            parent_id,
            kind,
            node_id,
            self.env.now if self.env is not None else 0.0,
            attrs or None,
        )
        self.spans.append(span)
        return span

    def end(self, span, **attrs: Any) -> None:
        """Close *span* at the current simulated time."""
        if span is NOOP_SPAN:
            return
        span.end = self.env.now if self.env is not None else span.start
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)

    # -- queries -----------------------------------------------------------

    def clear(self) -> None:
        """Drop all recorded spans (trace IDs keep increasing)."""
        self.spans.clear()

    def by_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def span_index(self) -> Dict[int, Span]:
        return {s.span_id: s for s in self.spans}

    def ancestors(self, span: Span) -> List[Span]:
        """Chain of parents from *span* (exclusive) up to its root."""
        index = self.span_index()
        out: List[Span] = []
        current = span
        while current.parent_id is not None:
            parent = index.get(current.parent_id)
            if parent is None:
                break
            out.append(parent)
            current = parent
        return out

    def roots(self, kind: Optional[str] = None) -> List[Span]:
        """Spans with no parent, optionally filtered by kind."""
        return [s for s in self.spans if s.parent_id is None and (kind is None or s.kind == kind)]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} spans={len(self.spans)}>"


#: Shared disabled tracer handed to components built without observability.
NULL_TRACER = Tracer(env=None, enabled=False)


def get_tracer(monitor: Any) -> Tracer:
    """Resolve the tracer behind a ``monitor`` constructor argument.

    Components across the stack historically take ``monitor=`` (a
    :class:`~repro.obs.monitor.Monitor` or ``None``).  The
    :class:`~repro.obs.observability.Observability` facade satisfies the
    same interface *and* carries a tracer; this helper lets every
    component resolve its tracer once at construction time without
    caring which of the three it was given.
    """
    tracer = getattr(monitor, "tracer", None)
    return tracer if isinstance(tracer, Tracer) else NULL_TRACER
