"""Telemetry exporters: Prometheus text, CSV/JSONL time series, ASCII
utilization charts, and the per-run :class:`BottleneckReport`.

All exporters are read-only over a :class:`~repro.obs.telemetry.Telemetry`
and can run at any point (they refresh probes themselves); none touch
simulation state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import (
    HistogramMetric,
    LabelsKey,
    Telemetry,
)

#: Busy-seconds counter families that define "utilization" for the
#: bottleneck report, with their display names.  Each probe publishes
#: monotonic busy-seconds normalised to one unit of capacity, so
#: ``value / elapsed`` is the busy fraction in [0, 1].
UTILIZATION_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("disk_busy_seconds", "disk"),
    ("scsi_busy_seconds", "scsi bus"),
    ("mesh_link_busy_seconds", "mesh link"),
    ("node_cpu_busy_seconds", "cpu"),
    ("node_msgproc_busy_seconds", "msgproc"),
)

SATURATED_FRACTION = 0.90
IDLE_FRACTION = 0.10

#: Shade ramp for the heatmap, idle -> saturated.
HEATMAP_SHADES = " .:-=+*#%@"


# -- Prometheus text exposition ---------------------------------------------


def _fmt(value: float) -> str:
    """Prometheus-friendly number: integers bare, floats via repr-ish %g."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: LabelsKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def prometheus_text(telemetry: Telemetry) -> str:
    """The registry as a Prometheus text-format snapshot.

    Probes are refreshed first, so gauges show the current simulated
    state.  Families render in creation order (instrumentation order:
    hardware up through the PFS layers).
    """
    telemetry.refresh_probes()
    lines: List[str] = []
    for family in telemetry.registry.families.values():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels in sorted(family.children):
            metric = family.children[labels]
            if isinstance(metric, HistogramMetric):
                cumulative = metric.cumulative()
                for bound, count in zip(metric.bounds, cumulative):
                    le = _label_str(labels, [("le", _fmt(bound))])
                    lines.append(f"{family.name}_bucket{le} {count}")
                le_inf = _label_str(labels, [("le", "+Inf")])
                lines.append(f"{family.name}_bucket{le_inf} {cumulative[-1]}")
                lines.append(f"{family.name}_sum{_label_str(labels)} {_fmt(metric.sum)}")
                lines.append(f"{family.name}_count{_label_str(labels)} {metric.count}")
            else:
                lines.append(f"{family.name}{_label_str(labels)} {_fmt(metric.value)}")
    return "\n".join(lines) + "\n"


# -- time-series dumps -------------------------------------------------------


def _sorted_sample_items(telemetry: Telemetry):
    return sorted(telemetry.samples.items(), key=lambda kv: kv[0])


def timeseries_csv(telemetry: Telemetry) -> str:
    """Every sampled series as CSV: ``time_s,metric,labels,value``."""
    lines = ["time_s,metric,labels,value"]
    for (name, labels), points in _sorted_sample_items(telemetry):
        label_text = ";".join(f"{k}={v}" for k, v in labels)
        for when, value in points:
            lines.append(f"{when:.9g},{name},{label_text},{_fmt(value)}")
    return "\n".join(lines) + "\n"


def timeseries_jsonl(telemetry: Telemetry) -> str:
    """Every sampled series as JSON Lines, one object per sample."""
    lines = []
    for (name, labels), points in _sorted_sample_items(telemetry):
        label_map = dict(labels)
        for when, value in points:
            lines.append(
                json.dumps(
                    {"t": round(when, 9), "metric": name,
                     "labels": label_map, "value": value},
                    sort_keys=True,
                )
            )
    return "\n".join(lines) + "\n"


# -- utilization derivation --------------------------------------------------


def _interpolate(points: List[Tuple[float, float]], at: float) -> float:
    """Linear interpolation on a sampled monotonic series, clamped at ends."""
    if not points:
        return 0.0
    if at <= points[0][0]:
        return points[0][1]
    if at >= points[-1][0]:
        return points[-1][1]
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        if t0 <= at <= t1:
            if t1 <= t0:
                return v1
            return v0 + (v1 - v0) * (at - t0) / (t1 - t0)
    return points[-1][1]  # pragma: no cover - loop above is exhaustive


def utilization_matrix(
    telemetry: Telemetry, family: str = "disk_busy_seconds", bins: int = 48
) -> Optional[Tuple[List[str], List[float], List[List[float]]]]:
    """Resample a busy-seconds family into per-bin busy fractions.

    Returns ``(instance_names, bin_mid_times, rows)`` where ``rows[i][j]``
    is instance i's busy fraction in time bin j, or ``None`` if the
    family has no sampled series or the run spans zero time.
    """
    series_map = telemetry.series_by_name(family)
    if not series_map:
        return None
    t0 = min(points[0][0] for points in series_map.values())
    t1 = max(points[-1][0] for points in series_map.values())
    if t1 <= t0:
        return None
    edges = [t0 + (t1 - t0) * i / bins for i in range(bins + 1)]
    names: List[str] = []
    rows: List[List[float]] = []
    for labels in sorted(series_map):
        points = series_map[labels]
        names.append(",".join(v for _k, v in labels) or family)
        row = []
        for lo, hi in zip(edges, edges[1:]):
            busy = _interpolate(points, hi) - _interpolate(points, lo)
            row.append(max(0.0, min(1.0, busy / (hi - lo))))
        rows.append(row)
    mids = [(lo + hi) / 2 for lo, hi in zip(edges, edges[1:])]
    return names, mids, rows


def utilization_heatmap(
    telemetry: Telemetry,
    family: str = "disk_busy_seconds",
    bins: int = 48,
    title: Optional[str] = None,
) -> str:
    """One shaded row per instance, one column per time bin.

    The shade ramp runs idle ``' '`` to saturated ``'@'``; a glance shows
    which devices pinned at 100% and when.
    """
    matrix = utilization_matrix(telemetry, family, bins=bins)
    header = title or f"{family} utilization heatmap"
    if matrix is None:
        return f"{header}\n(no samples for {family})"
    names, mids, rows = matrix
    width = max(len(n) for n in names)
    lines = [header]
    top = len(HEATMAP_SHADES) - 1
    for name, row in zip(names, rows):
        shades = "".join(HEATMAP_SHADES[min(top, int(value * top + 0.5))] for value in row)
        lines.append(f"{name.rjust(width)} |{shades}|")
    t0 = mids[0] - (mids[1] - mids[0]) / 2 if len(mids) > 1 else mids[0]
    t1 = mids[-1] + (mids[1] - mids[0]) / 2 if len(mids) > 1 else mids[-1]
    if abs(t0) < 1e-9:  # snap edge-reconstruction float noise to zero
        t0 = 0.0
    axis = f"t={t0:.4g}s".ljust(bins // 2) + f"t={t1:.4g}s".rjust(bins - bins // 2)
    lines.append(f"{' ' * width}  {axis}")
    lines.append(
        f"{' ' * width}  scale: ' '=0% " + " ".join(
            f"'{HEATMAP_SHADES[i]}'={100 * i // top}%" for i in (top // 2, top)
        )
    )
    return "\n".join(lines)


def utilization_timeline(
    telemetry: Telemetry,
    family: str = "disk_busy_seconds",
    bins: int = 32,
    title: Optional[str] = None,
    **plot_kwargs,
) -> str:
    """Per-instance busy-percent over time as an ASCII line chart."""
    # Imported lazily: experiments package pulls in machine/config layers.
    from repro.experiments.ascii_chart import plot_series

    matrix = utilization_matrix(telemetry, family, bins=bins)
    header = title or f"{family} utilization (% busy)"
    if matrix is None:
        return f"{header}\n(no samples for {family})"
    names, mids, rows = matrix
    series = {name: [100.0 * v for v in row] for name, row in zip(names, rows)}
    return plot_series(
        mids,
        series,
        title=header,
        x_label="sim time (s)",
        y_label="% busy",
        **plot_kwargs,
    )


# -- bottleneck report -------------------------------------------------------


@dataclass
class BottleneckReport:
    """Which resource class saturated (and which sat idle) during a run.

    ``by_family`` maps a display name ("disk", "mesh link", ...) to each
    instance's busy fraction over the run.  ``resource``/``utilization``
    name the single busiest instance -- the resource that bounds the
    collective bandwidth when its fraction approaches 1.0.
    """

    resource: str
    utilization: float
    elapsed_s: float
    by_family: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def saturated(self) -> List[str]:
        return [
            f"{family} {name}"
            for family, members in self.by_family.items()
            for name, frac in sorted(members.items())
            if frac >= SATURATED_FRACTION
        ]

    @property
    def idle(self) -> List[str]:
        return [
            f"{family} {name}"
            for family, members in self.by_family.items()
            for name, frac in sorted(members.items())
            if frac <= IDLE_FRACTION
        ]

    def describe(self) -> str:
        lines = [
            f"bottleneck: {self.resource} at {self.utilization:.0%} busy "
            f"over {self.elapsed_s:.4g}s sim-time"
        ]
        for family, members in self.by_family.items():
            if not members:
                continue
            fractions = list(members.values())
            peak = max(fractions)
            n_sat = sum(1 for f in fractions if f >= SATURATED_FRACTION)
            if n_sat:
                detail = f"{n_sat}/{len(fractions)} saturated (>{SATURATED_FRACTION:.0%})"
            elif peak <= IDLE_FRACTION:
                detail = f"all {len(fractions)} idle (<{IDLE_FRACTION:.0%})"
            else:
                detail = f"{len(fractions)} active"
            lines.append(f"  {family}: {detail}, peak {peak:.0%}")
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        return {
            "resource": self.resource,
            "utilization": round(self.utilization, 6),
            "elapsed_s": round(self.elapsed_s, 9),
            "saturated": self.saturated,
            "idle": self.idle,
            "by_family": {
                family: {name: round(frac, 6) for name, frac in sorted(members.items())}
                for family, members in self.by_family.items()
            },
        }


def bottleneck_report(
    telemetry: Telemetry, elapsed_s: Optional[float] = None
) -> Optional[BottleneckReport]:
    """Name the saturating resource from final busy-seconds counters.

    Reads the probes' *current* values (not the sampled series), so it
    is exact even when the sample interval exceeded the run.  Returns
    ``None`` for a disabled telemetry, a zero-duration run, or a machine
    with no utilization probes.
    """
    if not telemetry.enabled:
        return None
    if elapsed_s is None:
        if telemetry.env is not None:
            elapsed_s = telemetry.env.now
        elif telemetry.sample_times:
            elapsed_s = telemetry.sample_times[-1]
        else:
            elapsed_s = 0.0
    if elapsed_s <= 0:
        return None
    telemetry.refresh_probes()
    by_family: Dict[str, Dict[str, float]] = {}
    best: Optional[Tuple[float, str]] = None
    for family_name, display in UTILIZATION_FAMILIES:
        family = telemetry.registry.families.get(family_name)
        if family is None or not family.children:
            continue
        members: Dict[str, float] = {}
        for labels in sorted(family.children):
            metric = family.children[labels]
            name = ",".join(v for _k, v in labels) or family_name
            fraction = max(0.0, min(1.0, metric.value / elapsed_s))
            members[name] = fraction
            candidate = (fraction, f"{display} {name}")
            if best is None or candidate > best:
                best = candidate
        by_family[display] = members
    if best is None:
        return None
    return BottleneckReport(
        resource=best[1],
        utilization=best[0],
        elapsed_s=elapsed_s,
        by_family=by_family,
    )
