"""Finding model shared by the lint engine, rules, and reporters.

A finding pins one rule violation to a file/line/column and carries the
human-readable message.  Findings sort by location so reports are stable
regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Rule:
    """Static description of one lint rule (used by ``--list-rules``)."""

    rule_id: str
    name: str
    summary: str


@dataclass(frozen=True)
class ChainStep:
    """One hop of the call chain behind an interprocedural finding.

    The chain reads caller-to-callee: step N is the call site (in step
    N-1's function, or the chain root for N=0) that reaches ``function``.
    SARIF reporters turn chains into ``codeFlows`` thread-flow locations.
    """

    path: str
    line: int
    col: int
    function: str  # qualified name of the function the hop lands in

    def render(self) -> str:
        return f"{self.function} ({self.path}:{self.line})"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    rule_id: str = field(compare=False)
    message: str = field(compare=False)
    #: The offending source line, stripped (for the text report).
    snippet: Optional[str] = field(default=None, compare=False)
    #: Interprocedural findings carry the call chain that reached the
    #: site (empty for intraprocedural rules).
    chain: Tuple[ChainStep, ...] = field(default=(), compare=False)

    @property
    def location(self) -> Tuple[str, int, int]:
        return (self.path, self.line, self.col)

    def render(self) -> str:
        out = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.snippet:
            out += f"\n    {self.snippet}"
        for depth, step in enumerate(self.chain):
            out += f"\n    {'  ' * depth}-> {step.render()}"
        return out
