"""Lint engine: file discovery, parsing, rule execution, suppression.

The engine is deliberately stdlib-only (``ast`` + ``re``): it must run in
CI and in the bare development container with no extra dependencies.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, List, Sequence

from repro.analysis.findings import Finding, Rule
from repro.analysis.rules import ALL_RULES, LintRule, build_alias_map
from repro.analysis.suppressions import apply_suppressions, parse_suppressions

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "node_modules"}


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under *paths* (files pass through)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_source(source: str, path: str, rules: Iterable[LintRule] = ALL_RULES) -> List[Finding]:
    """Lint one module's source text; returns surviving findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    aliases = build_alias_map(tree)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(tree, path, aliases))
    table = parse_suppressions(source)
    findings = apply_suppressions(findings, table, path)
    lines = source.splitlines()
    out: List[Finding] = []
    for finding in findings:
        snippet = None
        if 1 <= finding.line <= len(lines):
            snippet = lines[finding.line - 1].strip()
        out.append(
            Finding(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule_id=finding.rule_id,
                message=finding.message,
                snippet=snippet,
                chain=finding.chain,
            )
        )
    return sorted(out)


def lint_file(path: str, rules: Iterable[LintRule] = ALL_RULES) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path, rules)


def lint_paths(paths: Sequence[str], rules: Iterable[LintRule] = ALL_RULES) -> List[Finding]:
    """Lint every Python file under *paths*; findings sorted by location."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    return sorted(findings)


def rule_catalogue() -> List[Rule]:
    return [rule.rule for rule in ALL_RULES]
