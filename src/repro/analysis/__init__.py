"""repro.analysis -- determinism lint suite and runtime sanitizers.

Static analysis (``python -m repro.analysis src tests``):

- R001  no wall-clock reads in simulation code
- R002  no module-level / unseeded RNGs
- R003  no set / dict-view iteration at scheduling or stats-merge sites
- R004  observability hooks must not perturb the simulation
- R005  resource ``request()`` / ``release()`` pairing

Findings are suppressed inline with ``# sim-ok: R001 -- justification``
(the justification is mandatory).  Output is human-readable text or
SARIF-lite JSON (``--json``).

Runtime sanitizers (:mod:`repro.analysis.sanitizers`):

- :func:`~repro.analysis.sanitizers.check_tie_order` -- runs an
  experiment under permuted same-timestamp event ordering and diffs
  canonical report fingerprints (tie-order race detection).
- :func:`~repro.analysis.sanitizers.leaked_resources` /
  :func:`~repro.analysis.sanitizers.assert_no_leaks` -- held-resource
  detection once the event queue has drained (also wired into
  ``Machine.verify``).
"""

from repro.analysis.engine import (
    lint_file,
    lint_paths,
    lint_source,
    rule_catalogue,
)
from repro.analysis.findings import Finding, Rule
from repro.analysis.report import render_json, render_text, to_sarif
from repro.analysis.sanitizers import (
    ResourceLeak,
    TieOrderRace,
    TieOrderResult,
    assert_no_leaks,
    assert_tie_order_deterministic,
    check_tie_order,
    leaked_resources,
    report_fingerprint,
)

__all__ = [
    "Finding",
    "ResourceLeak",
    "Rule",
    "TieOrderRace",
    "TieOrderResult",
    "assert_no_leaks",
    "assert_tie_order_deterministic",
    "check_tie_order",
    "leaked_resources",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "report_fingerprint",
    "rule_catalogue",
    "to_sarif",
]
