"""repro.analysis -- determinism lint suite and runtime sanitizers.

Static analysis (``python -m repro.analysis src tests``):

- R001  no wall-clock reads in simulation code
- R002  no module-level / unseeded RNGs
- R003  no set / dict-view iteration at scheduling or stats-merge sites
- R004  observability hooks must not perturb the simulation
- R005  resource ``request()`` / ``release()`` pairing

Whole-program analysis (``python -m repro.analysis --interprocedural``),
built on a module-resolved call graph (:mod:`repro.analysis.callgraph`)
and a reaching-definitions framework (:mod:`repro.analysis.dataflow`):

- R003v2  unordered iteration within k call-hops of a scheduling site
          (findings carry the call chain; SARIF emits it as codeFlows)
- R005v2  cross-function request/release ownership (request-and-return
          transfers, receive-and-release discharges; flags leaks and
          double releases) -- replaces R005 in this mode
- R006    ``# fast-path``-marked functions may only be entered under
          guards establishing their facets (faults/tracer/telemetry)

Findings are suppressed inline with ``# sim-ok: R001 -- justification``
(the justification is mandatory).  Output is human-readable text or
schema-valid SARIF 2.1.0 (``--json`` / ``--sarif FILE``); ``--baseline``
ratchets CI to fail only on new findings.

Runtime sanitizers (:mod:`repro.analysis.sanitizers`):

- :func:`~repro.analysis.sanitizers.check_tie_order` -- runs an
  experiment under permuted same-timestamp event ordering and diffs
  canonical report fingerprints (tie-order race detection).
- :func:`~repro.analysis.sanitizers.leaked_resources` /
  :func:`~repro.analysis.sanitizers.assert_no_leaks` -- held-resource
  detection once the event queue has drained (also wired into
  ``Machine.verify``).
"""

from repro.analysis.cache import summarize_paths
from repro.analysis.callgraph import ModuleSummary, Project, extract_module
from repro.analysis.cli import collect_findings
from repro.analysis.engine import (
    lint_file,
    lint_paths,
    lint_source,
    rule_catalogue,
)
from repro.analysis.findings import ChainStep, Finding, Rule
from repro.analysis.interproc import INTERPROC_RULES, InterprocAnalysis, analyze_project
from repro.analysis.report import render_json, render_text, to_sarif
from repro.analysis.sanitizers import (
    ResourceLeak,
    TieOrderRace,
    TieOrderResult,
    assert_no_leaks,
    assert_tie_order_deterministic,
    check_tie_order,
    leaked_resources,
    report_fingerprint,
)

__all__ = [
    "ChainStep",
    "Finding",
    "INTERPROC_RULES",
    "InterprocAnalysis",
    "ModuleSummary",
    "Project",
    "ResourceLeak",
    "Rule",
    "TieOrderRace",
    "TieOrderResult",
    "analyze_project",
    "assert_no_leaks",
    "assert_tie_order_deterministic",
    "check_tie_order",
    "collect_findings",
    "extract_module",
    "leaked_resources",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "report_fingerprint",
    "rule_catalogue",
    "summarize_paths",
    "to_sarif",
]
