"""Incremental summary cache for the interprocedural pass.

Module summaries (:class:`repro.analysis.callgraph.ModuleSummary`) are
pure data, so they serialise to JSON and are keyed on the SHA-256 of the
file's content: a CI run over an unchanged tree re-parses nothing.  The
cache file is versioned; any mismatch (schema change, corrupt file,
partial write) silently degrades to a full re-extraction -- the cache is
an accelerator, never a correctness input.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.callgraph import (
    SUMMARY_VERSION,
    ModuleSummary,
    content_hash,
    extract_module,
)
from repro.analysis.engine import iter_python_files

CACHE_VERSION = 1


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0


def load_cache(path: Optional[str]) -> Dict[str, dict]:
    """Stored entries (file path -> {"sha256", "summary"}), or empty."""
    if path is None or not os.path.isfile(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if (
        not isinstance(data, dict)
        or data.get("cache_version") != CACHE_VERSION
        or data.get("summary_version") != SUMMARY_VERSION
    ):
        return {}
    entries = data.get("entries")
    return entries if isinstance(entries, dict) else {}


def save_cache(path: Optional[str], entries: Dict[str, dict]) -> None:
    if path is None:
        return
    payload = {
        "cache_version": CACHE_VERSION,
        "summary_version": SUMMARY_VERSION,
        "entries": entries,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def summarize_paths(
    paths: Sequence[str], cache_file: Optional[str] = None
) -> Tuple[List[ModuleSummary], CacheStats]:
    """Extract (or reuse cached) summaries for every module under *paths*."""
    entries = load_cache(cache_file)
    stats = CacheStats()
    summaries: List[ModuleSummary] = []
    fresh: Dict[str, dict] = {}
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        digest = content_hash(source)
        cached = entries.get(path)
        summary: Optional[ModuleSummary] = None
        if cached is not None and cached.get("sha256") == digest:
            try:
                summary = ModuleSummary.from_json(cached["summary"])
                stats.hits += 1
            except (KeyError, TypeError, IndexError):
                summary = None
        if summary is None:
            summary = extract_module(source, path)
            stats.misses += 1
        summaries.append(summary)
        fresh[path] = {"sha256": digest, "summary": summary.to_json()}
    save_cache(cache_file, fresh)
    return summaries, stats
