"""Runtime sanitizers: tie-order race detection and resource-leak checks.

Static rules (R001-R005) catch what is visible in source; these two
sanitizers catch what only shows up at run time:

**Tie-order races.**  A discrete-event simulation pops same-timestamp
events in *some* order.  Correct models are invariant to that order; a
model whose results shift when the tie-break is permuted has a race --
some resource is being won by event insertion order instead of by an
arbitration rule.  :func:`check_tie_order` runs the same experiment under
every tie-break permutation the kernel supports (``fifo`` and ``lifo``,
i.e. same-timestamp events in insertion and reverse-insertion order) and
diffs canonical report fingerprints.

**Resource leaks.**  A ``request()`` whose ``release()`` was lost (an
exception path, a forgotten finally) leaves the resource held forever;
every later contender deadlocks silently.  :func:`leaked_resources`
inspects every resource registered with an :class:`Environment` once the
event queue has drained, when any remaining hold is unreleasable by
construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple


# -- canonical report fingerprints -----------------------------------------


def _canonical(value: Any) -> str:
    """Stable textual form: dicts sorted, dataclasses field-by-field."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts = [
            f"{f.name}={_canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
            if f.compare
        ]
        return f"{type(value).__name__}({', '.join(parts)})"
    if isinstance(value, dict):
        items = ", ".join(f"{_canonical(k)}: {_canonical(value[k])}" for k in sorted(value))
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_canonical(v) for v in value) + "]"
    if isinstance(value, float):
        return repr(value)  # full precision: 1 ulp of drift must show
    return repr(value)


def report_fingerprint(report: Any) -> str:
    """SHA-256 over the canonical form of *report*'s compared fields."""
    return hashlib.sha256(_canonical(report).encode("utf-8")).hexdigest()


# -- tie-order race detector -----------------------------------------------

#: The kernel's supported permutations (Environment.TIE_BREAKS mirrors this).
TIE_BREAKS: Tuple[str, ...] = ("fifo", "lifo")


class TieOrderRace(AssertionError):
    """Raised when permuting event tie-breaking changes results."""


@dataclass
class TieOrderResult:
    """Outcome of one tie-order determinism check."""

    deterministic: bool
    fingerprints: Dict[str, str]
    reports: Dict[str, Any]

    def describe(self) -> str:
        if self.deterministic:
            return "deterministic: results bit-identical under " + "/".join(self.fingerprints)
        lines = ["TIE-ORDER RACE: results depend on same-timestamp event order"]
        for tie_break, digest in self.fingerprints.items():
            lines.append(f"  {tie_break}: {digest}")
        return "\n".join(lines)


def check_tie_order(
    run: Callable[[str], Any],
    tie_breaks: Sequence[str] = TIE_BREAKS,
) -> TieOrderResult:
    """Run ``run(tie_break)`` under every permutation and diff the results.

    *run* must build a **fresh** simulation configured with the given
    tie-break (e.g. ``lambda tb: run_collective(..., tie_break=tb)``) and
    return a report dataclass.  Results are compared by canonical
    fingerprint; any difference means a tie-order race.
    """
    reports: Dict[str, Any] = {}
    fingerprints: Dict[str, str] = {}
    for tie_break in tie_breaks:
        report = run(tie_break)
        reports[tie_break] = report
        fingerprints[tie_break] = report_fingerprint(report)
    deterministic = len(set(fingerprints.values())) == 1
    return TieOrderResult(deterministic=deterministic, fingerprints=fingerprints, reports=reports)


def assert_tie_order_deterministic(
    run: Callable[[str], Any],
    tie_breaks: Sequence[str] = TIE_BREAKS,
) -> TieOrderResult:
    """:func:`check_tie_order` that raises :class:`TieOrderRace` on a race."""
    result = check_tie_order(run, tie_breaks)
    if not result.deterministic:
        raise TieOrderRace(result.describe())
    return result


# -- resource-leak checker --------------------------------------------------


@dataclass
class ResourceLeak:
    """One resource still held after the event queue drained."""

    resource: Any
    held: int

    def __str__(self) -> str:
        return (
            f"resource leak: {self.resource!r} still holds {self.held} "
            "grant(s) with no event left to release them"
        )


def leaked_resources(env: Any) -> List[ResourceLeak]:
    """Resources still held once *env*'s event queue has drained.

    Returns ``[]`` while events remain queued (a hold is only a leak when
    nothing can ever release it).  Store/Container gets pending at quiesce
    are *not* leaks -- perpetual server loops legitimately idle on empty
    inboxes -- so only acquire/release-style resources (those exposing
    ``users``) are inspected.
    """
    if env.peek != float("inf"):
        return []
    leaks: List[ResourceLeak] = []
    for resource in env.resources:
        users = getattr(resource, "users", None)
        if users:
            leaks.append(ResourceLeak(resource=resource, held=len(users)))
    return leaks


def assert_no_leaks(env: Any) -> None:
    """Raise ``AssertionError`` listing every leak (no-op when clean)."""
    leaks = leaked_resources(env)
    if leaks:
        raise AssertionError("; ".join(str(leak) for leak in leaks))
