"""Interprocedural determinism rules over the linked call graph.

Three rules, all built on :class:`repro.analysis.callgraph.Project`:

R003v2  unordered iteration within *k* call-hops of a scheduling/merge
        site.  Closes the ROADMAP gap verbatim: a ``for x in some_set:``
        in a helper is flagged when an ordering-sensitive function can
        reach the helper (the loop runs *during* scheduling), and a
        function whose own calls reach a scheduling primitive is treated
        as sensitive itself (the loop order decides the order of the
        scheduling calls it makes).  Findings carry the call chain.

R005v2  cross-function request/release ownership.  A function that
        requests and *returns* the handle transfers ownership to its
        caller; a function that receives a handle parameter and releases
        it discharges the caller's obligation.  The rule flags handles
        that no channel ever discharges (leak) and handles released on
        both sides of a call (double release).  Escapes -- storing the
        handle on an object, entering it as a context manager, passing
        it into an unresolved call -- conservatively count as discharge,
        so the rule under-reports rather than cry wolf.

R006    fast-path gating.  A function marked ``# fast-path`` (see
        docs/performance.md: fast paths may skip events but only when
        nothing can observe the difference) must only be entered under
        guards establishing its required facets -- ``faults`` (no fault
        plan), ``tracer``/``telemetry`` (observability off).  Every call
        edge into a pragma'd function is checked: the union of the
        facets established by the lexically dominating ``if`` guards
        (resolved through reaching definitions and class attributes,
        e.g. ``if self._fast_sends:``) plus the caller's own pragma must
        cover the callee's requirement.

Suppression uses the same ``# sim-ok`` comments as the intraprocedural
rules (``# sim-ok: R006 -- why``); justification enforcement (S000) is
the intraprocedural engine's job and is not duplicated here.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallSite,
    Edge,
    FunctionFact,
    ModuleSummary,
    Project,
)
from repro.analysis.findings import ChainStep, Finding, Rule

DEFAULT_MAX_HOPS = 3

R003V2 = Rule(
    "R003v2",
    "no-unordered-iteration-interproc",
    "unordered set/dict-view iteration reachable within k call-hops of an "
    "event-scheduling or stats-merge site; sort first (chain attached)",
)
R005V2 = Rule(
    "R005v2",
    "cross-function-ownership",
    "resource handles must be discharged across function boundaries: "
    "request-and-return transfers ownership, receive-and-release "
    "discharges it; leaks and double releases are flagged",
)
R006 = Rule(
    "R006",
    "fast-path-gating",
    "calls into '# fast-path'-marked functions must be dominated by "
    "guards establishing the required facets (faults is None, "
    "tracer/telemetry off)",
)

INTERPROC_RULES: Sequence[Rule] = (R003V2, R005V2, R006)


def _display(fid: str) -> str:
    """Short human name for a function id: ``module-tail.qname``."""
    module, qname = fid.split(":", 1)
    tail = module.rsplit(".", 1)[-1]
    return f"{tail}.{qname}"


class InterprocAnalysis:
    """One analysis run over a linked project."""

    def __init__(self, project: Project, max_hops: int = DEFAULT_MAX_HOPS) -> None:
        self.project = project
        self.max_hops = max_hops

    # -- public ----------------------------------------------------------

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_r003v2())
        findings.extend(self._check_r005v2())
        findings.extend(self._check_r006())
        return sorted(self._apply_suppressions(findings))

    # -- shared helpers --------------------------------------------------

    def _fact(self, fid: str) -> FunctionFact:
        return self.project.functions[fid]

    def _chain_steps(self, root: str, chain: Sequence[Edge]) -> Tuple[ChainStep, ...]:
        """Root function definition plus one step per call edge."""
        root_fact = self._fact(root)
        steps = [
            ChainStep(
                path=self.project.path_of(root),
                line=root_fact.line,
                col=root_fact.col,
                function=_display(root),
            )
        ]
        for edge in chain:
            steps.append(
                ChainStep(
                    path=self.project.path_of(edge.caller),
                    line=edge.site.line,
                    col=edge.site.col,
                    function=_display(edge.callee),
                )
            )
        return tuple(steps)

    def _apply_suppressions(self, findings: List[Finding]) -> List[Finding]:
        tables: Dict[str, Dict[int, Tuple[str, ...]]] = {}
        for summary in self.project.modules.values():
            tables[summary.path] = dict(summary.suppressions)
        kept: List[Finding] = []
        for finding in findings:
            table = tables.get(finding.path, {})
            rules = table.get(finding.line) or table.get(finding.line - 1)
            if rules is not None and ("*" in rules or finding.rule_id in rules):
                continue
            kept.append(finding)
        return kept

    # -- R003v2 ----------------------------------------------------------

    def _check_r003v2(self) -> List[Finding]:
        project = self.project
        sensitive = [fid for fid in sorted(project.functions) if self._fact(fid).sensitive]
        #: hazard site -> (finding, chain length); shortest chain wins.
        best: Dict[Tuple[str, int, int], Tuple[Finding, int]] = {}

        def offer(key: Tuple[str, int, int], finding: Finding, length: int) -> None:
            have = best.get(key)
            if have is None or length < have[1]:
                best[key] = (finding, length)

        # Downward closure: hazards in helpers a sensitive function reaches.
        for root in sensitive:
            for helper, chain in sorted(project.reachable(root, self.max_hops).items()):
                fact = self._fact(helper)
                for hazard in fact.hazards:
                    if hazard.direct and fact.sensitive:
                        continue  # intraprocedural R003 already covers it
                    path = project.path_of(helper)
                    message = (
                        f"iteration over {hazard.desc} in '{fact.name}', reached "
                        f"from ordering-sensitive '{_display(root)}' via "
                        + " -> ".join(_display(e.callee) for e in chain)
                        + "; iterate a sorted/canonical sequence instead"
                    )
                    offer(
                        (path, hazard.line, hazard.col),
                        Finding(
                            path=path,
                            line=hazard.line,
                            col=hazard.col,
                            rule_id=R003V2.rule_id,
                            message=message,
                            chain=self._chain_steps(root, chain),
                        ),
                        len(chain),
                    )
        # Upward closure: a function whose calls reach a scheduling site is
        # itself ordering-sensitive -- its loop order sequences those calls.
        for fid in sorted(project.functions):
            fact = self._fact(fid)
            if fact.sensitive or not fact.hazards:
                continue
            reach = project.reachable(fid, self.max_hops)
            sink: Optional[str] = None
            sink_chain: Tuple[Edge, ...] = ()
            for target, chain in sorted(reach.items(), key=lambda kv: (len(kv[1]), kv[0])):
                if self._fact(target).schedules:
                    sink, sink_chain = target, chain
                    break
            if sink is None:
                continue
            path = project.path_of(fid)
            for hazard in fact.hazards:
                message = (
                    f"iteration over {hazard.desc} in '{fact.name}', which "
                    f"reaches scheduling site '{_display(sink)}' via "
                    + " -> ".join(_display(e.callee) for e in sink_chain)
                    + "; iterate a sorted/canonical sequence instead"
                )
                offer(
                    (path, hazard.line, hazard.col),
                    Finding(
                        path=path,
                        line=hazard.line,
                        col=hazard.col,
                        rule_id=R003V2.rule_id,
                        message=message,
                        chain=self._chain_steps(fid, sink_chain),
                    ),
                    len(sink_chain),
                )
        # Intra-sensitive functions with *indirect* hazards (a set bound to
        # a name, then iterated) that the syntactic R003 cannot see.
        for fid in sensitive:
            fact = self._fact(fid)
            path = self.project.path_of(fid)
            for hazard in fact.hazards:
                if hazard.direct:
                    continue
                key = (path, hazard.line, hazard.col)
                if key in best:
                    continue
                offer(
                    key,
                    Finding(
                        path=path,
                        line=hazard.line,
                        col=hazard.col,
                        rule_id=R003V2.rule_id,
                        message=(
                            f"iteration over {hazard.desc} in ordering-sensitive "
                            f"'{fact.name}'; iterate a sorted/canonical sequence "
                            "instead"
                        ),
                        chain=self._chain_steps(fid, ()),
                    ),
                    0,
                )
        return [finding for finding, _len in best.values()]

    # -- R005v2 ----------------------------------------------------------

    def _discharging_params(self) -> Dict[str, FrozenSet[str]]:
        """Fixpoint: parameters a function discharges (releases, escapes,
        returns, or forwards to a discharging callee)."""
        project = self.project
        out: Dict[str, Set[str]] = {}
        for fid in project.functions:
            fact = self._fact(fid)
            base = (set(fact.releases) | set(fact.escapes) | set(fact.returned)) & set(
                fact.params
            )
            out[fid] = base
        changed = True
        while changed:
            changed = False
            for fid in sorted(project.functions):
                fact = self._fact(fid)
                params = set(fact.params)
                current = out[fid]
                for edge in project.edges.get(fid, ()):
                    callee = self._fact(edge.callee)
                    callee_discharging = out.get(edge.callee, set())
                    for pos, name in edge.site.arg_names:
                        if name not in params or name in current:
                            continue
                        param = self._param_at(callee, edge.site, pos)
                        if param is not None and param in callee_discharging:
                            current.add(name)
                            changed = True
                # Names passed into calls we could not resolve escape.
                resolved_sites = {id(e.site) for e in project.edges.get(fid, ())}
                for site in fact.calls:
                    if id(site) in resolved_sites:
                        top = {name for _pos, name in site.arg_names}
                        hidden = set(site.nested_names) - top
                    else:
                        hidden = set(site.nested_names)
                    for name in hidden & params - current:
                        current.add(name)
                        changed = True
        return {fid: frozenset(names) for fid, names in out.items()}

    def _owns_return(self) -> Dict[str, bool]:
        """Fixpoint: functions that return a handle they acquired."""
        project = self.project
        owns = {fid: False for fid in project.functions}
        for fid in project.functions:
            fact = self._fact(fid)
            acquired = {a.name for a in fact.acquires}
            if acquired & set(fact.returned):
                owns[fid] = True
        changed = True
        while changed:
            changed = False
            for fid in sorted(project.functions):
                if owns[fid]:
                    continue
                fact = self._fact(fid)
                returned = set(fact.returned)
                for edge in project.edges.get(fid, ()):
                    if (
                        owns.get(edge.callee)
                        and edge.site.assigned_to is not None
                        and edge.site.assigned_to in returned
                    ):
                        owns[fid] = True
                        changed = True
                        break
        return owns

    def _param_at(
        self, callee: FunctionFact, site: CallSite, pos: int
    ) -> Optional[str]:
        """Callee parameter a positional argument lands in (self-aware)."""
        offset = 0
        if callee.is_method:
            bound = site.target[0] in ("self", "selfattr", "cls")
            constructor = callee.qname.endswith(".__init__") and site.target[0] in (
                "name",
                "dotted",
            )
            if bound or constructor:
                offset = 1
        index = pos + offset
        if 0 <= index < len(callee.params):
            return callee.params[index]
        return None

    def _name_discharged(
        self,
        fid: str,
        name: str,
        discharging: Dict[str, FrozenSet[str]],
    ) -> Optional[str]:
        """How *name* is discharged in *fid*, or None if leaked.

        Returns a short description of the discharge channel (used to
        keep messages honest in tests); leak findings fire on None.
        """
        project = self.project
        fact = self._fact(fid)
        if name in fact.releases:
            return "released locally"
        if name in fact.escapes:
            return "escapes"
        if name in fact.returned:
            return "returned (ownership transferred to caller)"
        resolved_sites = {}
        for edge in project.edges.get(fid, ()):
            resolved_sites[id(edge.site)] = edge
        for site in fact.calls:
            edge = resolved_sites.get(id(site))
            if edge is None:
                if name in site.nested_names:
                    return "passed to an unresolved call"
                continue
            callee = self._fact(edge.callee)
            top = {n for _pos, n in site.arg_names}
            if name in set(site.nested_names) - top:
                return "passed nested into a call"
            for pos, arg in site.arg_names:
                if arg != name:
                    continue
                param = self._param_at(callee, site, pos)
                if param is not None and param in discharging.get(edge.callee, ()):
                    return f"discharged by '{_display(edge.callee)}'"
        return None

    def _check_r005v2(self) -> List[Finding]:
        project = self.project
        discharging = self._discharging_params()
        owns = self._owns_return()
        findings: List[Finding] = []
        for fid in sorted(project.functions):
            fact = self._fact(fid)
            path = project.path_of(fid)
            # Leaked local acquires (the intra R005 base case, minus the
            # interprocedural discharge channels).
            for acquire in fact.acquires:
                if self._name_discharged(fid, acquire.name, discharging) is None:
                    findings.append(
                        Finding(
                            path=path,
                            line=acquire.line,
                            col=acquire.col,
                            rule_id=R005V2.rule_id,
                            message=(
                                f"'{acquire.name} = {acquire.base}.request(...)' in "
                                f"'{fact.name}' is never released, returned, or "
                                "passed to a releasing callee; the hold leaks"
                            ),
                        )
                    )
            # Handles received from ownership-transferring callees.
            for edge in project.edges.get(fid, ()):
                handle = edge.site.assigned_to
                if handle is None or not owns.get(edge.callee):
                    continue
                local_acquires = {a.name for a in fact.acquires}
                if handle in local_acquires:
                    continue  # already checked above
                if self._name_discharged(fid, handle, discharging) is None:
                    findings.append(
                        Finding(
                            path=path,
                            line=edge.site.line,
                            col=edge.site.col,
                            rule_id=R005V2.rule_id,
                            message=(
                                f"'{handle}' receives a resource handle from "
                                f"'{_display(edge.callee)}' (which transfers "
                                "ownership by returning its request) but "
                                f"'{fact.name}' never discharges it"
                            ),
                            chain=self._chain_steps(fid, (edge,)),
                        )
                    )
            # Double release: caller releases a handle it also hands to a
            # callee that releases the same parameter.
            for edge in project.edges.get(fid, ()):
                callee = self._fact(edge.callee)
                for pos, name in edge.site.arg_names:
                    if name not in fact.releases:
                        continue
                    param = self._param_at(callee, edge.site, pos)
                    if param is not None and param in callee.released_params:
                        findings.append(
                            Finding(
                                path=path,
                                line=edge.site.line,
                                col=edge.site.col,
                                rule_id=R005V2.rule_id,
                                message=(
                                    f"'{name}' is released by '{fact.name}' and "
                                    f"also by callee '{_display(edge.callee)}' "
                                    f"(parameter '{param}'); double release"
                                ),
                                chain=self._chain_steps(fid, (edge,)),
                            )
                        )
        return findings

    # -- R006 ------------------------------------------------------------

    def _check_r006(self) -> List[Finding]:
        project = self.project
        findings: List[Finding] = []
        for summary in sorted(project.modules.values(), key=lambda s: s.path):
            for line, message in summary.pragma_errors:
                findings.append(
                    Finding(
                        path=summary.path,
                        line=line,
                        col=1,
                        rule_id=R006.rule_id,
                        message=message,
                    )
                )
        for fid in sorted(project.functions):
            caller = self._fact(fid)
            caller_facets: FrozenSet[str] = frozenset(caller.pragma or ())
            for edge in project.edges.get(fid, ()):
                if edge.callee == fid:
                    continue
                callee = self._fact(edge.callee)
                if callee.pragma is None:
                    continue
                required = frozenset(callee.pragma)
                # The caller's own pragma pushes the obligation to *its*
                # callers, which this same loop checks.
                have = frozenset(edge.site.guard_facets) | caller_facets
                missing = sorted(required - have)
                if not missing:
                    continue
                findings.append(
                    Finding(
                        path=project.path_of(fid),
                        line=edge.site.line,
                        col=edge.site.col,
                        rule_id=R006.rule_id,
                        message=(
                            f"call to fast-path '{_display(edge.callee)}' "
                            f"(requires {', '.join(sorted(required))}) is not "
                            "dominated by guards establishing: "
                            + ", ".join(missing)
                            + "; fast paths may only run when nothing can "
                            "observe the skipped events"
                        ),
                        chain=self._chain_steps(fid, (edge,)),
                    )
                )
        return findings


def analyze_project(
    summaries: Sequence[ModuleSummary], max_hops: int = DEFAULT_MAX_HOPS
) -> List[Finding]:
    """Link *summaries* and run every interprocedural rule."""
    project = Project(summaries)
    return InterprocAnalysis(project, max_hops=max_hops).run()
