"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import lint_paths, rule_catalogue
from repro.analysis.report import render_json, render_text


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism lint for the Paragon PFS simulation: wall-clock "
            "reads, unseeded RNGs, unordered iteration at scheduling/merge "
            "sites, impure observability hooks, unpaired resource requests."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint (default: src)")
    parser.add_argument("--json", action="store_true", help="emit SARIF-lite JSON instead of text")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in rule_catalogue():
            print(f"{rule.rule_id}  {rule.name}: {rule.summary}")
        return 0

    paths: List[str] = args.paths or ["src"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    findings = lint_paths(paths)
    if args.json:
        sys.stdout.write(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0
