"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Modes
-----
Default: the intraprocedural rules (R001-R005) per file.

``--interprocedural``: additionally build the whole-program call graph
and run R003v2/R005v2/R006.  R005 is replaced by R005v2 in this mode
(the cross-function rule subsumes the same-function pairing check, so a
handle legitimately discharged across a call boundary is not
double-flagged).  ``--cache FILE`` keeps per-file summaries keyed on
content hashes so unchanged files are never re-parsed.

``--baseline FILE`` makes only *new* findings (not recorded in the
baseline) affect the exit code -- the ratchet for retrofitting the lint
onto a tree with known, justified debt.  ``--write-baseline`` records
the current findings as that baseline.

Exit codes: 0 = clean (or nothing new vs baseline), 1 = findings
reported, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.engine import lint_paths, rule_catalogue
from repro.analysis.findings import Finding
from repro.analysis.report import render_json, render_text, to_sarif
from repro.analysis.rules import ALL_RULES


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism lint for the Paragon PFS simulation: wall-clock "
            "reads, unseeded RNGs, unordered iteration at scheduling/merge "
            "sites, impure observability hooks, unpaired resource requests; "
            "with --interprocedural also call-graph-lifted unordered "
            "iteration (R003v2), cross-function ownership (R005v2), and "
            "fast-path gating (R006)."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint (default: src)")
    parser.add_argument("--json", action="store_true", help="emit SARIF JSON to stdout")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        help="run the whole-program rules (R003v2, R005v2, R006) as well",
    )
    parser.add_argument(
        "--max-hops",
        type=int,
        default=None,
        metavar="K",
        help="call-graph closure depth for R003v2 (default: 3)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=None,
        help="incremental summary cache file (content-hash keyed)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        default=None,
        help="also write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in FILE; fail only on new ones",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the --baseline file and exit 0",
    )
    return parser


def _finding_key(finding: Finding) -> str:
    # Line numbers churn on unrelated edits; rule + file + message is
    # stable enough to ratchet on.
    return f"{finding.rule_id}|{finding.path}|{finding.message}"


def load_baseline(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    keys = data.get("findings", []) if isinstance(data, dict) else []
    return [k for k in keys if isinstance(k, str)]


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    payload = {"findings": sorted({_finding_key(f) for f in findings})}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def split_by_baseline(
    findings: Sequence[Finding], baseline_keys: Sequence[str]
) -> Tuple[List[Finding], List[Finding]]:
    """(new, known) partition of *findings* against the baseline."""
    known_keys = set(baseline_keys)
    new: List[Finding] = []
    known: List[Finding] = []
    for finding in findings:
        (known if _finding_key(finding) in known_keys else new).append(finding)
    return new, known


def collect_findings(
    paths: Sequence[str],
    interprocedural: bool = False,
    max_hops: Optional[int] = None,
    cache_file: Optional[str] = None,
) -> List[Finding]:
    """All findings for *paths* in the requested mode, sorted."""
    if not interprocedural:
        return lint_paths(paths)
    from repro.analysis.cache import summarize_paths
    from repro.analysis.interproc import DEFAULT_MAX_HOPS, analyze_project

    intra_rules = [rule for rule in ALL_RULES if rule.rule.rule_id != "R005"]
    findings = list(lint_paths(paths, intra_rules))
    summaries, _stats = summarize_paths(paths, cache_file)
    findings.extend(
        analyze_project(summaries, max_hops=max_hops or DEFAULT_MAX_HOPS)
    )
    return sorted(findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in rule_catalogue():
            print(f"{rule.rule_id}  {rule.name}: {rule.summary}")
        if args.interprocedural:
            from repro.analysis.interproc import INTERPROC_RULES

            for rule in INTERPROC_RULES:
                print(f"{rule.rule_id}  {rule.name}: {rule.summary}")
        return 0

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    if args.max_hops is not None and args.max_hops < 1:
        print("error: --max-hops must be >= 1", file=sys.stderr)
        return 2

    paths: List[str] = args.paths or ["src"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    findings = collect_findings(
        paths,
        interprocedural=args.interprocedural,
        max_hops=args.max_hops,
        cache_file=args.cache,
    )

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(render_json(findings))

    if args.baseline and args.write_baseline:
        save_baseline(args.baseline, findings)
        print(f"baseline written: {len(findings)} finding(s) -> {args.baseline}")
        return 0

    gating = findings
    if args.baseline:
        if not os.path.exists(args.baseline):
            print(f"error: no such baseline: {args.baseline}", file=sys.stderr)
            return 2
        new, known = split_by_baseline(findings, load_baseline(args.baseline))
        gating = new
        if args.json:
            sys.stdout.write(json.dumps(to_sarif(new), indent=2) + "\n")
        else:
            print(render_text(new))
            if known:
                print(f"({len(known)} known finding(s) suppressed by baseline)")
        return 1 if gating else 0

    if args.json:
        sys.stdout.write(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if gating else 0
