"""Finding reporters: human-readable text and SARIF 2.1.0 JSON.

The SARIF document is schema-valid 2.1.0 (``$schema`` + full driver
``rules`` metadata with ``defaultConfiguration``; every result carries a
``ruleIndex``), so GitHub code scanning and other SARIF consumers ingest
it directly.  Interprocedural findings additionally emit their call
chain as a ``codeFlows`` thread flow -- one location per hop, from the
chain root (the ordering-sensitive/owning function) to the flagged site.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import Finding, Rule
from repro.analysis.rules import ALL_RULES

TOOL_NAME = "repro.analysis"
TOOL_VERSION = "2.0"
TOOL_URI = "https://example.invalid/repro/docs/static_analysis.md"

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Rules that do not live in ``ALL_RULES`` but can appear in results.
_ENGINE_RULES: Sequence[Rule] = (
    Rule("E999", "syntax-error", "file does not parse; nothing else was checked"),
    Rule(
        "S000",
        "unjustified-suppression",
        "sim-ok suppression is missing its '-- justification' clause",
    ),
)


def default_rule_catalogue() -> List[Rule]:
    """Every rule id a report may reference, in a stable order."""
    from repro.analysis.interproc import INTERPROC_RULES

    catalogue = [rule.rule for rule in ALL_RULES]
    catalogue.extend(INTERPROC_RULES)
    catalogue.extend(_ENGINE_RULES)
    return catalogue


def render_text(findings: Sequence[Finding]) -> str:
    """One block per finding, plus a summary line."""
    lines = [f.render() for f in findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    if findings:
        counts = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({counts})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def _location(path: str, line: int, col: int, text: Optional[str] = None) -> dict:
    loc: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": line, "startColumn": col},
        }
    }
    if text is not None:
        loc["message"] = {"text": text}
    return loc


def _code_flow(finding: Finding) -> dict:
    steps = [
        {"location": _location(step.path, step.line, step.col, step.function)}
        for step in finding.chain
    ]
    steps.append(
        {"location": _location(finding.path, finding.line, finding.col, "flagged site")}
    )
    return {"threadFlows": [{"locations": steps}]}


def to_sarif(findings: Sequence[Finding], rules: Optional[Sequence[Rule]] = None) -> dict:
    """Schema-valid SARIF 2.1.0 document with rules metadata + codeFlows."""
    catalogue = list(rules) if rules is not None else default_rule_catalogue()
    index_of = {rule.rule_id: i for i, rule in enumerate(catalogue)}
    results: List[dict] = []
    for finding in findings:
        result: dict = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line, finding.col)],
        }
        if finding.rule_id in index_of:
            result["ruleIndex"] = index_of[finding.rule_id]
        if finding.chain:
            result["codeFlows"] = [_code_flow(finding)]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": TOOL_URI,
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary or rule.name},
                                "fullDescription": {"text": rule.summary or rule.name},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule in catalogue
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2) + "\n"
