"""Finding reporters: human-readable text and SARIF-lite JSON.

The JSON shape follows SARIF's ``runs[].results[]`` skeleton (toolable
by anything that speaks SARIF) without the full 2.1.0 schema baggage.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES

TOOL_NAME = "repro.analysis"
TOOL_VERSION = "1.0"


def render_text(findings: Sequence[Finding]) -> str:
    """One block per finding, plus a summary line."""
    lines = [f.render() for f in findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    if findings:
        counts = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({counts})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def to_sarif(findings: Sequence[Finding]) -> dict:
    """SARIF-lite document (version, one run, rules + results)."""
    results: List[dict] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "rules": [
                            {
                                "id": rule.rule.rule_id,
                                "name": rule.rule.name,
                                "shortDescription": {"text": rule.rule.summary},
                            }
                            for rule in ALL_RULES
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2) + "\n"
