"""Module-resolved call graph of a Python source tree.

Two layers:

- **Extraction** (:func:`extract_module`) parses one module and distils
  every fact the interprocedural rules need into a serialisable
  :class:`ModuleSummary`: functions with their call sites (symbolically
  targeted, guard-facet-annotated), unordered-iteration hazards,
  resource-ownership facts, ``# fast-path`` pragmas, classes with their
  methods / bases / attribute types, the import-alias map, and the
  ``sim-ok`` suppression table.  Summaries are plain data -- the
  incremental cache (:mod:`repro.analysis.cache`) stores them as JSON
  keyed on the file's content hash, so unchanged files are never
  re-parsed.

- **Linking** (:class:`Project`) resolves symbolic call targets across
  modules -- following import aliases through package re-exports, and
  method calls through a lightweight class-attribute/type heuristic
  (parameter annotations, ``x = ClassName(...)`` reaching definitions,
  ``self.attr`` types recorded from ``__init__``) -- into a call graph
  with a bounded-depth transitive-closure query (:meth:`Project.reachable`).

Resolution is deliberately conservative: a call whose target cannot be
pinned to one project function (higher-order callbacks, duck-typed
receivers, dynamic dispatch) yields **no** edge rather than a guessed
one, and the rules treat unresolved calls pessimistically where safety
requires it (escape analysis) and silently where it does not.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import (
    ALL_FACETS,
    ClassAttrs,
    ReachingDefs,
    gate_facets,
    unordered_source,
)
from repro.analysis.rules import (
    _SCHEDULING_ATTRS,
    _is_ordering_sensitive,
    _unordered_iterable,
    _walk_shallow,
    build_alias_map,
)
from repro.analysis.suppressions import parse_suppressions

SUMMARY_VERSION = 1

#: ``# fast-path`` pragma, optionally with explicit required facets:
#: ``# fast-path: requires=faults,tracer,telemetry``.  Anything after
#: ``--`` is free-text rationale.
_FAST_PATH = re.compile(
    r"#\s*fast-path\b(?:\s*:\s*requires\s*=\s*(?P<req>[a-z]+(?:\s*,\s*[a-z]+)*))?"
)


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: str) -> str:
    """Dotted module name derived from the package structure on disk.

    Walks parent directories while they contain ``__init__.py``:
    ``src/repro/pfs/client.py`` -> ``repro.pfs.client``;  a file in a
    plain (non-package) directory is just its stem, which is how the
    test fixtures' flat module trees resolve.
    """
    path = os.path.abspath(path)
    directory, fname = os.path.split(path)
    stem = fname[:-3] if fname.endswith(".py") else fname
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
    return ".".join(reversed(parts))


# -- serialisable facts ------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``target`` is a symbolic form resolved at link time:

    - ``("name", f)`` -- bare-name call ``f(...)``
    - ``("self", m)`` -- ``self.m(...)``
    - ``("selfattr", a, m)`` -- ``self.a.m(...)``
    - ``("cls", C, m)`` -- ``x.m(...)`` with ``x`` locally typed as ``C``
    - ``("dotted", "a.b.m")`` -- alias-resolved dotted call
    - ``("unknown",)`` -- anything else (no edge)

    ``guard_facets`` are the fast-path gate facets established by the
    ``if`` guards lexically dominating the call (rule R006).
    ``arg_names`` are top-level positional ``Name`` arguments (position,
    name); ``nested_names`` every name appearing anywhere in the
    arguments (escape analysis); ``assigned_to`` the local name the
    call's value is bound to, when directly assigned.
    """

    line: int
    col: int
    target: Tuple[str, ...]
    guard_facets: Tuple[str, ...] = ()
    arg_names: Tuple[Tuple[int, str], ...] = ()
    nested_names: Tuple[str, ...] = ()
    assigned_to: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "target": list(self.target),
            "guards": list(self.guard_facets),
            "args": [list(a) for a in self.arg_names],
            "nested": list(self.nested_names),
            "assigned": self.assigned_to,
        }

    @classmethod
    def from_json(cls, d: dict) -> "CallSite":
        return cls(
            line=d["line"],
            col=d["col"],
            target=tuple(d["target"]),
            guard_facets=tuple(d["guards"]),
            arg_names=tuple((a[0], a[1]) for a in d["args"]),
            nested_names=tuple(d["nested"]),
            assigned_to=d["assigned"],
        )


@dataclass(frozen=True)
class Hazard:
    """An unordered-iteration site (set / dict view) in a function body."""

    line: int
    col: int
    desc: str
    #: Syntactically direct hazards are already covered by the
    #: intraprocedural R003 when the function is sensitive; indirect
    #: ones (through a reaching definition) are new information.
    direct: bool

    def to_json(self) -> dict:
        return {"line": self.line, "col": self.col, "desc": self.desc, "direct": self.direct}

    @classmethod
    def from_json(cls, d: dict) -> "Hazard":
        return cls(line=d["line"], col=d["col"], desc=d["desc"], direct=d["direct"])


@dataclass(frozen=True)
class Acquire:
    """``name = <base>.request(...)`` outside a ``with`` block."""

    name: str
    line: int
    col: int
    base: str

    def to_json(self) -> dict:
        return {"name": self.name, "line": self.line, "col": self.col, "base": self.base}

    @classmethod
    def from_json(cls, d: dict) -> "Acquire":
        return cls(name=d["name"], line=d["line"], col=d["col"], base=d["base"])


@dataclass(frozen=True)
class FunctionFact:
    """Everything the interprocedural rules know about one function."""

    qname: str  # "func" or "Class.method"
    name: str
    line: int
    col: int
    params: Tuple[str, ...]
    is_method: bool
    sensitive: bool  # intraprocedural R003 site detection
    schedules: bool  # makes a direct scheduling-attr call
    pragma: Optional[Tuple[str, ...]]  # required facets, None = unmarked
    hazards: Tuple[Hazard, ...] = ()
    calls: Tuple[CallSite, ...] = ()
    acquires: Tuple[Acquire, ...] = ()
    releases: Tuple[str, ...] = ()
    returned: Tuple[str, ...] = ()
    escapes: Tuple[str, ...] = ()
    released_params: Tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "qname": self.qname,
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "params": list(self.params),
            "method": self.is_method,
            "sensitive": self.sensitive,
            "schedules": self.schedules,
            "pragma": None if self.pragma is None else list(self.pragma),
            "hazards": [h.to_json() for h in self.hazards],
            "calls": [c.to_json() for c in self.calls],
            "acquires": [a.to_json() for a in self.acquires],
            "releases": list(self.releases),
            "returned": list(self.returned),
            "escapes": list(self.escapes),
            "released_params": list(self.released_params),
        }

    @classmethod
    def from_json(cls, d: dict) -> "FunctionFact":
        return cls(
            qname=d["qname"],
            name=d["name"],
            line=d["line"],
            col=d["col"],
            params=tuple(d["params"]),
            is_method=d["method"],
            sensitive=d["sensitive"],
            schedules=d["schedules"],
            pragma=None if d["pragma"] is None else tuple(d["pragma"]),
            hazards=tuple(Hazard.from_json(h) for h in d["hazards"]),
            calls=tuple(CallSite.from_json(c) for c in d["calls"]),
            acquires=tuple(Acquire.from_json(a) for a in d["acquires"]),
            releases=tuple(d["releases"]),
            returned=tuple(d["returned"]),
            escapes=tuple(d["escapes"]),
            released_params=tuple(d["released_params"]),
        )


@dataclass(frozen=True)
class ClassFact:
    name: str
    line: int
    methods: Tuple[str, ...]
    bases: Tuple[str, ...]  # base-class names resolvable in module scope
    attr_types: Tuple[Tuple[str, str], ...]  # (attr, class name in module scope)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "methods": list(self.methods),
            "bases": list(self.bases),
            "attr_types": [list(t) for t in self.attr_types],
        }

    @classmethod
    def from_json(cls, d: dict) -> "ClassFact":
        return cls(
            name=d["name"],
            line=d["line"],
            methods=tuple(d["methods"]),
            bases=tuple(d["bases"]),
            attr_types=tuple((t[0], t[1]) for t in d["attr_types"]),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Per-file analysis summary (the unit the incremental cache stores)."""

    module: str
    path: str
    sha256: str
    aliases: Tuple[Tuple[str, str], ...]
    functions: Tuple[FunctionFact, ...]
    classes: Tuple[ClassFact, ...]
    #: sim-ok table: (line, covered rule ids) -- reasons are enforced by
    #: the intraprocedural S000 check, not re-checked here.
    suppressions: Tuple[Tuple[int, Tuple[str, ...]], ...]
    pragma_errors: Tuple[Tuple[int, str], ...] = ()

    def to_json(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "sha256": self.sha256,
            "aliases": [list(a) for a in self.aliases],
            "functions": [f.to_json() for f in self.functions],
            "classes": [c.to_json() for c in self.classes],
            "suppressions": [[line, list(rules)] for line, rules in self.suppressions],
            "pragma_errors": [list(e) for e in self.pragma_errors],
        }

    @classmethod
    def from_json(cls, d: dict) -> "ModuleSummary":
        return cls(
            module=d["module"],
            path=d["path"],
            sha256=d["sha256"],
            aliases=tuple((a[0], a[1]) for a in d["aliases"]),
            functions=tuple(FunctionFact.from_json(f) for f in d["functions"]),
            classes=tuple(ClassFact.from_json(c) for c in d["classes"]),
            suppressions=tuple((s[0], tuple(s[1])) for s in d["suppressions"]),
            pragma_errors=tuple((e[0], e[1]) for e in d.get("pragma_errors", ())),
        )


# -- extraction --------------------------------------------------------------


def _parse_pragmas(source: str) -> Tuple[Dict[int, Tuple[str, ...]], List[Tuple[int, str]]]:
    """Line -> required facets for every ``# fast-path`` comment."""
    pragmas: Dict[int, Tuple[str, ...]] = {}
    errors: List[Tuple[int, str]] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _FAST_PATH.search(text)
        if match is None:
            continue
        req = match.group("req")
        if req is None:
            facets: Tuple[str, ...] = ("faults",)
        else:
            facets = tuple(f.strip() for f in req.split(","))
            bad = [f for f in facets if f not in ALL_FACETS]
            if bad:
                errors.append(
                    (lineno, f"unknown fast-path facet(s) {', '.join(bad)}; valid: "
                     + ", ".join(ALL_FACETS))
                )
                facets = tuple(f for f in facets if f in ALL_FACETS) or ("faults",)
        pragmas[lineno] = facets
    return pragmas, errors


def _pragma_for(node: ast.AST, pragmas: Dict[int, Tuple[str, ...]]) -> Optional[Tuple[str, ...]]:
    """Pragma attached to a def/class: on its line or the line above."""
    line = getattr(node, "lineno", None)
    if line is None:
        return None
    return pragmas.get(line) or pragmas.get(line - 1)


def _annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """Class name out of a parameter/variable annotation, best effort."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        # Optional[C] / "Optional[C]" -- look through one wrapper.
        if node.value.id in ("Optional", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_class(inner)
    return None


def _constructor_class(expr: Optional[ast.expr]) -> Optional[str]:
    """``ClassName(...)`` -> ``ClassName`` (capitalised names only)."""
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        name = expr.func.id
        if name[:1].isupper():
            return name
    return None


class _FunctionExtractor:
    """Single pass over one function body collecting every fact."""

    def __init__(
        self,
        func: ast.AST,
        qname: str,
        is_method: bool,
        pragmas: Dict[int, Tuple[str, ...]],
        class_pragma: Optional[Tuple[str, ...]],
        class_attrs: Optional[ClassAttrs],
        aliases: Dict[str, str],
    ) -> None:
        self.func = func
        self.qname = qname
        self.is_method = is_method
        self.class_attrs = class_attrs
        self.aliases = aliases
        self.defs = ReachingDefs(func)
        self.pragma = _pragma_for(func, pragmas) or class_pragma
        self.param_types: Dict[str, str] = {}
        args = getattr(func, "args", None)
        if args is not None:
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                cls = _annotation_class(a.annotation)
                if cls is not None:
                    self.param_types[a.arg] = cls
        self.calls: List[CallSite] = []
        self.hazards: List[Hazard] = []
        self.acquires: List[Acquire] = []
        self.releases: Set[str] = set()
        self.returned: Set[str] = set()
        self.escapes: Set[str] = set()
        self.schedules = False

    def run(self) -> FunctionFact:
        func = self.func
        with_requests: Set[int] = set()
        for node in _walk_shallow(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Call)
                        and isinstance(expr.func, ast.Attribute)
                        and expr.func.attr == "request"
                    ):
                        with_requests.add(id(expr))
                    if isinstance(expr, ast.Name):
                        # ``with req:`` -- context-manager exit releases.
                        self.escapes.add(expr.id)
        # Walk statements in order, tracking the enclosing statement (for
        # reaching-defs lookups) and the stack of positive if-guards (for
        # gate facets).
        self._walk_block(getattr(func, "body", []), guard_stack=(), with_requests=with_requests)
        sensitive = _is_ordering_sensitive(func, self.aliases)
        args = getattr(func, "args", None)
        params = (
            tuple(a.arg for a in list(args.posonlyargs) + list(args.args))
            if args is not None
            else ()
        )
        released_params = tuple(sorted(self.releases & set(params)))
        return FunctionFact(
            qname=self.qname,
            name=getattr(func, "name", "?"),
            line=getattr(func, "lineno", 1),
            col=getattr(func, "col_offset", 0) + 1,
            params=params,
            is_method=self.is_method,
            sensitive=sensitive,
            schedules=self.schedules,
            pragma=self.pragma,
            hazards=tuple(self.hazards),
            calls=tuple(self.calls),
            acquires=tuple(self.acquires),
            releases=tuple(sorted(self.releases)),
            returned=tuple(sorted(self.returned)),
            escapes=tuple(sorted(self.escapes)),
            released_params=released_params,
        )

    # -- statement walk ---------------------------------------------------

    def _walk_block(
        self,
        stmts: Sequence[ast.stmt],
        guard_stack: Tuple[ast.expr, ...],
        with_requests: Set[int],
    ) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, guard_stack, with_requests)

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        guard_stack: Tuple[ast.expr, ...],
        with_requests: Set[int],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes analysed separately
        env = self.defs.at(stmt)
        self._scan_exprs(stmt, env, guard_stack, with_requests)
        if isinstance(stmt, ast.If):
            self._walk_block(stmt.body, guard_stack + (stmt.test,), with_requests)
            self._walk_block(stmt.orelse, guard_stack, with_requests)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            self._walk_block(stmt.body, guard_stack, with_requests)
            self._walk_block(stmt.orelse, guard_stack, with_requests)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_block(stmt.body, guard_stack, with_requests)
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, guard_stack, with_requests)
            for handler in stmt.handlers:
                self._walk_block(handler.body, guard_stack, with_requests)
            self._walk_block(stmt.orelse, guard_stack, with_requests)
            self._walk_block(stmt.finalbody, guard_stack, with_requests)
            return

    def _scan_exprs(
        self,
        stmt: ast.stmt,
        env,
        guard_stack: Tuple[ast.expr, ...],
        with_requests: Set[int],
    ) -> None:
        """Record calls / hazards / ownership facts rooted at *stmt*."""
        # Iteration sites (for-loops and comprehension generators).
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_hazard(stmt, stmt.iter, env)
        # Expression-level walk that stays inside this statement and out
        # of nested statement bodies (those are visited by _walk_stmt).
        for node in self._stmt_exprs(stmt):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_hazard(node, gen.iter, env)
            elif isinstance(node, ast.Call):
                self._record_call(stmt, node, env, guard_stack, with_requests)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            value = stmt.value
            values = value.elts if isinstance(value, (ast.Tuple, ast.List)) else [value]
            for v in values:
                if isinstance(v, ast.Name):
                    self.returned.add(v.id)
        if isinstance(stmt, ast.Assign):
            self._record_assign(stmt, with_requests)
        # Attribute / subscript stores escape their value's names.
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                value = getattr(stmt, "value", None)
                if value is not None:
                    for node in ast.walk(value):
                        if isinstance(node, ast.Name):
                            self.escapes.add(node.id)

    def _stmt_exprs(self, stmt: ast.stmt) -> Iterator[ast.AST]:
        """Expressions belonging to *stmt* itself (not nested statements)."""
        stack: List[ast.AST] = []
        for _field, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                stack.append(value)
            elif isinstance(value, list):
                for v in value:
                    if isinstance(v, ast.expr):
                        stack.append(v)
                    elif isinstance(v, ast.withitem):
                        stack.append(v.context_expr)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ast.Lambda):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_hazard(self, site: ast.AST, iterable: ast.expr, env) -> None:
        desc = unordered_source(iterable, env)
        if desc is None:
            return
        direct = _unordered_iterable(iterable) is not None
        self.hazards.append(
            Hazard(
                line=getattr(site, "lineno", 1),
                col=getattr(site, "col_offset", 0) + 1,
                desc=desc,
                direct=direct,
            )
        )

    def _record_assign(self, stmt: ast.Assign, with_requests: Set[int]) -> None:
        value = stmt.value
        names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        if not names:
            return
        call = value
        if isinstance(call, (ast.Await, ast.YieldFrom)):
            call = call.value
        if not isinstance(call, ast.Call):
            return
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "request"
            and id(call) not in with_requests
        ):
            try:
                base = ast.unparse(call.func.value)
            except Exception:  # pragma: no cover - unparse failure
                base = "<expr>"
            self.acquires.append(
                Acquire(name=names[0], line=stmt.lineno, col=stmt.col_offset + 1, base=base)
            )

    def _record_call(
        self,
        stmt: ast.stmt,
        call: ast.Call,
        env,
        guard_stack: Tuple[ast.expr, ...],
        with_requests: Set[int],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _SCHEDULING_ATTRS:
            self.schedules = True
        if isinstance(func, ast.Attribute) and func.attr == "release":
            for arg in call.args[:1]:
                if isinstance(arg, ast.Name):
                    self.releases.add(arg.id)
        target = self._symbolic_target(func, env)
        facets: FrozenSet[str] = frozenset()
        for test in guard_stack:
            facets |= gate_facets(test, env, self.class_attrs)
        arg_names: List[Tuple[int, str]] = []
        nested: Set[str] = set()
        for pos, arg in enumerate(call.args):
            if isinstance(arg, ast.Name):
                arg_names.append((pos, arg.id))
            for node in ast.walk(arg):
                if isinstance(node, ast.Name):
                    nested.add(node.id)
        for kw in call.keywords:
            for node in ast.walk(kw.value):
                if isinstance(node, ast.Name):
                    nested.add(node.id)
        assigned = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            if isinstance(value, (ast.Await, ast.YieldFrom)):
                value = value.value
            if value is call:
                names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
                assigned = names[0] if names else None
        self.calls.append(
            CallSite(
                line=call.lineno,
                col=call.col_offset + 1,
                target=target,
                guard_facets=tuple(sorted(facets)),
                arg_names=tuple(arg_names),
                nested_names=tuple(sorted(nested)),
                assigned_to=assigned,
            )
        )

    def _symbolic_target(self, func: ast.expr, env) -> Tuple[str, ...]:
        if isinstance(func, ast.Name):
            return ("name", func.id)
        if not isinstance(func, ast.Attribute):
            return ("unknown",)
        meth = func.attr
        owner = func.value
        if isinstance(owner, ast.Name):
            if owner.id == "self":
                return ("self", meth)
            if owner.id in self.param_types:
                return ("cls", self.param_types[owner.id], meth)
            # Local variable: every reaching definition must agree on one
            # type source, else stay unresolved (conservative).
            defs = env.get(owner.id, ())
            sources = {self._type_source(d.expr) for d in defs}
            if defs and None not in sources and len(sources) == 1:
                src = sources.pop()
                return src + (meth,)
            return ("dotted", f"{self.aliases.get(owner.id, owner.id)}.{meth}")
        if (
            isinstance(owner, ast.Attribute)
            and isinstance(owner.value, ast.Name)
            and owner.value.id == "self"
        ):
            return ("selfattr", owner.attr, meth)
        chain_parts: List[str] = [meth]
        node = owner
        while isinstance(node, ast.Attribute):
            chain_parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            head = self.aliases.get(node.id, node.id)
            chain_parts.append(head)
            return ("dotted", ".".join(reversed(chain_parts)))
        return ("unknown",)

    def _type_source(self, expr: Optional[ast.expr]) -> Optional[Tuple[str, ...]]:
        """How a defining expression pins its value's class, if it does.

        - ``ClassName(...)``            -> ``("cls", ClassName)``
        - ``self.attr``                 -> ``("selfattr", attr)`` (class
          attribute types are resolved at link time)
        - ``param.attr``, param typed C -> ``("typedattr", C, attr)``
        """
        cls = _constructor_class(expr)
        if cls is not None:
            return ("cls", cls)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner = expr.value.id
            if owner == "self":
                return ("selfattr", expr.attr)
            if owner in self.param_types:
                return ("typedattr", self.param_types[owner], expr.attr)
        return None


def extract_module(source: str, path: str, module: Optional[str] = None) -> ModuleSummary:
    """Parse *source* and distil the per-module summary (see module doc)."""
    if module is None:
        module = module_name_for(path)
    digest = content_hash(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        # The intraprocedural engine reports E999; interprocedural
        # analysis simply has no facts for the file.
        return ModuleSummary(
            module=module, path=path, sha256=digest, aliases=(),
            functions=(), classes=(), suppressions=(),
        )
    aliases = build_alias_map(tree)
    pragmas, pragma_errors = _parse_pragmas(source)
    functions: List[FunctionFact] = []
    classes: List[ClassFact] = []

    def extract_function(
        node: ast.AST,
        qname: str,
        is_method: bool,
        class_pragma: Optional[Tuple[str, ...]],
        class_attrs: Optional[ClassAttrs],
    ) -> None:
        fact = _FunctionExtractor(
            node, qname, is_method, pragmas, class_pragma, class_attrs, aliases
        ).run()
        functions.append(fact)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_function(node, node.name, False, None, None)
        elif isinstance(node, ast.ClassDef):
            class_pragma = _pragma_for(node, pragmas)
            attrs = _collect_class_attrs(node)
            attr_types = _collect_attr_types(node)
            methods = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    extract_function(
                        item, f"{node.name}.{item.name}", True, class_pragma, attrs
                    )
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            classes.append(
                ClassFact(
                    name=node.name,
                    line=node.lineno,
                    methods=tuple(methods),
                    bases=tuple(bases),
                    attr_types=tuple(sorted(attr_types.items())),
                )
            )
    table = parse_suppressions(source)
    suppressions = tuple(
        sorted((line, tuple(s.rule_ids)) for line, s in table.items())
    )
    return ModuleSummary(
        module=module,
        path=path,
        sha256=digest,
        aliases=tuple(sorted(aliases.items())),
        functions=tuple(functions),
        classes=tuple(classes),
        suppressions=suppressions,
        pragma_errors=tuple(pragma_errors),
    )


def _collect_class_attrs(node: ast.ClassDef) -> ClassAttrs:
    """``self.X = <expr>`` assignments across every method of the class."""
    attrs: Dict[str, List[Optional[ast.expr]]] = {}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in _walk_shallow(item):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.setdefault(target.attr, []).append(stmt.value)
    return {name: tuple(exprs) for name, exprs in attrs.items()}


def _collect_attr_types(node: ast.ClassDef) -> Dict[str, str]:
    """Best-effort ``self.attr`` -> class-name map for method resolution.

    Sources, in priority order: ``self.x = param`` where the ``__init__``
    parameter is annotated with a class; ``self.x = ClassName(...)``.
    Conflicting evidence drops the attribute (conservative).
    """
    types: Dict[str, Optional[str]] = {}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        param_types: Dict[str, str] = {}
        args = item.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            cls = _annotation_class(a.annotation)
            if cls is not None:
                param_types[a.arg] = cls
        for stmt in _walk_shallow(item):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = stmt.value
                cls = None
                if isinstance(value, ast.Name):
                    cls = param_types.get(value.id)
                else:
                    cls = _constructor_class(value)
                current = types.get(target.attr, "")
                if cls is None:
                    # An untyped rebind poisons the attribute unless a
                    # typed source already claimed it.
                    if current == "":
                        types[target.attr] = None
                elif current in ("", cls):
                    types[target.attr] = cls
                else:
                    types[target.attr] = None
    return {attr: cls for attr, cls in types.items() if cls}


# -- linking -----------------------------------------------------------------


@dataclass(frozen=True)
class Edge:
    """A resolved call edge: caller function id -> callee function id."""

    caller: str
    callee: str
    site: CallSite


class Project:
    """Linked whole-program model over a set of module summaries."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        #: fid ("module:qname") -> FunctionFact
        self.functions: Dict[str, FunctionFact] = {}
        #: (module, ClassName) -> ClassFact
        self._classes: Dict[Tuple[str, str], ClassFact] = {}
        for summary in summaries:
            for fact in summary.functions:
                self.functions[f"{summary.module}:{fact.qname}"] = fact
            for cfact in summary.classes:
                self._classes[(summary.module, cfact.name)] = cfact
        self._symbol_memo: Dict[Tuple[str, str], Optional[Tuple[str, str, str]]] = {}
        self._edges: Optional[Dict[str, Tuple[Edge, ...]]] = None

    # -- symbol resolution ------------------------------------------------

    def resolve_symbol(
        self, module: str, name: str, depth: int = 8
    ) -> Optional[Tuple[str, str, str]]:
        """Resolve *name* in *module* scope to ("func"|"class", module, local).

        Follows import aliases through project modules (package
        ``__init__`` re-exports included), bounded by *depth*.
        """
        key = (module, name)
        if key in self._symbol_memo:
            return self._symbol_memo[key]
        self._symbol_memo[key] = None  # cycle guard
        result = self._resolve_symbol_uncached(module, name, depth)
        self._symbol_memo[key] = result
        return result

    def _resolve_symbol_uncached(
        self, module: str, name: str, depth: int
    ) -> Optional[Tuple[str, str, str]]:
        if depth <= 0:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        if f"{module}:{name}" in self.functions:
            return ("func", module, name)
        if (module, name) in self._classes:
            return ("class", module, name)
        aliases = dict(summary.aliases)
        origin = aliases.get(name)
        if origin is None:
            return None
        return self._resolve_dotted(origin, depth - 1)

    def _resolve_dotted(self, dotted: str, depth: int) -> Optional[Tuple[str, str, str]]:
        """Resolve ``pkg.mod.sym`` against the project universe.

        Longest module prefix wins: ``repro.sim.ArbitratedStore`` resolves
        the symbol in package module ``repro.sim`` (whose ``__init__``
        alias map re-exports the class from ``repro.sim.resources``).
        """
        if depth <= 0 or "." not in dotted or dotted in self.modules:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod not in self.modules:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                return self.resolve_symbol(mod, rest[0], depth)
            return None  # deeper attribute chains are not project symbols
        return None

    def class_fact(self, module: str, name: str) -> Optional[ClassFact]:
        resolved = self.resolve_symbol(module, name)
        if resolved is None or resolved[0] != "class":
            return None
        return self._classes.get((resolved[1], resolved[2]))

    def method_fid(
        self, module: str, class_name: str, meth: str, depth: int = 6
    ) -> Optional[str]:
        """fid of ``class_name.meth`` looked up through local bases."""
        if depth <= 0:
            return None
        resolved = self.resolve_symbol(module, class_name)
        if resolved is None or resolved[0] != "class":
            return None
        _, cmod, cname = resolved
        fid = f"{cmod}:{cname}.{meth}"
        if fid in self.functions:
            return fid
        cfact = self._classes.get((cmod, cname))
        if cfact is None:
            return None
        for base in cfact.bases:
            found = self.method_fid(cmod, base, meth, depth - 1)
            if found is not None:
                return found
        return None

    # -- call resolution --------------------------------------------------

    def resolve_call(self, caller_fid: str, site: CallSite) -> Optional[str]:
        """fid of the project function *site* calls, or None."""
        module = caller_fid.split(":", 1)[0]
        caller = self.functions.get(caller_fid)
        target = site.target
        kind = target[0]
        if kind == "name":
            resolved = self.resolve_symbol(module, target[1])
            if resolved is None:
                return None
            what, tmod, tname = resolved
            if what == "func":
                return f"{tmod}:{tname}"
            init = f"{tmod}:{tname}.__init__"
            return init if init in self.functions else None
        if kind == "self":
            if caller is None or "." not in caller.qname:
                return None
            class_name = caller.qname.split(".", 1)[0]
            return self.method_fid(module, class_name, target[1])
        if kind == "selfattr":
            if caller is None or "." not in caller.qname:
                return None
            class_name = caller.qname.split(".", 1)[0]
            cfact = self._classes.get((module, class_name))
            if cfact is None:
                return None
            attr_types = dict(cfact.attr_types)
            cls = attr_types.get(target[1])
            if cls is None:
                return None
            return self.method_fid(module, cls, target[2])
        if kind == "cls":
            return self.method_fid(module, target[1], target[2])
        if kind == "typedattr":
            # owner typed C in caller scope; method on C's attribute type.
            resolved = self.resolve_symbol(module, target[1])
            if resolved is None or resolved[0] != "class":
                return None
            _, cmod, cname = resolved
            cfact = self._classes.get((cmod, cname))
            if cfact is None:
                return None
            cls = dict(cfact.attr_types).get(target[2])
            if cls is None:
                return None
            return self.method_fid(cmod, cls, target[3])
        if kind == "dotted":
            resolved = self._resolve_dotted(target[1], depth=8)
            if resolved is None:
                return None
            what, tmod, tname = resolved
            if what == "func":
                return f"{tmod}:{tname}"
            init = f"{tmod}:{tname}.__init__"
            return init if init in self.functions else None
        return None

    # -- graph ------------------------------------------------------------

    @property
    def edges(self) -> Dict[str, Tuple[Edge, ...]]:
        """caller fid -> resolved outgoing edges, in source order."""
        if self._edges is None:
            out: Dict[str, Tuple[Edge, ...]] = {}
            for fid in sorted(self.functions):
                fact = self.functions[fid]
                resolved = []
                for site in fact.calls:
                    callee = self.resolve_call(fid, site)
                    if callee is not None:
                        resolved.append(Edge(caller=fid, callee=callee, site=site))
                out[fid] = tuple(resolved)
            self._edges = out
        return self._edges

    def callers_of(self, fid: str) -> List[Edge]:
        return [e for edges in self.edges.values() for e in edges if e.callee == fid]

    def reachable(self, start: str, max_hops: int) -> Dict[str, Tuple[Edge, ...]]:
        """Functions reachable from *start* within *max_hops* calls.

        Returns fid -> the chain of edges of the first (shortest, then
        source-order) path that reached it.  *start* itself is excluded.
        """
        chains: Dict[str, Tuple[Edge, ...]] = {}
        frontier: List[Tuple[str, Tuple[Edge, ...]]] = [(start, ())]
        for _hop in range(max_hops):
            nxt: List[Tuple[str, Tuple[Edge, ...]]] = []
            for fid, chain in frontier:
                for edge in self.edges.get(fid, ()):
                    if edge.callee == start or edge.callee in chains:
                        continue
                    new_chain = chain + (edge,)
                    chains[edge.callee] = new_chain
                    nxt.append((edge.callee, new_chain))
            if not nxt:
                break
            frontier = nxt
        return chains

    def path_of(self, fid: str) -> str:
        module = fid.split(":", 1)[0]
        summary = self.modules.get(module)
        return summary.path if summary is not None else "<unknown>"
