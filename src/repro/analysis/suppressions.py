"""Inline suppression comments.

A finding may be silenced with a ``sim-ok`` comment on the offending
line or on the line directly above it::

    t0 = time.time()  # sim-ok: R001 -- wall clock measures host runtime, not sim time

The justification after ``--`` is **required**: a bare ``# sim-ok: R001``
is itself reported (S000) so suppressions cannot silently accumulate
without recorded reasons.  ``# sim-ok: *`` suppresses every rule on the
line (justification still required).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.findings import Finding

#: ``# sim-ok: R001, R002 -- reason`` (reason optional at parse time;
#: its absence is the S000 violation).
_SIM_OK = re.compile(
    r"#\s*sim-ok:\s*(?P<rules>\*|[A-Z]\d{3}(?:v\d+)?(?:\s*,\s*[A-Z]\d{3}(?:v\d+)?)*)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``sim-ok`` comment."""

    line: int
    rule_ids: Sequence[str]  # ("*",) means all rules
    reason: str  # "" when the justification is missing

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rule_ids or rule_id in self.rule_ids


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Map line number -> suppression for every ``sim-ok`` comment."""
    table: Dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SIM_OK.search(text)
        if match is None:
            continue
        rules = tuple(r.strip() for r in match.group("rules").split(","))
        reason = (match.group("reason") or "").strip()
        table[lineno] = Suppression(line=lineno, rule_ids=rules, reason=reason)
    return table


def apply_suppressions(
    findings: Sequence[Finding], table: Dict[int, Suppression], path: str
) -> List[Finding]:
    """Drop suppressed findings; add S000 for justification-less comments.

    A suppression on line N covers findings on line N and line N+1 (the
    comment-above style).  Unjustified comments produce an S000 finding
    whether or not they suppressed anything.
    """
    kept: List[Finding] = []
    for finding in findings:
        suppression = table.get(finding.line) or table.get(finding.line - 1)
        if suppression is not None and suppression.covers(finding.rule_id):
            continue
        kept.append(finding)
    for _line, suppression in sorted(table.items()):
        if not suppression.reason:
            kept.append(
                Finding(
                    path=path,
                    line=suppression.line,
                    col=1,
                    rule_id="S000",
                    message=(
                        "sim-ok suppression is missing its justification "
                        "(write '# sim-ok: RULE -- why this is safe')"
                    ),
                )
            )
    return kept
