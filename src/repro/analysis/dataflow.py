"""Forward intraprocedural dataflow: reaching definitions and gate facets.

This is the small analysis framework the interprocedural rules are
built on.  Two clients:

- :class:`ReachingDefs` computes, for every statement in one function,
  which definitions of each local name may reach it.  The walk is
  AST-structured (no explicit CFG): branches join by union, loop bodies
  are interpreted twice so back-edge definitions reach the loop head,
  and ``try`` handlers join with every point of the protected body.
  A *may* analysis is the safe direction for every use here: a gate
  variable is only trusted when **all** of its reaching definitions
  establish the gate, and an iteration source is only called unordered
  when **all** of its reaching definitions are unordered containers.

- :func:`gate_facets` decides which fast-path *gate facets* -- ``faults``
  (no fault plan), ``tracer`` (tracing off), ``telemetry`` (telemetry
  off) -- a guard expression establishes when truthy.  Conjunctions
  accumulate facets, disjunctions keep only the common ones, and bare
  names / ``self`` attributes are expanded through their reaching (or
  class-attribute) definitions, so ``if self._fast_sends:`` resolves
  through ``self._fast_sends = faults is None and not
  self.tracer.enabled and self._merge_grants`` and on through
  ``self._merge_grants = not self.telemetry.enabled``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.rules import _unordered_iterable

#: The three gate facets a fast path may require (see rule R006).
FACET_FAULTS = "faults"
FACET_TRACER = "tracer"
FACET_TELEMETRY = "telemetry"
ALL_FACETS = (FACET_FAULTS, FACET_TRACER, FACET_TELEMETRY)


@dataclass(frozen=True)
class DefSite:
    """One definition of a local name.

    ``expr`` is the defining expression when the binding is a simple
    ``name = <expr>`` assignment, and ``None`` for opaque bindings
    (parameters, tuple unpacks, augmented assignments, loop targets) --
    an opaque definition defeats both gate expansion and
    unordered-source resolution, which is the conservative direction.
    """

    name: str
    line: int
    expr: Optional[ast.expr]


Env = Dict[str, Tuple[DefSite, ...]]


def _join(a: Env, b: Env) -> Env:
    """Union the possible definitions of every name in either branch."""
    if a is b:
        return a
    out: Env = dict(a)
    for name, defs in b.items():
        have = out.get(name)
        if have is None:
            out[name] = defs
        elif have is not defs:
            merged = list(have)
            seen = {id(d) for d in have}
            for d in defs:
                if id(d) not in seen:
                    merged.append(d)
                    seen.add(id(d))
            out[name] = tuple(merged)
    return out


class ReachingDefs:
    """Reaching definitions for one function body.

    ``at(stmt)`` returns the environment holding *before* executing
    *stmt*; statements are identified by object identity, so pass the
    same AST nodes the instance was built from.  Nested function and
    class bodies are not entered (each function is analysed in its own
    scope, matching the lint rules), but their *names* are bound.
    """

    def __init__(self, func: ast.AST) -> None:
        self._before: Dict[int, Env] = {}
        env: Env = {}
        line = getattr(func, "lineno", 1)
        for name in _param_names(func):
            env[name] = (DefSite(name, line, None),)
        self._exec_block(getattr(func, "body", []), env)

    def at(self, stmt: ast.AST) -> Env:
        """Environment immediately before *stmt* (empty if unknown)."""
        return self._before.get(id(stmt), {})

    # -- abstract interpretation -----------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt], env: Env) -> Env:
        for stmt in stmts:
            # Re-entry (loop second pass) joins with the first pass so
            # recorded environments are the union over all visits.
            prior = self._before.get(id(stmt))
            self._before[id(stmt)] = env if prior is None else _join(prior, env)
            env = self._exec_stmt(stmt, env)
        return env

    def _exec_stmt(self, stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, ast.Assign):
            return self._bind_targets(stmt.targets, stmt.value, env)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                return self._bind_targets([stmt.target], stmt.value, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            return self._bind_targets([stmt.target], None, env)
        if isinstance(stmt, ast.If):
            then_env = self._exec_block(stmt.body, env)
            else_env = self._exec_block(stmt.orelse, env)
            return _join(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            head = self._bind_targets([stmt.target], None, env)
            once = self._exec_block(stmt.body, head)
            # Second pass: definitions from the end of the body reach the
            # head on the back edge.  One extra pass suffices because the
            # domain only grows and joins are idempotent.
            twice = self._exec_block(stmt.body, _join(head, once))
            return self._exec_block(stmt.orelse, _join(env, twice))
        if isinstance(stmt, ast.While):
            once = self._exec_block(stmt.body, env)
            twice = self._exec_block(stmt.body, _join(env, once))
            return self._exec_block(stmt.orelse, _join(env, twice))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    env = self._bind_targets([item.optional_vars], item.context_expr, env)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try):
            body_env = self._exec_block(stmt.body, env)
            # A handler may run after any prefix of the body: join the
            # entry and exit environments as its starting point.
            joined = _join(env, body_env)
            out = self._exec_block(stmt.orelse, body_env)
            for handler in stmt.handlers:
                henv = joined
                if handler.name:
                    henv = dict(henv)
                    henv[handler.name] = (DefSite(handler.name, handler.lineno, None),)
                out = _join(out, self._exec_block(handler.body, henv))
            return self._exec_block(stmt.finalbody, out)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env = dict(env)
            env[stmt.name] = (DefSite(stmt.name, stmt.lineno, None),)
            return env
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            env = dict(env)
            for item in stmt.names:
                local = (item.asname or item.name).split(".")[0]
                env[local] = (DefSite(local, stmt.lineno, None),)
            return env
        if isinstance(stmt, ast.Delete):
            env = dict(env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        return env

    def _bind_targets(
        self, targets: Iterable[ast.expr], value: Optional[ast.expr], env: Env
    ) -> Env:
        env = dict(env)
        for target in targets:
            if isinstance(target, ast.Name):
                line = getattr(target, "lineno", 1)
                env[target.id] = (DefSite(target.id, line, value),)
            elif isinstance(target, (ast.Tuple, ast.List)):
                # Unpacking: each name gets an opaque definition.
                for el in ast.walk(target):
                    if isinstance(el, ast.Name):
                        env[el.id] = (DefSite(el.id, getattr(el, "lineno", 1), None),)
            elif isinstance(target, ast.Starred) and isinstance(target.value, ast.Name):
                name = target.value.id
                env[name] = (DefSite(name, getattr(target, "lineno", 1), None),)
        return env


def _param_names(func: ast.AST) -> List[str]:
    args = getattr(func, "args", None)
    if args is None:
        return []
    names = []
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        names.extend(a.arg for a in group)
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


# -- gate facets -------------------------------------------------------------


def dotted_chain(node: ast.expr) -> Optional[str]:
    """Source-order dotted text of a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _terminal(chain: str) -> str:
    return chain.rsplit(".", 1)[-1]


def _is_faults_symbol(chain: str) -> bool:
    term = _terminal(chain)
    return term == "faults" or term.endswith("_faults") or term == "fault_plan"


#: Attribute maps for ``self.X`` expansion: attr name -> every expression
#: ever assigned to it (``None`` marks an opaque assignment).
ClassAttrs = Dict[str, Tuple[Optional[ast.expr], ...]]


def gate_facets(
    test: ast.expr,
    env: Env,
    class_attrs: Optional[ClassAttrs] = None,
    depth: int = 4,
) -> FrozenSet[str]:
    """Facets guaranteed to hold whenever *test* evaluates truthy.

    Recognised forms (conjunctions union, disjunctions intersect):

    - ``<faults> is None`` -> ``faults``
    - ``not <...tracer...>.enabled`` / ``not <...telemetry...>.enabled``
      -> ``tracer`` / ``telemetry``
    - a bare name or ``self`` attribute expands through its reaching /
      class-attribute definitions; the facet set is the intersection
      over all possible definitions (an opaque definition yields none).
    """
    if depth <= 0:
        return frozenset()
    if isinstance(test, ast.BoolOp):
        sets = [gate_facets(v, env, class_attrs, depth) for v in test.values]
        if isinstance(test.op, ast.And):
            out: FrozenSet[str] = frozenset()
            for s in sets:
                out |= s
            return out
        out = sets[0]
        for s in sets[1:]:
            out &= s
        return out
    if isinstance(test, ast.Compare):
        if (
            len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            chain = dotted_chain(test.left)
            if chain is not None and _is_faults_symbol(chain):
                return frozenset((FACET_FAULTS,))
        return frozenset()
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        chain = dotted_chain(test.operand)
        if chain is not None and _terminal(chain) == "enabled":
            if "tracer" in chain or "trace" in chain:
                return frozenset((FACET_TRACER,))
            if "telemetry" in chain:
                return frozenset((FACET_TELEMETRY,))
        return frozenset()
    chain = dotted_chain(test)
    if chain is None:
        return frozenset()
    return _expand_symbol(chain, env, class_attrs, depth)


def _expand_symbol(
    chain: str,
    env: Env,
    class_attrs: Optional[ClassAttrs],
    depth: int,
) -> FrozenSet[str]:
    """Facets established by a truthy name/attribute, via its definitions."""
    exprs: Optional[Sequence[Optional[ast.expr]]] = None
    if "." not in chain:
        defs = env.get(chain)
        if defs:
            exprs = [d.expr for d in defs]
    elif chain.startswith("self.") and chain.count(".") == 1 and class_attrs is not None:
        exprs = class_attrs.get(chain.split(".", 1)[1])
    if not exprs:
        return frozenset()
    out: Optional[FrozenSet[str]] = None
    for expr in exprs:
        if expr is None:
            return frozenset()  # any opaque definition defeats the gate
        facets = gate_facets(expr, env, class_attrs, depth - 1)
        out = facets if out is None else (out & facets)
        if not out:
            return frozenset()
    return out or frozenset()


# -- unordered iteration sources ---------------------------------------------


def unordered_source(expr: ast.expr, env: Env) -> Optional[str]:
    """Describe *expr* if it (or every definition reaching it) iterates
    in container-internal order.

    Extends the syntactic check in :mod:`repro.analysis.rules` with one
    level of reaching-definition resolution: ``s = set(xs)`` followed by
    ``for x in s:`` is recognised even though the loop iterates a name.
    """
    direct = _unordered_iterable(expr)
    if direct is not None:
        return direct
    if isinstance(expr, ast.Name):
        defs = env.get(expr.id)
        if not defs:
            return None
        descriptions = []
        for d in defs:
            if d.expr is None:
                return None
            desc = _unordered_iterable(d.expr)
            if desc is None:
                return None
            descriptions.append(f"{desc} (assigned at line {d.line})")
        return descriptions[0]
    return None
