"""Determinism lint rules.

Every rule is an AST pass over one module.  The common machinery is
import-alias resolution: ``from time import time as now`` makes a later
``now()`` call resolve to the dotted origin ``time.time``, so rules match
on *origins*, never on surface spellings.

Rules
-----
R001  no wall-clock reads in simulation code
R002  no module-level / unseeded random number generators
R003  no iteration over sets or ``dict.values()`` at ordering-sensitive
      sites (event scheduling, stats merging)
R004  observability hooks must not perturb the simulation
R005  every non-``with`` resource ``request()`` needs a matching
      ``release()`` in the same function
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Rule

# -- import resolution ------------------------------------------------------


def build_alias_map(tree: ast.AST) -> Dict[str, str]:
    """Local name -> dotted origin, from every import in the module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname:
                    aliases[item.asname] = item.name
                else:
                    # ``import numpy.random`` binds the name ``numpy``.
                    head = item.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are project-internal
            for item in node.names:
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


def resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted origin of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = aliases.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


# -- rule base --------------------------------------------------------------


class LintRule:
    """One rule: a static descriptor plus a ``check`` pass."""

    rule = Rule("R000", "abstract", "")

    def check(
        self, tree: ast.AST, path: str, aliases: Dict[str, str]
    ) -> List[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule.rule_id,
            message=message,
        )


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_shallow(func: ast.AST) -> Iterator[ast.AST]:
    """Walk *func*'s own body without descending into nested functions
    (each nested function is analysed in its own scope)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _shallow_calls(func: ast.AST) -> Iterator[ast.Call]:
    for node in _walk_shallow(func):
        if isinstance(node, ast.Call):
            yield node


# -- R001: wall clock -------------------------------------------------------

_WALL_CLOCK_ORIGINS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class NoWallClock(LintRule):
    """Simulated time comes from ``env.now``; host-clock reads make
    results depend on machine speed and are irreproducible."""

    rule = Rule(
        "R001",
        "no-wall-clock",
        "wall-clock reads (time.time, datetime.now, ...) are forbidden in "
        "simulation code; use env.now",
    )

    def check(self, tree, path, aliases):
        findings = []
        for call in _calls(tree):
            origin = resolve(call.func, aliases)
            if origin in _WALL_CLOCK_ORIGINS:
                findings.append(
                    self.finding(
                        path, call,
                        f"wall-clock read '{origin}()' in simulation code; "
                        "simulated time must come from env.now",
                    )
                )
        return findings


# -- R002: unseeded randomness ---------------------------------------------


class NoUnseededRandom(LintRule):
    """The module-level ``random`` singleton and ``numpy.random`` default
    generator are process-global: any import-order or call-order change
    silently reshuffles every downstream draw.  Simulation randomness
    must flow through an explicitly-seeded generator object."""

    rule = Rule(
        "R002",
        "no-unseeded-random",
        "module-level random/numpy.random functions and unseeded "
        "random.Random() are forbidden; use an explicitly seeded generator",
    )

    def check(self, tree, path, aliases):
        findings = []
        for call in _calls(tree):
            origin = resolve(call.func, aliases)
            if origin is None:
                continue
            if origin == "random.Random" or origin == "numpy.random.default_rng":
                if not call.args and not call.keywords:
                    findings.append(
                        self.finding(
                            path, call,
                            f"'{origin}()' without a seed draws entropy from "
                            "the OS; pass an explicit seed",
                        )
                    )
                continue
            if origin == "random.SystemRandom":
                findings.append(
                    self.finding(
                        path, call,
                        "'random.SystemRandom' is inherently unseedable and "
                        "irreproducible",
                    )
                )
                continue
            if origin.startswith("random.") or origin.startswith("numpy.random."):
                findings.append(
                    self.finding(
                        path, call,
                        f"'{origin}()' uses the process-global RNG; draw from "
                        "an explicitly seeded generator object instead",
                    )
                )
        return findings


# -- R003: unordered iteration at ordering-sensitive sites -----------------

_SCHEDULING_ATTRS = {"schedule", "timeout", "process", "succeed", "fail"}
_UNORDERED_METHODS = {"values", "keys", "items"}


def _is_ordering_sensitive(func: ast.AST, aliases: Dict[str, str]) -> bool:
    name = getattr(func, "name", "")
    if "merge" in name.lower():
        return True
    for call in _shallow_calls(func):
        if (isinstance(call.func, ast.Attribute) and call.func.attr in _SCHEDULING_ATTRS):
            return True
    return False


def _unordered_iterable(expr: ast.AST) -> Optional[str]:
    """Describe *expr* if its iteration order is container-internal."""
    if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
        return "a set"
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in ("set", "frozenset"):
            return f"{expr.func.id}(...)"
        if (isinstance(expr.func, ast.Attribute) and expr.func.attr in _UNORDERED_METHODS):
            return f".{expr.func.attr}()"
    return None


def _iteration_sites(func: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
    for node in _walk_shallow(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield node, gen.iter


class NoUnorderedIteration(LintRule):
    """At a site that schedules events or merges statistics, the loop
    order becomes part of the simulation's behaviour -- iterating a set
    (or a dict view whose insertion order is itself tie-dependent) turns
    incidental container state into results."""

    rule = Rule(
        "R003",
        "no-unordered-iteration",
        "iterating sets / dict views at event-scheduling or stats-merge "
        "sites makes results depend on container internals; sort first",
    )

    def check(self, tree, path, aliases):
        findings = []
        for func in _functions(tree):
            if not _is_ordering_sensitive(func, aliases):
                continue
            for site, iterable in _iteration_sites(func):
                described = _unordered_iterable(iterable)
                if described is not None:
                    findings.append(
                        self.finding(
                            path, site,
                            f"iteration over {described} in ordering-sensitive "
                            f"function '{getattr(func, 'name', '?')}'; iterate "
                            "a sorted/canonical sequence instead",
                        )
                    )
        return findings


# -- R004: observability purity --------------------------------------------

_MUTATING_ATTRS = {
    "schedule",
    "process",
    "timeout",
    "succeed",
    "fail",
    "request",
    "acquire",
}


class ObservabilityPurity(LintRule):
    """Telemetry and tracing may *read* the environment (``env.now``,
    queue depths, counters) but must never schedule events or acquire
    resources: turning instrumentation on or off must not change any
    simulated result."""

    rule = Rule(
        "R004",
        "obs-purity",
        "observability code (repro/obs/) must not schedule events or "
        "acquire resources; instrumentation may only read",
    )

    def applies(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        return "/obs/" in norm or norm.startswith("obs/")

    def check(self, tree, path, aliases):
        if not self.applies(path):
            return []
        findings = []
        for call in _calls(tree):
            if (isinstance(call.func, ast.Attribute) and call.func.attr in _MUTATING_ATTRS):
                findings.append(
                    self.finding(
                        path, call,
                        f"observability code calls '.{call.func.attr}()'; "
                        "hooks must observe, never perturb the simulation",
                    )
                )
        return findings


# -- R005: request/release pairing -----------------------------------------


def _base_source(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure
        return "<expr>"


class ResourceLeakPairing(LintRule):
    """A ``request()`` held outside a ``with`` block leaks the resource
    on any exception path unless the same function visibly releases it;
    leaked holds deadlock every later contender."""

    rule = Rule(
        "R005",
        "request-release-pairing",
        "a non-with resource .request() needs a matching .release() in "
        "the same function (or use 'with resource.request() as req')",
    )

    def check(self, tree, path, aliases):
        findings = []
        for func in _functions(tree):
            with_requests: Set[int] = set()
            released_names: Set[str] = set()
            for node in _walk_shallow(func):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        expr = item.context_expr
                        if (
                            isinstance(expr, ast.Call)
                            and isinstance(expr.func, ast.Attribute)
                            and expr.func.attr == "request"
                        ):
                            with_requests.add(id(expr))
                elif isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                    ):
                        released_names.add(node.args[0].id)
            for node in _walk_shallow(func):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "request"
                    and id(value) not in with_requests
                ):
                    continue
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if not targets:
                    continue
                if not any(name in released_names for name in targets):
                    findings.append(
                        self.finding(
                            path, node,
                            f"'{targets[0]} = "
                            f"{_base_source(value.func.value)}.request(...)' "
                            "has no matching .release() in "
                            f"'{getattr(func, 'name', '?')}'",
                        )
                    )
        return findings


ALL_RULES: Sequence[LintRule] = (
    NoWallClock(),
    NoUnseededRandom(),
    NoUnorderedIteration(),
    ObservabilityPurity(),
    ResourceLeakPairing(),
)
