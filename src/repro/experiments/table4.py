"""Table 4: prefetching with different stripe groups.

Paper section 4.4: "The measurements were obtained using two sets of
stripegroups, namely striping across all 8 nodes and striping across 1
node.  [...] With prefetching, we observe a maximum speedup by a factor
of [digit lost].  Again, no delays were introduced between requests.
Due to the prefetching overhead which is more pronounced when the read
request sizes are small, the speedup is less than the no prefetching
case for 64KB."

R1 = bandwidth with stripe group 1, R2 = with stripe group 8; the table
reports both and the R2/R1 speedup, with and without prefetching.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    KB,
    DEFAULT_REQUEST_SIZES_KB,
    ExperimentTable,
    run_collective,
    scaled_file_size,
)
from repro.pfs import IOMode

TABLE4_STRIPE_GROUPS = (1, 8)


def run_table4(
    request_sizes_kb: Sequence[int] = DEFAULT_REQUEST_SIZES_KB,
    rounds: int = 16,
    n_compute: int = 8,
    n_io: int = 8,
    prefetch: bool = True,
) -> ExperimentTable:
    """Reproduce Table 4: bandwidth for stripe groups 1 and 8."""
    mode_label = "with" if prefetch else "without"
    table = ExperimentTable(
        title=(
            f"Table 4: PFS Read Performance {mode_label} Prefetching for "
            f"different Stripe groups, Number of Nodes = {n_compute} [MB/s]"
        ),
        columns=["request_kb", "file_mb", "bw_sgroup=1", "bw_sgroup=8", "speedup_R2/R1"],
    )
    for size_kb in request_sizes_kb:
        request = size_kb * KB
        file_size = scaled_file_size(request, n_compute, rounds)
        bandwidths = {}
        for sgroup in TABLE4_STRIPE_GROUPS:
            report = run_collective(
                request_size=request,
                file_size=file_size,
                compute_delay=0.0,
                iomode=IOMode.M_RECORD,
                prefetch=prefetch,
                stripe_factor=sgroup,
                n_compute=n_compute,
                n_io=n_io,
            )
            bandwidths[sgroup] = report.collective_bandwidth_mbps
        table.add_row(
            size_kb,
            file_size / (1024 * KB),
            bandwidths[1],
            bandwidths[8],
            bandwidths[8] / bandwidths[1] if bandwidths[1] > 0 else float("inf"),
        )
    table.notes.append("no delay between requests")
    return table


def check_table4_shape(
    with_prefetch: ExperimentTable, without_prefetch: ExperimentTable
) -> Optional[str]:
    """The paper's claims:

    - Striping across 8 I/O nodes beats striping across 1 (speedup > 1)
      at every request size.
    - With prefetching, the speedup at 64KB is *less* than the
      no-prefetch speedup at 64KB (overhead most pronounced there).
    """
    for size, sp in zip(with_prefetch.column("request_kb"), with_prefetch.column("speedup_R2/R1")):
        if sp <= 1.0:
            return f"stripe group 8 not faster than 1 at {size}KB (speedup {sp:.2f})"
    sp_with = with_prefetch.column("speedup_R2/R1")[0]
    sp_without = without_prefetch.column("speedup_R2/R1")[0]
    if sp_with > sp_without * 1.05:
        return (
            f"64KB speedup with prefetching ({sp_with:.2f}) should not exceed "
            f"the no-prefetch speedup ({sp_without:.2f})"
        )
    return None


def main() -> None:  # pragma: no cover
    with_pf = run_table4(prefetch=True)
    print(with_pf.render())
    without_pf = run_table4(prefetch=False)
    print(without_pf.render())
    problem = check_table4_shape(with_pf, without_pf)
    print(f"shape check: {'OK' if problem is None else problem}")


if __name__ == "__main__":  # pragma: no cover
    main()
