"""Experiment harnesses reproducing every table and figure in the paper.

Each module rebuilds one artifact of the evaluation section on the
simulated machine and returns structured rows (plus a text rendering
matching the paper's layout):

- :mod:`repro.experiments.figure2`  -- Figure 2: read performance of the
  PFS I/O modes vs request size.
- :mod:`repro.experiments.table1`   -- Table 1: prefetch vs no-prefetch on
  the I/O-bound workload.
- :mod:`repro.experiments.table2`   -- Table 2: read access times vs
  request size.
- :mod:`repro.experiments.figure45` -- Figures 4 & 5: balanced workloads,
  bandwidth vs computation delay, prefetch on/off.
- :mod:`repro.experiments.table3`   -- Table 3: stripe-unit sweep with
  prefetching.
- :mod:`repro.experiments.table4`   -- Table 4: stripe-group sweep with
  and without prefetching.
- :mod:`repro.experiments.ablations` -- design-choice studies beyond the
  paper (prefetch depth, policies, buffering, scaling).
"""

from repro.experiments.common import (
    DEFAULT_REQUEST_SIZES_KB,
    ExperimentTable,
    build_machine,
    run_collective,
)

__all__ = [
    "DEFAULT_REQUEST_SIZES_KB",
    "ExperimentTable",
    "build_machine",
    "run_collective",
]
