"""Parameter-grid campaigns: sweep configurations, collect CSV rows.

For studies beyond the paper's fixed tables -- e.g. "bandwidth over the
full (request size x delay x prefetch depth) grid" -- a
:class:`Campaign` takes named parameter axes and a run function, runs
the full cross product (each point on a fresh machine), and returns
rows that render as CSV or an :class:`ExperimentTable`.

Example::

    campaign = Campaign(
        axes={
            "request_kb": [64, 256],
            "delay_s": [0.0, 0.05],
            "prefetch": [False, True],
        },
        run=lambda p: {
            "bw": run_collective(
                request_size=p["request_kb"] * KB,
                file_size=scaled_file_size(p["request_kb"] * KB),
                compute_delay=p["delay_s"],
                prefetch=p["prefetch"],
            ).collective_bandwidth_mbps
        },
    )
    rows = campaign.run_all()
    print(campaign.to_csv())
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments.common import ExperimentTable


class Campaign:
    """A cross-product parameter sweep."""

    def __init__(
        self,
        axes: Mapping[str, Sequence],
        run: Callable[[Dict], Dict],
        name: str = "campaign",
    ) -> None:
        if not axes:
            raise ValueError("need at least one parameter axis")
        for axis in sorted(axes):
            if not axes[axis]:
                raise ValueError(f"axis {axis!r} has no values")
        self.axes = dict(axes)
        self.run = run
        self.name = name
        self.rows: List[Dict] = []

    @property
    def points(self) -> List[Dict]:
        """All parameter combinations, in axis-major order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo)) for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    def run_all(self, progress: Optional[Callable[[Dict], None]] = None) -> List[Dict]:
        """Run every grid point; returns (and stores) the result rows.

        Each row is the parameter dict merged with the run function's
        metric dict.  Metric keys may not collide with axis names.
        """
        self.rows = []
        for point in self.points:
            metrics = self.run(dict(point))
            if not isinstance(metrics, dict):
                raise TypeError("run function must return a dict of metrics")
            collision = set(metrics) & set(point)
            if collision:
                raise ValueError(f"metrics shadow axes: {sorted(collision)}")
            row = {**point, **metrics}
            self.rows.append(row)
            if progress is not None:
                progress(row)
        return self.rows

    # -- output ----------------------------------------------------------

    def _columns(self) -> List[str]:
        if not self.rows:
            return list(self.axes)
        metric_names = [k for k in self.rows[0] if k not in self.axes]
        return list(self.axes) + metric_names

    def to_csv(self) -> str:
        """Render collected rows as CSV text."""
        columns = self._columns()

        def cell(value) -> str:
            if isinstance(value, float):
                return f"{value:.4f}"
            text = str(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(columns)]
        for row in self.rows:
            lines.append(",".join(cell(row.get(c, "")) for c in columns))
        return "\n".join(lines)

    def to_table(self, title: Optional[str] = None) -> ExperimentTable:
        """Collected rows as an :class:`ExperimentTable`."""
        columns = self._columns()
        table = ExperimentTable(title=title or self.name, columns=columns)
        for row in self.rows:
            table.add_row(*[row.get(c, "") for c in columns])
        return table

    def best(self, metric: str, maximize: bool = True) -> Dict:
        """The row with the best value of *metric*."""
        if not self.rows:
            raise ValueError("run_all() first")
        chooser = max if maximize else min
        return chooser(self.rows, key=lambda r: r[metric])

    def __repr__(self) -> str:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return f"<Campaign {self.name!r} {size} points, {len(self.rows)} run>"
