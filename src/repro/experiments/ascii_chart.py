"""ASCII line charts for figure artifacts.

The paper's Figures 2, 4 and 5 are line charts; rendering the
reproduced series as text keeps the comparison self-contained (no
plotting dependencies) and greppable in CI logs.

``plot_series`` draws multiple named series over a shared x axis on a
character grid, one marker letter per series, with y-axis labels and a
legend.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Marker characters assigned to series in order.
MARKERS = "ox*+#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    """Map value in [lo, hi] onto 0..steps (clamped)."""
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return max(0, min(steps, round(frac * steps)))


def plot_series(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named y-series over shared x values as an ASCII chart."""
    if not x:
        raise ValueError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} has {len(ys)} points for {len(x)} x values")
    if not series:
        raise ValueError("need at least one series")

    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = 0.0, max(all_y) * 1.05 or 1.0
    x_lo, x_hi = min(x), max(x)

    grid = [[" "] * width for _ in range(height + 1)]
    legend: List[Tuple[str, str]] = []
    for index, (name, ys) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append((marker, name))
        previous = None
        for xv, yv in zip(x, ys):
            col = _scale(xv, x_lo, x_hi, width - 1)
            row = height - _scale(yv, y_lo, y_hi, height)
            # Simple line interpolation between consecutive points.
            if previous is not None:
                pcol, prow = previous
                span = max(abs(col - pcol), 1)
                for step in range(1, span):
                    icol = pcol + (col - pcol) * step // span
                    irow = prow + (row - prow) * step // span
                    if grid[irow][icol] == " ":
                        grid[irow][icol] = "."
            grid[row][col] = marker
            previous = (col, row)

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_hi:.1f}"), len(f"{y_lo:.1f}")) + 1
    for rownum, row in enumerate(grid):
        if rownum == 0:
            label = f"{y_hi:.1f}".rjust(label_width)
        elif rownum == height:
            label = f"{y_lo:.1f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    x_axis = f"{x_lo:g}".ljust(width // 2) + f"{x_hi:g}".rjust(width // 2)
    lines.append(f"{' ' * label_width}  {x_axis}")
    if x_label or y_label:
        lines.append(f"{' ' * label_width}  x: {x_label}   y: {y_label}")
    lines.append("  legend: " + "  ".join(f"{marker}={name}" for marker, name in legend))
    return "\n".join(lines)


def plot_table(table, x_column: str, title: str = "", **kwargs) -> str:
    """Plot an :class:`~repro.experiments.common.ExperimentTable`:
    *x_column* on the x axis, every other numeric column as a series."""
    x = table.column(x_column)
    series = {}
    for column in table.columns:
        if column == x_column:
            continue
        values = table.column(column)
        if all(isinstance(v, (int, float)) for v in values):
            series[column] = values
    return plot_series(x, series, title=title or table.title, **kwargs)
