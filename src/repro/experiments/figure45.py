"""Figures 4 and 5: balanced workloads (computation between reads).

Paper section 4.2: "To simulate computation for each block read, delays
were introduced between consecutive reads.  Figures 4 and 5 summarize
the results for file size of 128MBytes when delays are introduced
between successive read requests.  The computation times between the
I/O requests ranged from 0 second to 0.1 second."

Figure 4 (panels A-C): request sizes 64KB, 128KB, 256KB -- "when overlap
between I/O and computation is present, significant performance
improvements can be obtained."

Figure 5 (panels D-E): request sizes 512KB, 1024KB -- "the read time
itself is so large that no significant overlap takes place with the
computation.  Thus, no performance gains are observed."
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    KB,
    MB,
    DEFAULT_DELAYS_S,
    ExperimentTable,
    run_collective,
)
from repro.pfs import IOMode

#: Panel -> request size, as in the paper.
FIGURE4_SIZES_KB = (64, 128, 256)
FIGURE5_SIZES_KB = (512, 1024)
PAPER_FILE_SIZE = 128 * MB


def run_figure45(
    request_sizes_kb: Sequence[int] = FIGURE4_SIZES_KB + FIGURE5_SIZES_KB,
    delays_s: Sequence[float] = DEFAULT_DELAYS_S,
    file_size: int = PAPER_FILE_SIZE,
    n_compute: int = 8,
    n_io: int = 8,
    max_rounds: int = 24,
) -> Dict[int, ExperimentTable]:
    """One table per request size (figure panel): bandwidth vs delay.

    ``max_rounds`` caps reads per node so small-request sweeps finish
    quickly; the paper's shape is delay-driven, not length-driven.
    """
    panels: Dict[int, ExperimentTable] = {}
    for size_kb in request_sizes_kb:
        request = size_kb * KB
        rounds = min(max_rounds, max(4, file_size // (request * n_compute)))
        table = ExperimentTable(
            title=(
                f"Figure 4/5 panel: {size_kb}KB request size, file "
                f"{file_size // MB}MB -- read bandwidth [MB/s] vs compute delay"
            ),
            columns=["delay_s", "bw_no_prefetch_mbps", "bw_prefetch_mbps", "speedup"],
        )
        for delay in delays_s:
            without = run_collective(
                request_size=request,
                file_size=file_size,
                compute_delay=delay,
                iomode=IOMode.M_RECORD,
                prefetch=False,
                n_compute=n_compute,
                n_io=n_io,
                rounds=rounds,
            )
            with_pf = run_collective(
                request_size=request,
                file_size=file_size,
                compute_delay=delay,
                iomode=IOMode.M_RECORD,
                prefetch=True,
                n_compute=n_compute,
                n_io=n_io,
                rounds=rounds,
            )
            table.add_row(
                delay,
                without.collective_bandwidth_mbps,
                with_pf.collective_bandwidth_mbps,
                with_pf.collective_bandwidth_mbps / without.collective_bandwidth_mbps,
            )
        panels[size_kb] = table
    return panels


def check_figure45_shape(panels: Dict[int, ExperimentTable]) -> Optional[str]:
    """The paper's claims:

    - Small requests (Figure 4): prefetch bandwidth *rises* with delay
      and clearly beats no-prefetch once the delay covers the read time.
    - Large requests (Figure 5): the gain at the largest delay is modest
      relative to Figure 4's -- "the read time itself is so large that
      no significant overlap takes place".

    (Known deviation, recorded in EXPERIMENTS.md: our no-prefetch
    baseline drifts upward at large delays because unsynchronised nodes
    de-phase and see less disk contention; the paper's flat baselines
    are not asserted here.)
    """
    for size_kb in FIGURE4_SIZES_KB:
        if size_kb not in panels:
            continue
        speedups = panels[size_kb].column("speedup")
        if max(speedups) < 1.5:
            return f"{size_kb}KB: max speedup {max(speedups):.2f} < 1.5"
        if speedups[-1] < speedups[0]:
            return f"{size_kb}KB: speedup does not grow with delay"
    small_gain = max(max(panels[s].column("speedup")) for s in FIGURE4_SIZES_KB if s in panels)
    for size_kb in FIGURE5_SIZES_KB:
        if size_kb not in panels:
            continue
        gain = max(panels[size_kb].column("speedup"))
        # "No significant overlap takes place": large requests may show
        # residual partial-hit benefit, but far below Figure 4's gains.
        if gain > max(2.0, 0.5 * small_gain):
            return (
                f"{size_kb}KB gained {gain:.2f}; should be well below the "
                f"small-request gain ({small_gain:.2f})"
            )
    return None


def render_panel_chart(table: ExperimentTable) -> str:
    """ASCII line chart of one panel (bandwidth vs delay, both curves)."""
    from repro.experiments.ascii_chart import plot_series

    return plot_series(
        table.column("delay_s"),
        {
            "no prefetch": table.column("bw_no_prefetch_mbps"),
            "prefetch": table.column("bw_prefetch_mbps"),
        },
        title=table.title,
        x_label="compute delay (s)",
        y_label="MB/s",
    )


def main() -> None:  # pragma: no cover
    panels = run_figure45()
    for size_kb, table in sorted(panels.items()):
        print(table.render())
        print(render_panel_chart(table))
        print()
    problem = check_figure45_shape(panels)
    print(f"shape check: {'OK' if problem is None else problem}")


if __name__ == "__main__":  # pragma: no cover
    main()
