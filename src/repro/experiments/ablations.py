"""Ablations: design-choice studies beyond the paper's tables.

These exercise the paper's "future work" directions and the design
choices DESIGN.md calls out:

- ranked mechanism importance over the declarative registry in
  :mod:`repro.obs.ablation` (the observatory's canonical sweep);
- prefetch depth (1 = the prototype, deeper pipelines);
- prefetch policy on non-sequential patterns (strided detection,
  adaptive throttling on random access);
- prefetching in other I/O modes (M_RECORD vs M_ASYNC);
- buffered (I/O-node cache) vs Fast Path transfers;
- machine scaling (compute node count).

The studies that toggle a registered mechanism (buffering, prefetch
location) resolve their configurations through the registry rather than
hand-rolling ``MachineConfig`` edits, so what "Fast Path off" means is
defined in exactly one place.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import MachineConfig, PFSConfig
from repro.core import (
    AdaptivePolicy,
    NoPrefetch,
    OneRequestAhead,
    Prefetcher,
    StridedPolicy,
)
from repro.experiments.common import (
    KB,
    MB,
    ExperimentTable,
    run_collective,
    scaled_file_size,
)
from repro.machine import Machine
from repro.pfs import IOMode
from repro.workloads import CollectiveReadWorkload
from repro.workloads.patterns import RandomPattern, StridedPattern


def run_mechanism_importance(
    modes: Optional[Sequence[str]] = None,
    sizes_kb: Optional[Sequence[int]] = None,
    rounds: Optional[int] = None,
    compute_delay: Optional[float] = None,
) -> ExperimentTable:
    """Ranked mechanism importance from the observatory's registry sweep.

    Delegates to :func:`repro.obs.ablation.run_sweep` (the canonical
    baseline-plus-one-off harness) and renders its aggregate ranking as
    an :class:`ExperimentTable`, so the experiment suite and the
    ``BENCH_ablation.json`` tripwire share one definition of every
    mechanism toggle.
    """
    from repro.obs import ablation as obs_ablation

    kwargs = {}
    if modes is not None:
        kwargs["modes"] = tuple(modes)
    if sizes_kb is not None:
        kwargs["sizes_kb"] = tuple(sizes_kb)
    if rounds is not None:
        kwargs["rounds"] = rounds
    if compute_delay is not None:
        kwargs["compute_delay"] = compute_delay
    report = obs_ablation.run_sweep(golden=False, **kwargs)
    settings = report["settings"]
    table = ExperimentTable(
        title=(
            "Ablation: ranked mechanism importance "
            f"(modes={','.join(settings['modes'])}; "
            f"sizes={','.join(str(s) for s in settings['request_sizes_kb'])}KB)"
        ),
        columns=["rank", "mechanism", "importance", "mean_delta_mbps", "cells"],
    )
    for rank, entry in enumerate(report["importance"]["aggregate"], start=1):
        table.add_row(
            rank,
            entry["mechanism"],
            entry["importance"],
            entry["mean_delta_mbps"],
            entry["cells"],
        )
    table.notes.append(
        "importance = mean over cells of (bw_on - bw_off) / bw_on; "
        "see BENCH_ablation.json for per-cell deltas and attribution"
    )
    return table


def run_depth_ablation(
    depths: Sequence[int] = (1, 2, 4, 8),
    request_kb: int = 64,
    compute_delay: float = 0.025,
    rounds: int = 24,
) -> ExperimentTable:
    """Deeper prefetch pipelines on a balanced workload.

    Depth 1 (the prototype) cannot hide more than one request of
    latency; with a compute delay shorter than the read time, deeper
    pipelines keep the disks busy across several compute phases.
    """
    table = ExperimentTable(
        title=(
            f"Ablation: prefetch depth ({request_kb}KB requests, "
            f"{compute_delay}s compute delay)"
        ),
        columns=["depth", "bw_mbps", "hit_ratio", "coverage"],
    )
    request = request_kb * KB
    file_size = scaled_file_size(request, 8, rounds)
    baseline = run_collective(
        request_size=request,
        file_size=file_size,
        compute_delay=compute_delay,
        prefetch=False,
        rounds=rounds,
    )
    table.add_row(0, baseline.collective_bandwidth_mbps, 0.0, 0.0)
    for depth in depths:
        report = run_collective(
            request_size=request,
            file_size=file_size,
            compute_delay=compute_delay,
            prefetch=True,
            rounds=rounds,
            policy_factory=lambda depth=depth: OneRequestAhead(depth=depth),
        )
        assert report.prefetch is not None
        table.add_row(
            depth,
            report.collective_bandwidth_mbps,
            report.prefetch.hit_ratio,
            report.prefetch.coverage,
        )
    return table


def run_mode_ablation(
    request_kb: int = 64,
    compute_delay: float = 0.05,
    rounds: int = 24,
) -> ExperimentTable:
    """Prefetching under other I/O modes (the paper's future work).

    The deterministic-offset modes (M_RECORD, M_ASYNC) prefetch well;
    the shared-pointer modes cannot anticipate their next offset, so the
    one-request-ahead policy never fires and they are unchanged.
    """
    table = ExperimentTable(
        title=f"Ablation: prefetching per I/O mode ({request_kb}KB, " f"{compute_delay}s delay)",
        columns=["mode", "bw_no_prefetch", "bw_prefetch", "speedup", "issued"],
    )
    request = request_kb * KB
    file_size = scaled_file_size(request, 8, rounds)
    for mode in (IOMode.M_RECORD, IOMode.M_ASYNC, IOMode.M_UNIX, IOMode.M_SYNC):
        without = run_collective(
            request_size=request,
            file_size=file_size,
            compute_delay=compute_delay,
            iomode=mode,
            prefetch=False,
            rounds=rounds,
        )
        with_pf = run_collective(
            request_size=request,
            file_size=file_size,
            compute_delay=compute_delay,
            iomode=mode,
            prefetch=True,
            rounds=rounds,
        )
        assert with_pf.prefetch is not None
        table.add_row(
            mode.name,
            without.collective_bandwidth_mbps,
            with_pf.collective_bandwidth_mbps,
            with_pf.collective_bandwidth_mbps / without.collective_bandwidth_mbps,
            with_pf.prefetch.issued,
        )
    return table


def _pattern_run(
    pattern_name: str,
    policy_name: str,
    request_kb: int = 64,
    compute_delay: float = 0.05,
    count: int = 24,
) -> tuple:
    """One M_ASYNC run over a synthetic access pattern; returns
    (bandwidth, prefetch stats or None)."""
    request = request_kb * KB
    file_size = 64 * MB
    machine = Machine(MachineConfig())
    mount = machine.mount("/pfs", PFSConfig())
    machine.create_file(mount, "data", file_size)

    policies = {
        "none": lambda: NoPrefetch(),
        "one-ahead": lambda: OneRequestAhead(),
        "strided": lambda: StridedPolicy(),
        "adaptive": lambda: AdaptivePolicy(window=6),
    }
    prefetchers = [Prefetcher(policies[policy_name]()) for _ in range(8)]

    patterns = {
        "sequential": lambda rank: StridedPattern(
            request, request, start=rank * 8 * MB, count=count
        ),
        # Stride = 3 requests: an odd unit step walks all 8 I/O nodes
        # instead of beating on two of them.
        "strided": lambda rank: StridedPattern(
            request, 3 * request, start=rank * 8 * MB, count=count
        ),
        "random": lambda rank: RandomPattern(
            request, 8 * MB, count=count, seed=rank + 1
        ),
    }

    handles = [None] * 8

    def opener(rank):
        handles[rank] = yield from machine.clients[rank].open(
            mount,
            "data",
            IOMode.M_ASYNC,
            rank=0,
            nprocs=1,
            prefetcher=prefetchers[rank] if policy_name != "none" else None,
        )

    for rank in range(8):
        machine.spawn(opener(rank))
    machine.run()

    def reader(rank, handle):
        base = rank * 8 * MB
        first = True
        for offset, nbytes in patterns[pattern_name](rank).offsets():
            if not first:
                yield from handle.node.compute(compute_delay)
            first = False
            if pattern_name == "random":
                yield from handle.lseek(base + offset)
            else:
                yield from handle.lseek(offset)
            yield from handle.read(nbytes)

    for rank, handle in enumerate(handles):
        machine.spawn(reader(rank, handle))
    machine.run()

    total = sum(h.stats.bytes_read for h in handles)
    read_time = max(h.stats.read_call_time for h in handles)
    bw = total / read_time / MB if read_time else 0.0
    stats = None
    if policy_name != "none":
        stats = prefetchers[0].stats
        for pf in prefetchers[1:]:
            stats = stats.merge(pf.stats)
    return bw, stats


def run_policy_ablation(compute_delay: float = 0.05) -> ExperimentTable:
    """Policies vs access patterns.

    - one-ahead wins on sequential, wastes work on strided/random;
    - strided detection recovers the strided pattern;
    - adaptive throttles itself on random access instead of thrashing.
    """
    table = ExperimentTable(
        title="Ablation: prefetch policy vs access pattern (M_ASYNC, 64KB)",
        columns=["pattern", "policy", "bw_mbps", "coverage", "wasted"],
    )
    for pattern in ("sequential", "strided", "random"):
        for policy in ("none", "one-ahead", "strided", "adaptive"):
            bw, stats = _pattern_run(pattern, policy, compute_delay=compute_delay)
            table.add_row(
                pattern,
                policy,
                bw,
                stats.coverage if stats else 0.0,
                stats.discarded if stats else 0,
            )
    return table


def run_buffering_ablation(request_kb: int = 64, rounds: int = 24) -> ExperimentTable:
    """Fast Path vs buffered transfers, cold and re-read.

    Fast Path wins cold sequential reads (no cache copies); the buffer
    cache wins re-reads that fit in I/O-node memory.
    """
    table = ExperimentTable(
        title=f"Ablation: Fast Path vs I/O-node buffer cache ({request_kb}KB)",
        columns=["config", "bw_cold_mbps", "bw_reread_mbps"],
    )
    from repro.obs.ablation import mechanism, resolve_configs

    request = request_kb * KB
    file_size = scaled_file_size(request, 8, rounds)
    for buffered in (False, True):
        # "Buffered" is the registry's fastpath-off state; sizing the
        # cache to hold the whole file is this study's local twist.
        overrides = dict(mechanism("fastpath").off) if buffered else {}
        overrides["machine.cache_blocks"] = file_size // (64 * KB) + 16
        machine_cfg, pfs_cfg, _ = resolve_configs(overrides)
        machine = Machine(machine_cfg)
        mount = machine.mount("/pfs", pfs_cfg)
        machine.create_file(mount, "data", file_size)
        cold = CollectiveReadWorkload(
            machine, mount, "data", request_size=request, rounds=rounds
        ).run()
        reread = CollectiveReadWorkload(
            machine, mount, "data", request_size=request, rounds=rounds
        ).run()
        table.add_row(
            "buffered" if buffered else "fastpath",
            cold.report.collective_bandwidth_mbps,
            reread.report.collective_bandwidth_mbps,
        )
    return table


def run_prefetch_location_ablation(
    request_kb: int = 64,
    compute_delay: float = 0.1,
    rounds: int = 24,
) -> ExperimentTable:
    """Client-side prefetching (the paper) vs server-side readahead.

    Server-side readahead (classic UFS-style, into the I/O-node buffer
    cache) hides the *disk* but still pays the full client-observed
    request path on every read; the paper's client-side prefetch hides
    the whole path.  Both combined change little over client-side alone.
    """
    table = ExperimentTable(
        title=(
            f"Ablation: client prefetch vs server readahead "
            f"({request_kb}KB, {compute_delay}s delay, buffered mount)"
        ),
        columns=["config", "bw_mbps", "mean_access_ms"],
    )
    from repro.obs.ablation import mechanism, resolve_configs

    request = request_kb * KB
    readahead_mech = mechanism("server_readahead")
    configs = [
        ("none", False, False),
        ("server-readahead", False, True),
        ("client-prefetch", True, False),
        ("both", True, True),
    ]
    for name, client_prefetch, readahead in configs:
        # The readahead mechanism carries its own context (a buffered
        # mount -- it is inert on Fast Path) and on/off knob settings.
        overrides = dict(readahead_mech.context)
        overrides.update(readahead_mech.on if readahead else readahead_mech.off)
        overrides["machine.cache_blocks"] = 256
        machine_cfg, pfs_cfg, _ = resolve_configs(overrides)
        machine = Machine(machine_cfg)
        mount = machine.mount("/pfs", pfs_cfg)
        machine.create_file(mount, "data", scaled_file_size(request, 8, rounds))
        workload = CollectiveReadWorkload(
            machine,
            mount,
            "data",
            request_size=request,
            compute_delay=compute_delay,
            rounds=rounds,
            prefetcher_factory=(
                (lambda rank: Prefetcher(OneRequestAhead())) if client_prefetch else None
            ),
        )
        report = workload.run().report
        table.add_row(
            name,
            report.collective_bandwidth_mbps,
            report.mean_read_access_time_s * 1000,
        )
    return table


def run_scaling_ablation(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32),
    request_kb: int = 64,
    compute_delay: float = 0.05,
    rounds: int = 16,
) -> ExperimentTable:
    """Compute-node scaling with a fixed 8-node I/O system.

    "the file system performance is scalable.  The access bandwidth seen
    by the user when using prefetching is also scalable" -- until the 8
    I/O nodes saturate.
    """
    table = ExperimentTable(
        title=(
            f"Ablation: compute-node scaling (8 I/O nodes, {request_kb}KB, "
            f"{compute_delay}s delay)"
        ),
        columns=["n_compute", "bw_no_prefetch", "bw_prefetch", "speedup"],
    )
    request = request_kb * KB
    for n_compute in node_counts:
        file_size = scaled_file_size(request, n_compute, rounds)
        without = run_collective(
            request_size=request,
            file_size=file_size,
            compute_delay=compute_delay,
            prefetch=False,
            n_compute=n_compute,
            rounds=rounds,
        )
        with_pf = run_collective(
            request_size=request,
            file_size=file_size,
            compute_delay=compute_delay,
            prefetch=True,
            n_compute=n_compute,
            rounds=rounds,
        )
        table.add_row(
            n_compute,
            without.collective_bandwidth_mbps,
            with_pf.collective_bandwidth_mbps,
            with_pf.collective_bandwidth_mbps / without.collective_bandwidth_mbps,
        )
    return table


def run_write_strategy_ablation(
    request_kb: int = 64,
    rounds: int = 16,
) -> ExperimentTable:
    """Write strategies: Fast Path vs write-through vs write-back.

    Fast Path streams straight to disk (no cache copies) and
    write-through pays both the copy and the disk; write-back returns
    once the cache holds the data, deferring disk writes to the sync
    daemon -- the classic burst-absorbing trade-off.
    """
    table = ExperimentTable(
        title=f"Ablation: write strategies ({request_kb}KB records, M_RECORD)",
        columns=["strategy", "write_bw_mbps", "mean_write_ms", "disk_writes_during"],
    )
    request = request_kb * KB

    from repro.workloads import CollectiveWriteWorkload

    for name, buffered, write_back in (
        ("fastpath", False, False),
        ("write-through", True, False),
        ("write-back", True, True),
    ):
        machine = Machine(
            MachineConfig(write_back=write_back, cache_blocks=512, sync_interval_s=30.0)
        )
        mount = machine.mount("/pfs", PFSConfig(buffered=buffered))
        machine.create_file(mount, "out", 0)
        result = CollectiveWriteWorkload(
            machine, mount, "out", request_size=request, rounds=rounds
        ).run()
        report = result.report
        disk_writes = sum(machine.monitor.counter_value(f"raid{i}.writes") for i in range(8))
        table.add_row(
            name,
            report.collective_bandwidth_mbps,
            report.mean_read_access_time_s * 1000,  # write-call time here
            int(disk_writes),
        )
    return table


def run_multiprogramming_ablation(
    request_kb: int = 64,
    compute_delay: float = 0.06,
    rounds: int = 16,
) -> ExperimentTable:
    """Two applications sharing the machine.

    Application A (4 nodes, balanced, prefetching) runs alone, then
    alongside application B (4 nodes, I/O-bound scan of another file).
    Contention stretches A's prefetch completion times -- partial hits
    replace full hits -- but prefetching still wins over not prefetching
    under the same interference.
    """
    table = ExperimentTable(
        title=(
            f"Ablation: multiprogramming interference ({request_kb}KB, "
            f"{compute_delay}s delay for app A)"
        ),
        columns=["scenario", "bw_A_mbps", "hitsA", "partialA"],
    )
    request = request_kb * KB
    file_size = scaled_file_size(request, 4, rounds)

    def run(with_interference: bool, a_prefetch: bool):
        machine = Machine(MachineConfig())
        mount = machine.mount("/pfs", PFSConfig())
        machine.create_file(mount, "fileA", file_size)
        machine.create_file(mount, "fileB", file_size)
        prefetchers = [Prefetcher(OneRequestAhead()) for _ in range(4)]

        handles_a = [None] * 4

        def open_a(rank):
            handles_a[rank] = yield from machine.clients[rank].open(
                mount,
                "fileA",
                IOMode.M_RECORD,
                rank=rank,
                nprocs=4,
                prefetcher=prefetchers[rank] if a_prefetch else None,
            )

        handles_b = [None] * 4

        def open_b(rank):
            handles_b[rank] = yield from machine.clients[4 + rank].open(
                mount, "fileB", IOMode.M_RECORD, rank=rank, nprocs=4
            )

        for rank in range(4):
            machine.spawn(open_a(rank))
            if with_interference:
                machine.spawn(open_b(rank))
        machine.run()

        def reader_a(h):
            for _ in range(rounds):
                yield from h.node.compute(compute_delay)
                yield from h.read(request)

        def reader_b(h):
            while True:
                data = yield from h.read(request)
                if len(data) == 0:
                    return

        for h in handles_a:
            machine.spawn(reader_a(h))
        if with_interference:
            for h in handles_b:
                machine.spawn(reader_b(h))
        machine.run()

        total = sum(h.stats.bytes_read for h in handles_a)
        read_time = max(h.stats.read_call_time for h in handles_a)
        bw = total / read_time / MB
        if a_prefetch:
            stats = prefetchers[0].stats
            for pf in prefetchers[1:]:
                stats = stats.merge(pf.stats)
            return bw, stats.hits, stats.partial_hits
        return bw, 0, 0

    for name, interference, prefetch in (
        ("A alone, no prefetch", False, False),
        ("A alone, prefetch", False, True),
        ("A + B, no prefetch", True, False),
        ("A + B, prefetch", True, True),
    ):
        bw, hits, partial = run(interference, prefetch)
        table.add_row(name, bw, hits, partial)
    return table


def check_ablation_shapes(
    depth: Optional[ExperimentTable] = None,
    modes: Optional[ExperimentTable] = None,
    policies: Optional[ExperimentTable] = None,
    importance: Optional[ExperimentTable] = None,
) -> Optional[str]:
    """Sanity constraints on the ablation results."""
    if importance is not None:
        from repro.obs.ablation import MECHANISMS

        if len(importance.rows) != len(MECHANISMS):
            return (
                f"importance ranking covers {len(importance.rows)} mechanisms, "
                f"registry has {len(MECHANISMS)}"
            )
        ranked = dict(zip(importance.column("mechanism"), importance.column("importance")))
        if ranked.get("prefetch", 0.0) <= 0.0:
            return "prefetch importance is non-positive -- is it disconnected?"
    if depth is not None:
        bw = depth.column("bw_mbps")
        if bw[1] <= bw[0]:
            return "depth-1 prefetching did not beat no-prefetching"
        if max(bw[2:]) < bw[1]:
            return "deeper pipelines never beat depth 1 despite short delays"
    if modes is not None:
        issued = dict(zip(modes.column("mode"), modes.column("issued")))
        if issued.get("M_UNIX", 0) != 0:
            return "one-ahead issued prefetches under M_UNIX (unpredictable)"
        if issued.get("M_RECORD", 0) == 0:
            return "no prefetches issued under M_RECORD"
    if policies is not None:
        rows = {(r[0], r[1]): r[2] for r in policies.rows}
        if rows[("sequential", "one-ahead")] <= rows[("sequential", "none")]:
            return "one-ahead did not help sequential access"
        if rows[("strided", "strided")] <= rows[("strided", "one-ahead")]:
            return "stride detection did not beat one-ahead on strided access"
    return None


def main() -> None:  # pragma: no cover
    ranking = run_mechanism_importance()
    print(ranking.render(), "\n")
    depth = run_depth_ablation()
    print(depth.render(), "\n")
    modes = run_mode_ablation()
    print(modes.render(), "\n")
    policies = run_policy_ablation()
    print(policies.render(), "\n")
    buffering = run_buffering_ablation()
    print(buffering.render(), "\n")
    location = run_prefetch_location_ablation()
    print(location.render(), "\n")
    scaling = run_scaling_ablation()
    print(scaling.render(), "\n")
    problem = check_ablation_shapes(depth, modes, policies, importance=ranking)
    print(f"shape check: {'OK' if problem is None else problem}")


if __name__ == "__main__":  # pragma: no cover
    main()
