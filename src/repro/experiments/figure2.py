"""Figure 2: read performance of the PFS I/O modes.

Paper: "These results were obtained on a Paragon with 8 compute nodes
and 8 I/O nodes, with all compute nodes reading a single shared file.
[...] In the graph, data for the Separate Files case is also presented
for comparison with the I/O mode data; in this case each compute node
accesses a unique file rather than opening a shared file."

We sweep request size per node for every mode and the separate-files
case, reporting the aggregate read throughput (MB/s).  Expected shape:
curves rise and saturate with request size; M_UNIX (and M_LOG, which is
nearly as serialised) sit at the bottom; M_RECORD / M_ASYNC / Separate
Files form the top cluster.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    KB,
    DEFAULT_REQUEST_SIZES_KB,
    ExperimentTable,
    run_collective,
    run_separate_files,
    scaled_file_size,
)
from repro.pfs import IOMode

#: Mode order matches the figure's legend (bottom curve first).
FIGURE2_MODES = (
    IOMode.M_UNIX,
    IOMode.M_LOG,
    IOMode.M_SYNC,
    IOMode.M_RECORD,
    IOMode.M_ASYNC,
)


def run_figure2(
    request_sizes_kb: Sequence[int] = DEFAULT_REQUEST_SIZES_KB + (2048,),
    rounds: int = 16,
    n_compute: int = 8,
    n_io: int = 8,
    modes: Sequence[IOMode] = FIGURE2_MODES,
    include_separate_files: bool = True,
) -> ExperimentTable:
    """Reproduce Figure 2; one fresh machine per (mode, size) cell."""
    columns = ["request_kb"] + [mode.name for mode in modes]
    if include_separate_files:
        columns.append("SEPARATE_FILES")
    table = ExperimentTable(
        title=(
            f"Figure 2: File System Read Performance "
            f"({n_compute} Compute Nodes, {n_io} I/O Nodes) [MB/s]"
        ),
        columns=columns,
    )
    for size_kb in request_sizes_kb:
        request = size_kb * KB
        file_size = scaled_file_size(request, n_compute, rounds)
        row = [size_kb]
        for mode in modes:
            report = run_collective(
                request_size=request,
                file_size=file_size,
                iomode=mode,
                n_compute=n_compute,
                n_io=n_io,
                rounds=rounds,
                # Figure 2's workload: every node reads the shared file
                # from the beginning; M_ASYNC nodes do not seek to
                # private slices (all private pointers start at 0).
                async_partition=False,
            )
            row.append(report.collective_bandwidth_mbps)
        if include_separate_files:
            report = run_separate_files(
                request_size=request,
                file_size_per_node=request * rounds,
                n_compute=n_compute,
                n_io=n_io,
            )
            row.append(report.collective_bandwidth_mbps)
        table.add_row(*row)
    table.notes.append("64KB file-system blocks, stripe unit 64KB, stripe factor = all I/O nodes")
    return table


def check_figure2_shape(table: ExperimentTable) -> Optional[str]:
    """Validate the paper's qualitative claims; returns None if they hold.

    - M_UNIX is the slowest shared-file mode at every request size.
    - M_RECORD and M_ASYNC beat M_UNIX by a wide margin (>= 2x) at
      small request sizes.
    - Every mode's largest-request throughput exceeds its smallest.
    """
    sizes = table.column("request_kb")
    for mode in ("M_LOG", "M_SYNC", "M_RECORD", "M_ASYNC"):
        for unix_value, other, size in zip(table.column("M_UNIX"), table.column(mode), sizes):
            if other < unix_value * 0.98:
                return f"{mode} below M_UNIX at {size}KB"
    for mode in ("M_RECORD", "M_ASYNC"):
        if table.column(mode)[0] < 2.0 * table.column("M_UNIX")[0]:
            return f"{mode} not >=2x M_UNIX at the smallest request size"
    for mode in [c for c in table.columns if c != "request_kb"]:
        values = table.column(mode)
        if values[-1] <= values[0] * 0.5:
            return f"{mode} does not grow with request size"
    return None


def render_figure2_chart(table: ExperimentTable) -> str:
    """ASCII line chart: throughput vs request size, one line per mode."""
    from repro.experiments.ascii_chart import plot_table

    return plot_table(table, "request_kb", x_label="request size (KB)", y_label="MB/s")


def main() -> None:  # pragma: no cover - CLI convenience
    table = run_figure2()
    print(table.render())
    print(render_figure2_chart(table))
    problem = check_figure2_shape(table)
    print(f"shape check: {'OK' if problem is None else problem}")


if __name__ == "__main__":  # pragma: no cover
    main()
