"""Run every experiment and print (or save) every table.

Usage::

    python -m repro.experiments.runall [output_dir]

With an output directory, each artifact's rendering is written to
``<output_dir>/<name>.txt`` and its machine-readable form (the shared
:meth:`ExperimentTable.to_jsonable` shape) to ``<output_dir>/<name>.json``.
The full suite takes about half a minute.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, List, Optional, Tuple

from repro.experiments import (
    ablations,
    figure2,
    figure45,
    sensitivity,
    table1,
    table2,
    table3,
    table4,
)


def _run_all() -> List[Tuple[str, str, Optional[str], List]]:
    """Returns (name, rendering, shape_problem, tables) per artifact."""
    out: List[Tuple[str, str, Optional[str], List]] = []

    fig2 = figure2.run_figure2()
    out.append(("figure2", fig2.render(), figure2.check_figure2_shape(fig2), [fig2]))

    tab1 = table1.run_table1()
    out.append(("table1", tab1.render(), table1.check_table1_shape(tab1), [tab1]))

    tab2 = table2.run_table2()
    out.append(("table2", tab2.render(), table2.check_table2_shape(tab2), [tab2]))

    panels = figure45.run_figure45()
    rendering = "\n\n".join(panels[k].render() for k in sorted(panels))
    out.append(
        (
            "figure45",
            rendering,
            figure45.check_figure45_shape(panels),
            [panels[k] for k in sorted(panels)],
        )
    )

    tab3 = table3.run_table3()
    tab3_base = table3.run_table3_baseline()
    out.append(
        (
            "table3",
            tab3.render() + "\n\n" + tab3_base.render(),
            table3.check_table3_shape(tab3, tab3_base),
            [tab3, tab3_base],
        )
    )

    tab4 = table4.run_table4(prefetch=True)
    tab4_np = table4.run_table4(prefetch=False)
    out.append(
        (
            "table4",
            tab4.render() + "\n\n" + tab4_np.render(),
            table4.check_table4_shape(tab4, tab4_np),
            [tab4, tab4_np],
        )
    )

    sens = sensitivity.run_sensitivity()
    out.append(
        (
            "sensitivity",
            sens.render(),
            sensitivity.check_sensitivity_shape(sens),
            [sens],
        )
    )

    abl: List[Tuple[str, Callable]] = [
        ("ablation_depth", ablations.run_depth_ablation),
        ("ablation_modes", ablations.run_mode_ablation),
        ("ablation_policies", ablations.run_policy_ablation),
        ("ablation_buffering", ablations.run_buffering_ablation),
        ("ablation_prefetch_location", ablations.run_prefetch_location_ablation),
        ("ablation_multiprogramming", ablations.run_multiprogramming_ablation),
        ("ablation_write_strategies", ablations.run_write_strategy_ablation),
        ("ablation_scaling", ablations.run_scaling_ablation),
    ]
    for name, fn in abl:
        table = fn()
        out.append((name, table.render(), None, [table]))
    return out


def artifact_jsonable(tables: List, problem: Optional[str]) -> dict:
    """One artifact's JSON form: its table(s) plus the shape verdict."""
    return {
        "shape_problem": problem,
        "tables": [t.to_jsonable() for t in tables],
    }


def main(argv: Optional[List[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    output_dir = argv[0] if argv else None
    failures = 0
    for name, rendering, problem, tables in _run_all():
        print(rendering)
        status = "OK" if problem is None else f"SHAPE PROBLEM: {problem}"
        print(f"[{name}] {status}\n")
        if problem is not None:
            failures += 1
        if output_dir:
            os.makedirs(output_dir, exist_ok=True)
            with open(os.path.join(output_dir, f"{name}.txt"), "w") as fh:
                fh.write(rendering + "\n")
            with open(os.path.join(output_dir, f"{name}.json"), "w") as fh:
                json.dump(artifact_jsonable(tables, problem), fh, indent=2)
                fh.write("\n")
    print(f"done: {failures} shape problem(s)")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
