"""Table 2: read access times for various request sizes.

Paper: "Table 2 gives the minimum read access times for the various
request sizes.  These times determine how much overlap will occur
between computation and I/O.  For example, for a request size of
1024KB, it takes 0.4 sec to complete a read request."

We run the I/O-bound collective read and report the minimum and mean
duration of a single read call per request size.  Anchor: the 1024KB
minimum access time should land near 0.4 s (the one numeric value that
survived the source scan).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import MachineConfig, PFSConfig
from repro.core import OneRequestAhead, Prefetcher
from repro.experiments.common import (
    KB,
    DEFAULT_REQUEST_SIZES_KB,
    ExperimentTable,
    scaled_file_size,
)
from repro.machine import Machine
from repro.pfs import IOMode
from repro.workloads import CollectiveReadWorkload

#: The paper's only surviving anchor value.
PAPER_1024KB_ACCESS_TIME_S = 0.4


def run_table2(
    request_sizes_kb: Sequence[int] = DEFAULT_REQUEST_SIZES_KB,
    rounds: int = 16,
    n_compute: int = 8,
    n_io: int = 8,
) -> ExperimentTable:
    """Reproduce Table 2: per-call access times on the I/O-bound workload."""
    table = ExperimentTable(
        title="Table 2: Read Access Times for Various Request Sizes",
        columns=["request_kb", "min_access_s", "mean_access_s"],
    )
    for size_kb in request_sizes_kb:
        request = size_kb * KB
        machine = Machine(MachineConfig(n_compute=n_compute, n_io=n_io))
        mount = machine.mount("/pfs", PFSConfig())
        machine.create_file(mount, "data", scaled_file_size(request, n_compute, rounds))
        workload = CollectiveReadWorkload(
            machine,
            mount,
            "data",
            request_size=request,
            compute_delay=0.0,
            iomode=IOMode.M_RECORD,
        )
        result = workload.run()
        durations = [d for h in result.handles for d in h.stats.call_durations if d > 0]
        table.add_row(size_kb, min(durations), sum(durations) / len(durations))
    table.notes.append("paper anchor: 1024KB request takes ~0.4s (all other cells lost to OCR)")
    return table


def check_table2_shape(table: ExperimentTable) -> Optional[str]:
    """Access times grow with request size; 1024KB lands near 0.4 s."""
    sizes = table.column("request_kb")
    means = table.column("mean_access_s")
    for (s1, t1), (s2, t2) in zip(zip(sizes, means), zip(sizes[1:], means[1:])):
        if t2 <= t1:
            return f"access time not increasing from {s1}KB to {s2}KB"
    if 1024 in sizes:
        t = means[sizes.index(1024)]
        if not 0.2 <= t <= 0.8:
            return f"1024KB access time {t:.3f}s far from the paper's 0.4s"
    return None


def prefetch_access_time_appears_shorter(request_kb: int = 64, compute_delay: float = 0.05) -> bool:
    """Section 4's observation: "prefetching makes the read access time
    appear less than it actually is"."""
    request = request_kb * KB
    machine = Machine(MachineConfig())
    mount = machine.mount("/pfs", PFSConfig())
    machine.create_file(mount, "data", scaled_file_size(request))
    base = CollectiveReadWorkload(
        machine, mount, "data", request_size=request, compute_delay=compute_delay
    ).run()

    machine2 = Machine(MachineConfig())
    mount2 = machine2.mount("/pfs", PFSConfig())
    machine2.create_file(mount2, "data", scaled_file_size(request))
    prefetched = CollectiveReadWorkload(
        machine2,
        mount2,
        "data",
        request_size=request,
        compute_delay=compute_delay,
        prefetcher_factory=lambda rank: Prefetcher(OneRequestAhead()),
    ).run()
    return prefetched.report.mean_read_access_time_s < base.report.mean_read_access_time_s


def main() -> None:  # pragma: no cover
    table = run_table2()
    print(table.render())
    problem = check_table2_shape(table)
    print(f"shape check: {'OK' if problem is None else problem}")


if __name__ == "__main__":  # pragma: no cover
    main()
