"""Table 1: prefetching on an I/O-bound workload.

Paper section 4.1: "This experiment generates the I/O workload of an
application which does not perform any computation between the I/O
calls.  [...] the benefits from prefetching in this kind of application
are not significant [...]  The read bandwidths for the prefetching case
are comparable with the non-prefetching case in all the block sizes
except for 64KB [...] due to the overhead involved in prefetching."

Expected shape: with-prefetch within a few percent of without at every
request size, and slightly *below* at 64KB (copy + bookkeeping overhead
with no computation to hide it behind).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    KB,
    MB,
    DEFAULT_REQUEST_SIZES_KB,
    ExperimentTable,
    run_collective,
    scaled_file_size,
)
from repro.pfs import IOMode


def run_table1(
    request_sizes_kb: Sequence[int] = DEFAULT_REQUEST_SIZES_KB,
    rounds: int = 16,
    n_compute: int = 8,
    n_io: int = 8,
) -> ExperimentTable:
    """Reproduce Table 1 (stripe unit 64KB, stripe group 8)."""
    table = ExperimentTable(
        title=(
            "Table 1: PFS Read Performance with and without Prefetching "
            "(I/O bound): stripe unit=64KB stripe group=8"
        ),
        columns=[
            "request_kb",
            "file_mb",
            "bw_no_prefetch_mbps",
            "bw_prefetch_mbps",
            "ratio",
        ],
    )
    for size_kb in request_sizes_kb:
        request = size_kb * KB
        file_size = scaled_file_size(request, n_compute, rounds)
        without = run_collective(
            request_size=request,
            file_size=file_size,
            compute_delay=0.0,
            iomode=IOMode.M_RECORD,
            prefetch=False,
            n_compute=n_compute,
            n_io=n_io,
        )
        with_pf = run_collective(
            request_size=request,
            file_size=file_size,
            compute_delay=0.0,
            iomode=IOMode.M_RECORD,
            prefetch=True,
            n_compute=n_compute,
            n_io=n_io,
        )
        table.add_row(
            size_kb,
            file_size / MB,
            without.collective_bandwidth_mbps,
            with_pf.collective_bandwidth_mbps,
            with_pf.collective_bandwidth_mbps / without.collective_bandwidth_mbps,
        )
    table.notes.append("no computation between reads: prefetches get no head start")
    return table


def check_table1_shape(table: ExperimentTable) -> Optional[str]:
    """The paper's claims: comparable everywhere, overhead visible at 64KB."""
    ratios = table.column("ratio")
    sizes = table.column("request_kb")
    for size, ratio in zip(sizes, ratios):
        if not 0.75 <= ratio <= 1.15:
            return f"prefetch/no-prefetch ratio {ratio:.2f} at {size}KB not comparable"
    if ratios[0] >= 1.0:
        return "no visible prefetch overhead at 64KB"
    return None


def main() -> None:  # pragma: no cover
    table = run_table1()
    print(table.render())
    problem = check_table1_shape(table)
    print(f"shape check: {'OK' if problem is None else problem}")


if __name__ == "__main__":  # pragma: no cover
    main()
