"""Table 3: prefetching with different stripe-unit sizes.

Paper section 4.3: "Table 3 summarizes results for varying stripe units
with prefetching.  Given that no delay was introduced between requests,
the results are consistent with the no prefetching case.  For smaller
request sizes, the throughputs are less than the throughputs of the no
prefetching case due to the prefetching overhead."

Stripe units resolved from the OCR as 16KB, 64KB and 1024KB (the text
shows "su=6KB" and "su=04KB" with leading digits lost).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    KB,
    DEFAULT_REQUEST_SIZES_KB,
    ExperimentTable,
    run_collective,
    scaled_file_size,
)
from repro.pfs import IOMode

#: Stripe units swept by the paper (OCR-resolved).
TABLE3_STRIPE_UNITS_KB = (64, 16, 1024)


def run_table3(
    request_sizes_kb: Sequence[int] = DEFAULT_REQUEST_SIZES_KB,
    stripe_units_kb: Sequence[int] = TABLE3_STRIPE_UNITS_KB,
    rounds: int = 16,
    n_compute: int = 8,
    n_io: int = 8,
) -> ExperimentTable:
    """Reproduce Table 3: read bandwidth with prefetching per stripe unit."""
    table = ExperimentTable(
        title=(
            "Table 3: PFS Read Performance with prefetching for different "
            "Stripe unit sizes [MB/s]"
        ),
        columns=["request_kb", "file_mb"]
        + [f"bw_su={su}KB" for su in stripe_units_kb],
    )
    for size_kb in request_sizes_kb:
        request = size_kb * KB
        file_size = scaled_file_size(request, n_compute, rounds)
        row = [size_kb, file_size / (1024 * KB)]
        for su_kb in stripe_units_kb:
            report = run_collective(
                request_size=request,
                file_size=file_size,
                compute_delay=0.0,
                iomode=IOMode.M_RECORD,
                prefetch=True,
                stripe_unit=su_kb * KB,
                n_compute=n_compute,
                n_io=n_io,
            )
            row.append(report.collective_bandwidth_mbps)
        table.add_row(*row)
    table.notes.append("no delay between requests; prefetching enabled")
    return table


def run_table3_baseline(
    request_sizes_kb: Sequence[int] = DEFAULT_REQUEST_SIZES_KB,
    stripe_units_kb: Sequence[int] = TABLE3_STRIPE_UNITS_KB,
    rounds: int = 16,
) -> ExperimentTable:
    """The matching no-prefetch sweep ("consistent with the no
    prefetching case") used by the shape check."""
    table = ExperimentTable(
        title="Table 3 baseline (no prefetching) [MB/s]",
        columns=["request_kb"] + [f"bw_su={su}KB" for su in stripe_units_kb],
    )
    for size_kb in request_sizes_kb:
        request = size_kb * KB
        file_size = scaled_file_size(request, 8, rounds)
        row = [size_kb]
        for su_kb in stripe_units_kb:
            report = run_collective(
                request_size=request,
                file_size=file_size,
                iomode=IOMode.M_RECORD,
                prefetch=False,
                stripe_unit=su_kb * KB,
            )
            row.append(report.collective_bandwidth_mbps)
        table.add_row(*row)
    return table


def check_table3_shape(with_prefetch: ExperimentTable, baseline: ExperimentTable) -> Optional[str]:
    """Prefetch results track the no-prefetch sweep within tolerance."""
    su_columns = [c for c in with_prefetch.columns if c.startswith("bw_su=")]
    for column in su_columns:
        for size, pf, base in zip(
            with_prefetch.column("request_kb"),
            with_prefetch.column(column),
            baseline.column(column),
        ):
            ratio = pf / base if base > 0 else 0.0
            if not 0.7 <= ratio <= 1.2:
                return (
                    f"{column} at {size}KB: prefetch/no-prefetch ratio "
                    f"{ratio:.2f} not consistent"
                )
    return None


def main() -> None:  # pragma: no cover
    table = run_table3()
    print(table.render())
    baseline = run_table3_baseline()
    print(baseline.render())
    problem = check_table3_shape(table, baseline)
    print(f"shape check: {'OK' if problem is None else problem}")


if __name__ == "__main__":  # pragma: no cover
    main()
