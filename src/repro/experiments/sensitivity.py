"""Calibration-sensitivity study, including the paper's SCSI-16 remark.

The reproduction is calibrated to one surviving number (0.4 s per 1024KB
read); this study shows the paper's *qualitative* conclusions are robust
to that calibration.  It also answers the paper's own aside -- "SCSI-16
hardware is also available that effectively quadruples the bandwidth
available on each I/O node" -- by predicting the machine's behaviour at
0.5x / 1x / 2x / 4x the I/O-node bandwidth:

- absolute bandwidth scales with the storage path;
- the prefetching crossover (gains iff compute delay covers read time)
  shifts with the read time but never disappears;
- faster disks *shrink* the balanced-workload speedup at a fixed delay
  (there is less latency left to hide), they do not grow it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.common import (
    KB,
    ExperimentTable,
    run_collective,
    scaled_file_size,
)
from repro.hardware.params import DEFAULT_HARDWARE


def scaled_hardware(io_scale: float):
    """Hardware with the per-I/O-node path scaled by *io_scale*.

    Scales the SCSI bus and the spindle media rate together (the paper's
    SCSI-16 upgrade replaced the whole I/O-node storage path).
    """
    hw = DEFAULT_HARDWARE
    return replace(
        hw,
        scsi=replace(hw.scsi, bandwidth_bps=hw.scsi.bandwidth_bps * io_scale),
        disk=replace(hw.disk, media_rate_bps=hw.disk.media_rate_bps * io_scale),
    )


def run_sensitivity(
    io_scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    request_kb: int = 64,
    compute_delay: float = 0.1,
    rounds: int = 16,
) -> ExperimentTable:
    """Sweep the I/O-node bandwidth scale; 4.0 is the SCSI-16 machine."""
    table = ExperimentTable(
        title=(
            f"Sensitivity: I/O-node bandwidth scale ({request_kb}KB requests; "
            f"1.0 = calibrated SCSI-8, 4.0 = the paper's SCSI-16 remark)"
        ),
        columns=[
            "io_scale",
            "bw_iobound_mbps",
            "iobound_prefetch_ratio",
            "bw_balanced_prefetch_mbps",
            "balanced_speedup",
        ],
    )
    request = request_kb * KB
    file_size = scaled_file_size(request, 8, rounds)
    for scale in io_scales:
        hardware = scaled_hardware(scale)
        iob_base = run_collective(
            request_size=request,
            file_size=file_size,
            prefetch=False,
            rounds=rounds,
            hardware=hardware,
        )
        iob_pf = run_collective(
            request_size=request,
            file_size=file_size,
            prefetch=True,
            rounds=rounds,
            hardware=hardware,
        )
        bal_base = run_collective(
            request_size=request,
            file_size=file_size,
            prefetch=False,
            compute_delay=compute_delay,
            rounds=rounds,
            hardware=hardware,
        )
        bal_pf = run_collective(
            request_size=request,
            file_size=file_size,
            prefetch=True,
            compute_delay=compute_delay,
            rounds=rounds,
            hardware=hardware,
        )
        table.add_row(
            scale,
            iob_base.collective_bandwidth_mbps,
            iob_pf.collective_bandwidth_mbps / iob_base.collective_bandwidth_mbps,
            bal_pf.collective_bandwidth_mbps,
            bal_pf.collective_bandwidth_mbps / bal_base.collective_bandwidth_mbps,
        )
    return table


def check_sensitivity_shape(table: ExperimentTable) -> Optional[str]:
    """Claims that must hold at every calibration:

    - baseline bandwidth increases with the I/O path scale;
    - the I/O-bound prefetch ratio stays ~1 (no free lunch) everywhere;
    - the balanced workload gains from prefetching at every scale;
    - the balanced speedup does not *grow* with faster disks.
    """
    scales = table.column("io_scale")
    base = table.column("bw_iobound_mbps")
    for (s1, b1), (s2, b2) in zip(zip(scales, base), zip(scales[1:], base[1:])):
        if b2 <= b1:
            return f"baseline bandwidth fell from scale {s1} to {s2}"
    for scale, ratio in zip(scales, table.column("iobound_prefetch_ratio")):
        if not 0.75 <= ratio <= 1.2:
            return f"I/O-bound ratio {ratio:.2f} at scale {scale} not ~1"
    speedups = table.column("balanced_speedup")
    for scale, sp in zip(scales, speedups):
        if sp < 1.2:
            return f"balanced workload gained only {sp:.2f}x at scale {scale}"
    if speedups[-1] > speedups[0] * 1.3:
        return "speedup grew with faster disks (should shrink or hold)"
    return None


def main() -> None:  # pragma: no cover
    table = run_sensitivity()
    print(table.render())
    problem = check_sensitivity_shape(table)
    print(f"shape check: {'OK' if problem is None else problem}")


if __name__ == "__main__":  # pragma: no cover
    main()
