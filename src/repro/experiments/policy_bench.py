"""Head-to-head prefetch policy bench.

Races the paper's static one-request-ahead prototype against the
depth-k / adaptive / tuned policies (:mod:`repro.core.policies`,
:mod:`repro.core.tuner`) across three workload families:

- ``paper`` -- the paper's M_RECORD collective cells over the balanced
  delay sweep.  The acceptance bound here is *no regression*: adaptive
  runs start at depth 1 and only deepen when partial hits show the
  pipeline is too shallow, so on cells where one-ahead already hides
  the whole service time the adaptive runs are bit-identical to static.
- ``strided`` -- non-unit-stride M_ASYNC readers
  (:class:`repro.workloads.StridedReadWorkload`), where the M_ASYNC
  mode arithmetic predicts the wrong next offset and only the
  stride-detecting policies prefetch anything useful.
- ``deep-seq`` -- sequential M_ASYNC readers with no compute delay,
  where one request ahead is structurally too shallow (the prefetch is
  issued after the demand read returns, so the next read always catches
  it in flight) and a deeper pipeline converts partial hits into hits.

The ``comparison`` block computes the PR's acceptance criteria:
``paper_ok`` (tuned adaptive >= static on every paper cell) and
``new_family_strict_win`` (strictly better on at least one new family).
Both are asserted by ``tests/test_policy_bench.py`` against the
committed ``BENCH_8.json``.

Usage::

    PYTHONPATH=src python -m repro.experiments.policy_bench
        [--quick] [--output PATH]

Fully deterministic: no timestamps, rounded floats -- reruns of an
unchanged tree produce byte-identical JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    KB,
    run_collective,
    run_strided,
    scaled_file_size,
)
from repro.pfs import IOMode

#: The policy contenders: (name, run kwargs).  ``static`` is exactly the
#: paper's prototype (the machine defaults).
POLICIES: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("static", {"prefetch_policy": "one-ahead", "prefetch_depth": 1}),
    ("depth-4", {"prefetch_policy": "depth-k", "prefetch_depth": 4}),
    ("adaptive", {"prefetch_policy": "adaptive", "prefetch_depth": 1}),
    (
        "adaptive+tuner",
        {"prefetch_policy": "adaptive", "prefetch_depth": 1, "tuner": True},
    ),
)

#: The policy whose numbers gate acceptance against ``static``.
TUNED = "adaptive+tuner"

DEFAULT_PAPER_SIZES_KB = (64, 256)
DEFAULT_PAPER_DELAYS_S = (0.0, 0.025, 0.05, 0.1, 0.2)
DEFAULT_NEW_SIZES_KB = (64,)
DEFAULT_NEW_DELAYS_S = (0.0, 0.05)
DEFAULT_ROUNDS = 16

#: Bandwidths within EPS MB/s count as ties (float formatting noise);
#: a strict win must clear the static number by WIN_MARGIN relative.
EPS = 1e-6
WIN_MARGIN = 0.01


def _round(value: float, digits: int = 4) -> float:
    return round(float(value), digits)


def _paper_cell(size_kb: int, delay_s: float, rounds: int, policy_kw) -> float:
    request = size_kb * KB
    report = run_collective(
        request_size=request,
        file_size=scaled_file_size(request, rounds=rounds),
        compute_delay=delay_s,
        iomode=IOMode.M_RECORD,
        prefetch=True,
        rounds=rounds,
        **policy_kw,
    )
    return report.collective_bandwidth_mbps


def _strided_cell(size_kb: int, delay_s: float, rounds: int, policy_kw) -> float:
    request = size_kb * KB
    stride = 3 * request  # odd unit step: walks all I/O nodes
    report = run_strided(
        request_size=request,
        file_size=stride * 8 * rounds,
        stride=stride,
        compute_delay=delay_s,
        prefetch=True,
        rounds=rounds,
        **policy_kw,
    )
    return report.collective_bandwidth_mbps


def _deep_seq_cell(size_kb: int, delay_s: float, rounds: int, policy_kw) -> float:
    request = size_kb * KB
    report = run_collective(
        request_size=request,
        file_size=scaled_file_size(request, rounds=rounds),
        compute_delay=delay_s,
        iomode=IOMode.M_ASYNC,
        prefetch=True,
        rounds=rounds,
        **policy_kw,
    )
    return report.collective_bandwidth_mbps


FAMILIES = {
    "paper": _paper_cell,
    "strided": _strided_cell,
    "deep-seq": _deep_seq_cell,
}


def run_policy_bench(
    quick: bool = False,
    paper_sizes_kb: Optional[Sequence[int]] = None,
    paper_delays_s: Optional[Sequence[float]] = None,
    rounds: Optional[int] = None,
) -> Dict[str, object]:
    """Run every (family, size, delay, policy) cell; returns the report."""
    if quick:
        paper_sizes = paper_sizes_kb or (64,)
        paper_delays = paper_delays_s or (0.0, 0.05, 0.2)
        new_sizes: Sequence[int] = (64,)
        new_delays: Sequence[float] = (0.0, 0.05)
        n_rounds = rounds or 8
    else:
        paper_sizes = paper_sizes_kb or DEFAULT_PAPER_SIZES_KB
        paper_delays = paper_delays_s or DEFAULT_PAPER_DELAYS_S
        new_sizes = DEFAULT_NEW_SIZES_KB
        new_delays = DEFAULT_NEW_DELAYS_S
        n_rounds = rounds or DEFAULT_ROUNDS

    grids = {
        "paper": (paper_sizes, paper_delays),
        "strided": (new_sizes, new_delays),
        "deep-seq": (new_sizes, new_delays),
    }
    cells: List[Dict[str, object]] = []
    for family, cell_fn in FAMILIES.items():
        sizes, delays = grids[family]
        for size_kb in sizes:
            for delay_s in delays:
                bandwidth = {
                    name: _round(cell_fn(size_kb, delay_s, n_rounds, kw))
                    for name, kw in POLICIES
                }
                cells.append(
                    {
                        "family": family,
                        "request_kb": size_kb,
                        "delay_s": delay_s,
                        "bandwidth_mbps": bandwidth,
                    }
                )
    return {
        "bench": "policy-head-to-head",
        "schema": 1,
        "settings": {
            "rounds": n_rounds,
            "quick": quick,
            "paper_sizes_kb": list(paper_sizes),
            "paper_delays_s": list(paper_delays),
            "new_sizes_kb": list(new_sizes),
            "new_delays_s": list(new_delays),
        },
        "policies": [
            {"name": name, "overrides": dict(kw)} for name, kw in POLICIES
        ],
        "cells": cells,
        "comparison": compare(cells),
    }


def compare(cells: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """The acceptance verdicts: tuned-vs-static per family.

    ``paper_ok``: the tuned policy's bandwidth is >= static on *every*
    paper cell (ties allowed -- on full-hit cells the runs are
    bit-identical by design).  ``new_family_strict_win``: at least one
    non-paper family where the tuned policy beats static on every cell
    by more than :data:`WIN_MARGIN` relative.
    """
    paper_checks: List[Dict[str, object]] = []
    wins: Dict[str, bool] = {}
    for family in FAMILIES:
        fam_cells = [c for c in cells if c["family"] == family]
        if not fam_cells:
            continue
        if family == "paper":
            for cell in fam_cells:
                bw = cell["bandwidth_mbps"]
                paper_checks.append(
                    {
                        "request_kb": cell["request_kb"],
                        "delay_s": cell["delay_s"],
                        "static_mbps": bw["static"],
                        "tuned_mbps": bw[TUNED],
                        "ok": bw[TUNED] >= bw["static"] - EPS,
                    }
                )
        else:
            wins[family] = all(
                c["bandwidth_mbps"][TUNED]
                > c["bandwidth_mbps"]["static"] * (1.0 + WIN_MARGIN)
                for c in fam_cells
            )
    return {
        "tuned_policy": TUNED,
        "paper_ok": all(c["ok"] for c in paper_checks),
        "paper_cells": paper_checks,
        "strict_win_by_family": wins,
        "new_family_strict_win": any(wins.values()),
    }


def render_ascii(report: Dict[str, object]) -> str:
    """Fixed-width rendering of the head-to-head table."""
    names = [p["name"] for p in report["policies"]]
    header = ["family", "req", "delay"] + names
    rows = []
    for cell in report["cells"]:
        rows.append(
            [
                cell["family"],
                f"{cell['request_kb']}KB",
                f"{cell['delay_s']:.3f}s",
            ]
            + [f"{cell['bandwidth_mbps'][n]:.2f}" for n in names]
        )
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines = ["Prefetch policy head-to-head (collective MB/s)", ""]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    cmp_block = report["comparison"]
    lines.append("")
    lines.append(
        f"paper cells: tuned >= static on all = {cmp_block['paper_ok']}; "
        f"strict wins: {cmp_block['strict_win_by_family']}"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.policy_bench",
        description="Head-to-head prefetch policy bench.",
    )
    parser.add_argument("--quick", action="store_true", help="trimmed grid (CI)")
    parser.add_argument("--output", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)
    report = run_policy_bench(quick=args.quick)
    print(render_ascii(report))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.output}")
    cmp_block = report["comparison"]
    if not cmp_block["paper_ok"]:
        print("FAIL: tuned policy regresses a paper cell", file=sys.stderr)
        return 1
    if not cmp_block["new_family_strict_win"]:
        print("FAIL: no strict win on any new workload family", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
