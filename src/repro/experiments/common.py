"""Shared experiment plumbing.

Every experiment builds a fresh 8 compute / 8 I/O node machine (the
paper's testbed), creates its file(s), runs a workload, and reports the
paper's collective-read-bandwidth metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import MachineConfig, PFSConfig
from repro.core import OneRequestAhead, Prefetcher
from repro.core.policies import PrefetchPolicy
from repro.machine import Machine
from repro.metrics import BandwidthReport
from repro.pfs import IOMode
from repro.workloads import (
    CollectiveReadWorkload,
    SeparateFilesWorkload,
    StridedReadWorkload,
)

KB = 1024
MB = 1024 * 1024

#: The paper's request sizes (OCR-resolved: 64, 128, 256, 512, 1024 KB).
DEFAULT_REQUEST_SIZES_KB = (64, 128, 256, 512, 1024)

#: The paper's balanced-workload computation delays: "from 0 second to
#: 0.2 second" between consecutive reads (OCR-resolved: 0.2 s is the
#: only upper bound consistent with the paper's panel-by-panel claims
#: given the Table-2 anchor -- 256KB reads take ~0.1s and gain, 512KB
#: take ~0.2s and are marginal, 1024KB take ~0.4s and do not gain).
DEFAULT_DELAYS_S = (0.0, 0.025, 0.05, 0.1, 0.2)


@dataclass
class ExperimentTable:
    """Structured result: named columns, list of rows, text rendering."""

    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Pre-rendered extra sections (e.g. per-layer latency breakdowns)
    #: appended verbatim after the notes.
    sections: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"row has {len(values)} values for {len(self.columns)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> List:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text table in the paper's style."""

        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.2f}"
            return str(v)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(c.rjust(w) for c, w in zip(self.columns, widths)))
        for row in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        for section in self.sections:
            lines.append("")
            lines.append(section)
        return "\n".join(lines)

    def attach_breakdown(
        self, breakdown: Dict[str, float], title: str = "Per-layer breakdown"
    ) -> None:
        """Attach a traced run's per-layer latency breakdown as an extra
        rendered section (see :func:`repro.obs.render_breakdown`)."""
        from repro.obs import render_breakdown

        self.sections.append(render_breakdown(breakdown, title=title))

    def to_jsonable(self) -> dict:
        """Machine-readable form: the shared shape every table/figure
        artifact (``results/*.json``, ``BENCH_*.json`` entries) uses."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_jsonable(), indent=indent) + "\n"

    def write_json(self, path) -> None:
        """Write the JSON artifact next to the text rendering."""
        with open(path, "w") as fh:
            fh.write(self.to_json())


def build_machine(
    n_compute: int = 8,
    n_io: int = 8,
    stripe_unit: int = 64 * KB,
    stripe_factor: int = 0,
    buffered: bool = False,
    cache_blocks: int = 128,
    hardware=None,
    trace: bool = False,
    telemetry: bool = False,
    tie_break: str = "fifo",
    faults=None,
    prefetch_policy: str = "one-ahead",
    prefetch_depth: int = 1,
    prefetch_quota_bytes: Optional[int] = None,
    prefetch_stride_detect: bool = True,
    tuner: bool = False,
    tuner_interval_s: float = 0.05,
):
    """Machine + mount with the paper's defaults (8C/8IO, 64KB blocks)."""
    config_kwargs = dict(
        n_compute=n_compute,
        n_io=n_io,
        cache_blocks=cache_blocks,
        trace=trace,
        telemetry=telemetry,
        tie_break=tie_break,
        faults=faults,
        prefetch_policy=prefetch_policy,
        prefetch_depth=prefetch_depth,
        prefetch_quota_bytes=prefetch_quota_bytes,
        prefetch_stride_detect=prefetch_stride_detect,
        tuner=tuner,
        tuner_interval_s=tuner_interval_s,
    )
    if hardware is not None:
        config_kwargs["hardware"] = hardware
    machine = Machine(MachineConfig(**config_kwargs))
    mount = machine.mount(
        "/pfs",
        PFSConfig(stripe_unit=stripe_unit, stripe_factor=stripe_factor, buffered=buffered),
    )
    return machine, mount


def prefetcher_factory(
    enabled: bool,
    policy_factory: Optional[Callable[[], PrefetchPolicy]] = None,
    machine: Optional[Machine] = None,
) -> Optional[Callable[[int], Prefetcher]]:
    """Per-rank prefetcher factory (None when disabled).

    An explicit *policy_factory* wins; otherwise, given a *machine*, the
    factory routes through :meth:`Machine.build_prefetcher` so the
    machine's ``prefetch_policy`` / ``prefetch_depth`` / tuner knobs
    apply (the default knobs build exactly the paper's prototype).
    """
    if not enabled:
        return None
    if policy_factory is not None:

        def make(rank: int) -> Prefetcher:
            return Prefetcher(policy_factory())

        return make
    if machine is not None:
        return machine.build_prefetcher

    def make_default(rank: int) -> Prefetcher:
        return Prefetcher(OneRequestAhead())

    return make_default


def run_collective(
    request_size: int,
    file_size: int,
    compute_delay: float = 0.0,
    iomode: IOMode = IOMode.M_RECORD,
    prefetch: bool = False,
    stripe_unit: int = 64 * KB,
    stripe_factor: int = 0,
    n_compute: int = 8,
    n_io: int = 8,
    rounds: Optional[int] = None,
    policy_factory: Optional[Callable[[], PrefetchPolicy]] = None,
    buffered: bool = False,
    async_partition: bool = True,
    hardware=None,
    trace: bool = False,
    telemetry: bool = False,
    tie_break: str = "fifo",
    keep_machine: bool = False,
    faults=None,
    prefetch_policy: str = "one-ahead",
    prefetch_depth: int = 1,
    prefetch_quota_bytes: Optional[int] = None,
    prefetch_stride_detect: bool = True,
    tuner: bool = False,
    tuner_interval_s: float = 0.05,
) -> BandwidthReport:
    """One fresh-machine collective read run; returns the report.

    With ``trace=True`` the machine records request spans and the report
    comes back with its :attr:`~repro.metrics.BandwidthReport.breakdown`
    populated (per-layer critical-path seconds summed over all read
    calls).  With ``telemetry=True`` resource time series are sampled and
    :attr:`~repro.metrics.BandwidthReport.bottleneck` names the
    saturating resource.  Neither schedules simulation events, so the
    measured numbers are identical either way.

    ``keep_machine=True`` attaches the machine as ``report.machine`` so
    callers can export telemetry/traces after the fact (the attribute is
    set dynamically and never participates in equality).
    """
    machine, mount = build_machine(
        n_compute=n_compute,
        n_io=n_io,
        stripe_unit=stripe_unit,
        stripe_factor=stripe_factor,
        buffered=buffered,
        hardware=hardware,
        trace=trace,
        telemetry=telemetry,
        tie_break=tie_break,
        faults=faults,
        prefetch_policy=prefetch_policy,
        prefetch_depth=prefetch_depth,
        prefetch_quota_bytes=prefetch_quota_bytes,
        prefetch_stride_detect=prefetch_stride_detect,
        tuner=tuner,
        tuner_interval_s=tuner_interval_s,
    )
    machine.create_file(mount, "data", file_size)
    workload = CollectiveReadWorkload(
        machine,
        mount,
        "data",
        request_size=request_size,
        compute_delay=compute_delay,
        iomode=iomode,
        rounds=rounds,
        prefetcher_factory=prefetcher_factory(prefetch, policy_factory, machine=machine),
        async_partition=async_partition,
    )
    report = workload.run().report
    if trace:
        report.breakdown = machine.obs.breakdown()
    if telemetry:
        machine.obs.telemetry.finalize()
        report.bottleneck = machine.obs.bottleneck_report()
    if keep_machine:
        report.machine = machine
    return report


def run_separate_files(
    request_size: int,
    file_size_per_node: int,
    compute_delay: float = 0.0,
    n_compute: int = 8,
    n_io: int = 8,
    stripe_unit: int = 64 * KB,
    prefetch: bool = False,
    tie_break: str = "fifo",
    faults=None,
) -> BandwidthReport:
    """Figure 2's "Separate Files" case: one rotated file per node."""
    machine, mount = build_machine(
        n_compute=n_compute,
        n_io=n_io,
        stripe_unit=stripe_unit,
        tie_break=tie_break,
        faults=faults,
    )
    for rank in range(n_compute):
        machine.create_file(mount, f"data{rank}", file_size_per_node, rotate=True)
    workload = SeparateFilesWorkload(
        machine,
        mount,
        "data",
        request_size=request_size,
        compute_delay=compute_delay,
        prefetcher_factory=prefetcher_factory(prefetch, machine=machine),
    )
    return workload.run().report


def run_strided(
    request_size: int,
    file_size: int,
    stride: Optional[int] = None,
    compute_delay: float = 0.0,
    prefetch: bool = False,
    n_compute: int = 8,
    n_io: int = 8,
    stripe_unit: int = 64 * KB,
    rounds: Optional[int] = None,
    policy_factory: Optional[Callable[[], PrefetchPolicy]] = None,
    tie_break: str = "fifo",
    keep_machine: bool = False,
    faults=None,
    prefetch_policy: str = "one-ahead",
    prefetch_depth: int = 1,
    prefetch_quota_bytes: Optional[int] = None,
    prefetch_stride_detect: bool = True,
    tuner: bool = False,
    tuner_interval_s: float = 0.05,
) -> BandwidthReport:
    """Strided M_ASYNC read over one shared file (the non-unit-stride
    family where mode arithmetic mispredicts; see
    :class:`repro.workloads.StridedReadWorkload`)."""
    machine, mount = build_machine(
        n_compute=n_compute,
        n_io=n_io,
        stripe_unit=stripe_unit,
        tie_break=tie_break,
        faults=faults,
        prefetch_policy=prefetch_policy,
        prefetch_depth=prefetch_depth,
        prefetch_quota_bytes=prefetch_quota_bytes,
        prefetch_stride_detect=prefetch_stride_detect,
        tuner=tuner,
        tuner_interval_s=tuner_interval_s,
    )
    machine.create_file(mount, "data", file_size)
    workload = StridedReadWorkload(
        machine,
        mount,
        "data",
        request_size=request_size,
        stride=stride,
        compute_delay=compute_delay,
        rounds=rounds,
        prefetcher_factory=prefetcher_factory(prefetch, policy_factory, machine=machine),
    )
    report = workload.run().report
    if keep_machine:
        report.machine = machine
    return report


def scaled_file_size(request_size: int, n_compute: int = 8, rounds: int = 16) -> int:
    """File sized so every node performs *rounds* full requests."""
    return request_size * n_compute * rounds


def run_multipass(
    request_size: int,
    file_size: int,
    passes: int = 6,
    iomode: IOMode = IOMode.M_RECORD,
    prefetch: bool = True,
    rounds: Optional[int] = None,
    n_compute: int = 8,
    n_io: int = 8,
    tie_break: str = "fifo",
    faults=None,
    keep_machine: bool = False,
) -> BandwidthReport:
    """Read the same file *passes* times on one machine; aggregate report.

    The canonical copy-back-rebuild scenario: a rebuild's cost is paid
    once (the live region crosses the SCSI bus one time) while degraded
    reconstruction taxes every pass, so over enough passes the expected
    bandwidth ordering is fault-free > rebuild > degraded-forever.
    A single pass cannot show this -- the rebuild moves at least as many
    bytes as one pass reads from the failed array.

    The aggregate report divides total bytes by the summed per-pass
    slowest-rank read-call time (each pass re-opens fresh handles).
    """
    machine, mount = build_machine(
        n_compute=n_compute,
        n_io=n_io,
        tie_break=tie_break,
        faults=faults,
    )
    machine.create_file(mount, "data", file_size)
    total_bytes = 0
    read_call_time = 0.0
    elapsed = 0.0
    for _ in range(passes):
        workload = CollectiveReadWorkload(
            machine,
            mount,
            "data",
            request_size=request_size,
            iomode=iomode,
            rounds=rounds,
            prefetcher_factory=prefetcher_factory(prefetch),
        )
        result = workload.run()
        total_bytes += result.report.total_bytes
        read_call_time += result.report.read_time_s
        elapsed += result.report.elapsed_s
    report = BandwidthReport(
        total_bytes=total_bytes,
        elapsed_s=elapsed,
        read_call_time_by_rank={0: read_call_time},
        bytes_by_rank={0: total_bytes},
        calls_by_rank={},
    )
    if keep_machine:
        report.machine = machine
    return report


def speedup(with_value: float, without_value: float) -> float:
    return with_value / without_value if without_value > 0 else float("inf")


def sizes_kb(sizes: Sequence[int]) -> List[int]:
    return [s * KB for s in sizes]
