"""Prefetch buffer structures.

Paper section 3: "Once the asynchronous request is done, the data that
has been read is stored in a buffer along with other details such as
the PFS file offset, the size of the data in bytes etc.  This prefetch
buffer structure is part of a list of all the prefetch buffer
structures of data that have been prefetched from that particular file.
[...] Memory for the prefetch buffers is allocated in the compute node.
At the time the process closes the file, all the prefetch buffers are
freed."

One deviation from the prototype, recorded in DESIGN.md: consumed
buffers release their *memory* immediately (the struct stays on the
list for statistics).  Retaining every consumed buffer until close --
the literal reading of the paper -- overflows a 32MB node on the
paper's own 128MB workloads, so the prototype must have recycled too.
``retain_consumed=True`` restores the literal behaviour for small runs.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, List, Optional

from repro.hardware.memory import MemoryRegion, OutOfMemoryError
from repro.sim import Environment, Event
from repro.ufs.data import Data

if TYPE_CHECKING:  # pragma: no cover
    pass

_buffer_ids = itertools.count(1)


class BufferState(enum.Enum):
    """Lifecycle of a prefetch buffer."""

    IN_FLIGHT = "in-flight"  # async request issued, data not yet landed
    READY = "ready"  # data present, waiting to be consumed
    CONSUMED = "consumed"  # served a demand read
    DISCARDED = "discarded"  # freed without ever being used
    FAILED = "failed"  # the asynchronous read errored; no data


class PrefetchBuffer:
    """One prefetched range of one PFS file."""

    __slots__ = (
        "buffer_id",
        "offset",
        "length",
        "issued_length",
        "state",
        "data",
        "complete",
        "issued_at",
        "ready_at",
        "consumed_at",
    )

    def __init__(self, env: Environment, offset: int, length: int) -> None:
        self.buffer_id = next(_buffer_ids)
        self.offset = offset
        self.length = length
        #: Length as issued; ``length`` shrinks under partial consumption
        #: while this stays fixed (overlap accounting prorates on it).
        self.issued_length = length
        self.state = BufferState.IN_FLIGHT
        self.data: Optional[Data] = None
        #: Fires when the asynchronous request lands the data.
        self.complete: Event = env.event()
        self.issued_at = env.now
        self.ready_at: Optional[float] = None
        self.consumed_at: Optional[float] = None

    @property
    def end(self) -> int:
        return self.offset + self.length

    def covers(self, offset: int, nbytes: int) -> bool:
        """True if this buffer's range contains [offset, offset+nbytes)."""
        return self.offset <= offset and offset + nbytes <= self.end

    def mark_ready(self, env: Environment, data: Data) -> None:
        if self.state is not BufferState.IN_FLIGHT:
            raise RuntimeError(f"buffer {self.buffer_id} ready twice")
        self.data = data
        self.state = BufferState.READY
        self.ready_at = env.now
        self.complete.succeed()

    def __repr__(self) -> str:
        return (
            f"<PrefetchBuffer {self.buffer_id} [{self.offset}, {self.end}) " f"{self.state.value}>"
        )


class PrefetchBufferList:
    """Per-(handle, file) list of prefetch buffers with memory accounting."""

    def __init__(
        self,
        env: Environment,
        memory: MemoryRegion,
        retain_consumed: bool = False,
        alloc_class: str = "prefetch",
    ) -> None:
        self.env = env
        self.memory = memory
        self.retain_consumed = retain_consumed
        self.alloc_class = alloc_class
        self.buffers: List[PrefetchBuffer] = []

    def __len__(self) -> int:
        return len(self.buffers)

    @property
    def live_buffers(self) -> List[PrefetchBuffer]:
        """Buffers still holding memory (in-flight or ready)."""
        return [b for b in self.buffers if b.state in (BufferState.IN_FLIGHT, BufferState.READY)]

    @property
    def live_bytes(self) -> int:
        """Bytes currently held by live buffers (prefetch-memory pressure)."""
        return sum(b.length for b in self.live_buffers)

    def find_covering(self, offset: int, nbytes: int) -> Optional[PrefetchBuffer]:
        """The first live buffer containing the requested range."""
        for buffer in self.buffers:
            if (
                buffer.state in (BufferState.IN_FLIGHT, BufferState.READY)
                and buffer.covers(offset, nbytes)
            ):
                return buffer
        return None

    def overlaps_range(self, offset: int, nbytes: int) -> bool:
        """True if any live buffer intersects the range (dedup check)."""
        end = offset + nbytes
        for buffer in self.live_buffers:
            if buffer.offset < end and offset < buffer.end:
                return True
        return False

    def issue(self, offset: int, length: int) -> PrefetchBuffer:
        """Allocate memory and register a new in-flight buffer.

        Raises :class:`OutOfMemoryError` if the node cannot hold it.
        """
        if length <= 0:
            raise ValueError("prefetch length must be positive")
        self.memory.allocate(length, self.alloc_class)
        buffer = PrefetchBuffer(self.env, offset, length)
        self.buffers.append(buffer)
        return buffer

    def consume(self, buffer: PrefetchBuffer, upto: Optional[int] = None) -> None:
        """Mark a READY buffer as used by a demand read.

        With ``upto`` strictly inside the buffer's range, only the head
        ``[buffer.offset, upto)`` is consumed: its memory is freed, the
        buffer shrinks from the left, and it stays READY to serve the
        next demand read -- how a coalesced (batch > 1) prefetch covers
        several future requests with one transfer.  ``upto=None`` (the
        default, and the only mode the golden-locked default
        configuration exercises) consumes the whole buffer as before.
        """
        if buffer.state is not BufferState.READY:
            raise RuntimeError(f"consuming {buffer!r} in state {buffer.state}")
        if upto is not None and upto < buffer.end:
            if upto <= buffer.offset:
                raise ValueError(f"partial consume to {upto} precedes {buffer!r}")
            # The consumed head's memory is released immediately even
            # under retain_consumed: the buffer is still live, and its
            # accounting must keep matching ``length`` for free_all.
            freed = upto - buffer.offset
            self.memory.free(freed, self.alloc_class)
            assert buffer.data is not None
            buffer.data = buffer.data.slice(freed, buffer.length - freed)
            buffer.offset = upto
            buffer.length -= freed
            return
        buffer.state = BufferState.CONSUMED
        buffer.consumed_at = self.env.now
        if not self.retain_consumed:
            self.memory.free(buffer.length, self.alloc_class)
            buffer.data = None

    def fail(self, buffer: PrefetchBuffer) -> None:
        """Mark an in-flight buffer as failed, releasing its memory.

        Waiters on ``buffer.complete`` are woken (with no data); the
        demand path falls back to a direct read.
        """
        if buffer.state is not BufferState.IN_FLIGHT:
            raise RuntimeError(f"failing {buffer!r} in state {buffer.state}")
        buffer.state = BufferState.FAILED
        self.memory.free(buffer.length, self.alloc_class)
        buffer.data = None
        if not buffer.complete.triggered:
            buffer.complete.succeed()

    def discard_before(self, offset: int) -> int:
        """Free READY buffers entirely behind *offset* (stale); returns count."""
        n = 0
        for buffer in self.buffers:
            if buffer.state is BufferState.READY and buffer.end <= offset:
                buffer.state = BufferState.DISCARDED
                self.memory.free(buffer.length, self.alloc_class)
                buffer.data = None
                n += 1
        return n

    def free_all(self) -> int:
        """Release every buffer still holding memory (file close).

        In-flight buffers are marked discarded; when their data lands the
        prefetcher drops it.  Returns the number of buffers freed.
        """
        n = 0
        for buffer in self.buffers:
            if buffer.state in (BufferState.IN_FLIGHT, BufferState.READY):
                buffer.state = BufferState.DISCARDED
                self.memory.free(buffer.length, self.alloc_class)
                buffer.data = None
                n += 1
            elif buffer.state is BufferState.CONSUMED and self.retain_consumed:
                self.memory.free(buffer.length, self.alloc_class)
                buffer.data = None
        self.buffers.clear()
        return n

    def can_issue(self, length: int) -> bool:
        return self.memory.can_allocate(length)

    def __repr__(self) -> str:
        live = len(self.live_buffers)
        return f"<PrefetchBufferList {live} live / {len(self.buffers)} total>"


__all__ = [
    "BufferState",
    "OutOfMemoryError",
    "PrefetchBuffer",
    "PrefetchBufferList",
]
