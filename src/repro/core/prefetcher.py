"""The prefetcher: serving demand reads and issuing prefetches.

Faithful to paper section 3:

- Prefetch requests "are issued as asynchronous requests by the user
  thread following any read request to a PFS file" -- i.e. the demand
  read is served first, then the next anticipated request is submitted
  through the ART machinery, and only then does the read call return.
  With no computation between reads, the prefetch gets no head start,
  which is exactly why the I/O-bound workload sees no benefit (Table 1).
- "The read request to the disk is itself performed by the ART using
  the Fast Path I/O technique"; our prefetch operation is a plain
  ``transfer_read`` tagged ``cause="prefetch"``.
- "The data that has been read is stored in a buffer along with ...
  the PFS file offset, the size of the data in bytes" -- landing the
  data costs a memcpy into the prefetch buffer, and a hit costs a
  second memcpy into the user's buffer.  Fast Path demand reads pay
  neither, which is the prefetching overhead the paper measures at
  small request sizes.
- "The file pointer is not changed in the process of prefetching."
- Buffers are freed at close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.policies import NoPrefetch, OneRequestAhead, PrefetchPolicy
from repro.core.prefetch_buffer import (
    BufferState,
    OutOfMemoryError,
    PrefetchBuffer,
    PrefetchBufferList,
)
from repro.core.stats import PrefetchStats
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import TraceContext
from repro.obs.monitor import Monitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.client import PFSFileHandle


class Prefetcher:
    """Per-handle prefetching engine.

    Create one per :class:`~repro.pfs.client.PFSFileHandle` and pass it
    to :meth:`PFSClient.open`.

    Parameters
    ----------
    policy:
        What to fetch ahead; defaults to the paper's one-request-ahead.
    retain_consumed:
        Keep consumed buffers' memory until close (the paper's literal
        buffer lifecycle; off by default, see prefetch_buffer docs).
    gc_stale:
        Free ready buffers the sequential pointer has moved past.
    """

    def __init__(
        self,
        policy: Optional[PrefetchPolicy] = None,
        retain_consumed: bool = False,
        gc_stale: bool = True,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.policy = policy or OneRequestAhead()
        self.retain_consumed = retain_consumed
        self.gc_stale = gc_stale
        self.monitor = monitor
        #: Online tuner this prefetcher is attached to (None = untuned;
        #: set by :meth:`repro.core.tuner.OnlineTuner.attach`).  The
        #: demand path consults it with one ``is not None`` check, so an
        #: untuned prefetcher runs exactly the pre-tuner code path.
        self.tuner = None
        self.stats = PrefetchStats()
        self._list: Optional[PrefetchBufferList] = None
        self._handle: Optional["PFSFileHandle"] = None
        #: Buffer -> demand arrival time, for overlap accounting.
        self._service_estimates: Dict[int, float] = {}

    # -- lifecycle ---------------------------------------------------------

    def on_open(self, handle: "PFSFileHandle") -> None:
        """Initialise the prefetch list ("When the file is opened newly
        by a process, the prefetch list gets initialized")."""
        if self._handle is not None:
            raise RuntimeError("a Prefetcher serves exactly one handle")
        self._handle = handle
        self._list = PrefetchBufferList(
            handle.env, handle.node.memory, retain_consumed=self.retain_consumed
        )
        telemetry = get_telemetry(self.monitor)
        label = {"node": str(handle.node.node_id), "rank": str(handle.rank)}
        blist = self._list
        telemetry.register_probe(
            "prefetch_buffer_bytes",
            lambda: float(blist.live_bytes),
            labels=label,
            help="Bytes held by in-flight + ready prefetch buffers",
        )
        telemetry.register_probe(
            "prefetch_buffers_live",
            lambda: float(len(blist.live_buffers)),
            labels=label,
            help="Prefetch buffers currently holding memory",
        )

    def on_close(self, handle: "PFSFileHandle") -> None:
        """Free all prefetch buffers (paper: freed at close)."""
        if self._list is not None:
            freed = self._list.free_all()
            self.stats.discarded += freed

    def on_crash(self, handle: "PFSFileHandle") -> None:
        """Drop all buffers after a node crash: the crashed node's
        memory is gone, so ready data is lost and in-flight prefetches
        land into discarded buffers (their replies are dropped)."""
        if self._list is not None:
            freed = self._list.free_all()
            self.stats.discarded += freed
            self._count("crash_discards")

    @property
    def buffer_list(self) -> PrefetchBufferList:
        if self._list is None:
            raise RuntimeError("prefetcher not attached to an open handle")
        return self._list

    @property
    def _batched(self) -> bool:
        """True when the policy coalesces adjacent ranges (batch > 1),
        enabling partial buffer consumption on the hit path."""
        return getattr(self.policy, "batch", 1) > 1

    def set_depth(self, depth: int) -> None:
        """Reconfigure the policy's pipeline depth (depth-aware policies
        only; raises TypeError for policies without the knob)."""
        setter = getattr(self.policy, "set_depth", None)
        if setter is None:
            raise TypeError(f"policy {self.policy!r} has no depth knob")
        setter(depth)

    # -- the demand path ----------------------------------------------------

    def serve_read(
        self, handle: "PFSFileHandle", offset: int, nbytes: int, ctx: Optional[TraceContext] = None
    ):
        """Generator: serve a demand read through the prefetch cache.

        Hit: copy from the ready buffer.  Partial hit: wait for the
        in-flight request, then copy.  Miss: normal Fast Path read.
        Afterwards, issue the next prefetch per policy and return.
        """
        tracer = handle.client.tracer
        blist = self.buffer_list
        if self.tuner is not None:
            self.tuner.before_read(self, handle, offset, nbytes)
        buffer = blist.find_covering(offset, nbytes)
        arrival = handle.env.now

        if buffer is None:
            self.stats.misses += 1
            self._count("misses")
            data = yield from handle.transfer_read(offset, nbytes, cause="demand", ctx=ctx)
        else:
            was_in_flight = buffer.state is BufferState.IN_FLIGHT
            if was_in_flight:
                # Partial hit: wait out the remainder of the prefetch.
                wait_span = tracer.begin(
                    "prefetch_wait",
                    ctx=ctx,
                    node_id=handle.node.node_id,
                    bytes=nbytes,
                )
                wait_start = handle.env.now
                yield buffer.complete
                self.stats.partial_wait_time += handle.env.now - wait_start
                tracer.end(wait_span)
            if buffer.state is not BufferState.READY:
                # The prefetch failed while we waited: fall back to a
                # normal demand read.
                self.stats.failed_fallbacks += 1
                self._count("failed_fallbacks")
                data = yield from handle.transfer_read(offset, nbytes, cause="demand", ctx=ctx)
            else:
                if was_in_flight:
                    self.stats.partial_hits += 1
                    self._count("partial_hits")
                else:
                    self.stats.hits += 1
                    self._count("hits")
                assert buffer.data is not None
                data = buffer.data.slice(offset - buffer.offset, nbytes)
                # The hit pays a prefetch-buffer -> user-buffer copy.
                copy_span = tracer.begin(
                    "prefetch_hit_copy",
                    ctx=ctx,
                    node_id=handle.node.node_id,
                    bytes=nbytes,
                    partial=was_in_flight,
                )
                yield from handle.node.memcpy(nbytes)
                tracer.end(copy_span)
                self._account_overlap(handle, buffer, arrival, nbytes)
                if buffer.end > offset + nbytes and self._batched:
                    # A coalesced (batch > 1) buffer spans several future
                    # requests: consume only the served head and keep the
                    # remainder READY for the next demand read.
                    blist.consume(buffer, upto=offset + nbytes)
                else:
                    blist.consume(buffer)
                self.stats.bytes_served += nbytes

        if self.gc_stale:
            self.stats.discarded += blist.discard_before(offset)

        # "A read prefetch request is issued from the client-side ... for
        # every read request that is issued by the user."
        yield from self._issue_prefetches(handle, offset, nbytes, ctx)
        return data

    # -- prefetch issue -------------------------------------------------------

    def _issue_prefetches(
        self, handle: "PFSFileHandle", offset: int, nbytes: int, ctx: Optional[TraceContext] = None
    ):
        tracer = handle.client.tracer
        blist = self.buffer_list
        for start, length in self.policy.plan(handle, offset, nbytes, self):
            if length <= 0:
                continue
            if blist.overlaps_range(start, length):
                self.stats.skipped_duplicate += 1
                continue
            try:
                buffer = blist.issue(start, length)
            except OutOfMemoryError:
                self.stats.skipped_oom += 1
                self._count("skipped_oom")
                continue
            # The prefetch_issue span covers the synchronous issue cost
            # paid inside the triggering read call (buffer allocation +
            # ART setup/post); the async transfer's spans parent under it,
            # which is what links prefetch-caused disk accesses back to
            # the user read that triggered them.
            issue_span = tracer.begin(
                "prefetch_issue",
                ctx=ctx,
                node_id=handle.node.node_id,
                offset=start,
                bytes=length,
            )
            issue_ctx = issue_span.ctx
            # Allocating the buffer costs compute-node CPU.
            yield from handle.node.busy(handle.node.params.buffer_alloc_overhead_s)
            self.stats.issued += 1
            self.stats.bytes_prefetched += length
            self._count("issued")

            def operation(buffer=buffer, start=start, length=length, issue_ctx=issue_ctx):
                faults = getattr(handle.client, "faults", None)
                max_retries = faults.plan.retry.prefetch_retries if faults is not None else 0
                attempts = 0
                while True:
                    try:
                        data = yield from handle.transfer_read(
                            start, length, cause="prefetch", ctx=issue_ctx
                        )
                        break
                    except Exception:
                        if (attempts < max_retries and buffer.state is BufferState.IN_FLIGHT):
                            # Transient fault: re-issue the same range into
                            # the same buffer.  Only `retried` moves --
                            # issued/bytes_prefetched already counted this
                            # prefetch, so totals stay consistent.
                            attempts += 1
                            self.stats.retried += 1
                            self._count("retried")
                            continue
                        # A failed prefetch must never fail the application:
                        # release the buffer; waiters fall back to a direct
                        # read.
                        self.stats.failed += 1
                        self._count("failed")
                        if buffer.state is BufferState.IN_FLIGHT:
                            blist.fail(buffer)
                        elif not buffer.complete.triggered:
                            buffer.complete.succeed()
                        return None
                if buffer.state is BufferState.DISCARDED:
                    # The file closed while we were in flight; drop it.
                    if not buffer.complete.triggered:
                        buffer.complete.succeed()
                    return None
                # "The prefetched data is copied into the prefetch buffer
                # present in the system": a Fast Path read cannot target a
                # buffer the user has not posted yet, so the reply is
                # staged and copied into the prefetch buffer.  (The third
                # copy -- prefetch buffer to user buffer -- is paid on
                # the hit.)
                land_span = tracer.begin(
                    "prefetch_land",
                    ctx=issue_ctx,
                    node_id=handle.node.node_id,
                    bytes=length,
                )
                yield from handle.node.landing_copy(length)
                tracer.end(land_span)
                if buffer.state is BufferState.DISCARDED:
                    # The file closed during the landing copy.
                    if not buffer.complete.triggered:
                        buffer.complete.succeed()
                    return None
                buffer.mark_ready(handle.env, data)
                if faults is not None:
                    # Audit the landed prefetch: invariant 7 checks these
                    # bytes against ground truth even if no demand read
                    # ever consumes the buffer.
                    faults.record_delivery(
                        handle.file.file_id,
                        start,
                        length,
                        data,
                        kind="prefetch",
                    )
                return None

            yield from handle.client.art.submit(operation, tag="prefetch", ctx=issue_ctx)
            tracer.end(issue_span)
        return None

    # -- accounting -------------------------------------------------------------

    def _account_overlap(
        self, handle: "PFSFileHandle", buffer: PrefetchBuffer, arrival: float, nbytes: int
    ) -> None:
        """How much of the prefetch's service time the demand never saw.

        Measured against the demand's *arrival*: a full hit hides the
        whole service time; a partial hit hides only the part that ran
        before the demand showed up and started waiting.

        No double counting at depth > 1: adjacent planned ranges are
        *separate* buffers, each consumed (and accounted) exactly once --
        a demand read spanning two buffers is a miss, because
        ``find_covering`` requires a single covering buffer.  The one
        multi-consumption case is a coalesced (batch > 1) buffer served
        piecewise via partial consumption; ``overlap_time`` is then
        prorated by the consumed share of the originally issued length so
        the summed contributions never exceed one service time, while
        each demand read still records its own overlap *fraction*.  Both
        invariants are regression-tested in tests/test_core_prefetch.py.
        """
        if buffer.ready_at is not None:
            service = buffer.ready_at - buffer.issued_at
        else:  # pragma: no cover - defensive; consume requires READY
            service = arrival - buffer.issued_at
        hidden = max(0.0, min(arrival - buffer.issued_at, service))
        if nbytes < buffer.issued_length:
            self.stats.overlap_time += hidden * (nbytes / buffer.issued_length)
        else:
            self.stats.overlap_time += hidden
        if service > 0:
            self.stats.overlap_fractions.append(min(1.0, hidden / service))

    def _count(self, what: str) -> None:
        if self.monitor is not None:
            self.monitor.counter(f"prefetch.{what}").add(1)

    def __repr__(self) -> str:
        return f"<Prefetcher policy={self.policy!r} {self.stats.summary()}>"


def make_prefetcher(
    enabled: bool = True,
    depth: int = 1,
    monitor: Optional[Monitor] = None,
) -> Prefetcher:
    """Convenience factory: the paper's prototype or a disabled stub."""
    policy = OneRequestAhead(depth=depth) if enabled else NoPrefetch()
    return Prefetcher(policy=policy, monitor=monitor)
