"""The paper's contribution: client-side prefetching for the PFS.

Paper section 3: after every user read, the client issues an
asynchronous request (through the standard ART machinery) for the block
it anticipates the same process will read next.  Prefetched data lands
in a per-file prefetch buffer list in compute-node memory; the file
pointer is untouched; buffers are freed when the file is closed.  A hit
costs a memory copy from the prefetch buffer into the user's buffer --
the overhead that makes prefetching a wash (or a small loss) when there
is no computation to overlap with.

- :mod:`repro.core.prefetch_buffer` -- buffer structures and the
  per-file buffer list.
- :mod:`repro.core.policies` -- what to prefetch: the paper's
  one-request-ahead policy plus deeper / strided / adaptive extensions.
- :mod:`repro.core.prefetcher` -- the prefetcher: hit / partial-hit /
  miss service and prefetch issue.
- :mod:`repro.core.tuner` -- online retuning of prefetch depth / buffer
  quota / request size at simulated-time intervals (zero events).
- :mod:`repro.core.stats` -- hit ratios, overlap, wasted prefetches.
"""

from repro.core.policies import (
    POLICY_NAMES,
    AdaptivePolicy,
    DepthKAhead,
    NoPrefetch,
    OneRequestAhead,
    PrefetchPolicy,
    StrideDetector,
    StridedPolicy,
    make_policy,
)
from repro.core.prefetch_buffer import BufferState, PrefetchBuffer, PrefetchBufferList
from repro.core.prefetcher import Prefetcher
from repro.core.stats import PrefetchStats
from repro.core.tuner import OnlineTuner, TunerConfig

__all__ = [
    "AdaptivePolicy",
    "BufferState",
    "DepthKAhead",
    "NoPrefetch",
    "OnlineTuner",
    "OneRequestAhead",
    "POLICY_NAMES",
    "PrefetchBuffer",
    "PrefetchBufferList",
    "PrefetchPolicy",
    "PrefetchStats",
    "Prefetcher",
    "StrideDetector",
    "StridedPolicy",
    "TunerConfig",
    "make_policy",
]
