"""Compatibility shim: prefetch statistics moved to :mod:`repro.obs.stats`.

:class:`~repro.obs.stats.PrefetchStats` now lives in the unified
observability subsystem (``repro.obs``).  This module re-exports it so
existing ``repro.core.stats`` imports keep working.
"""

from repro.obs.stats import PrefetchStats

__all__ = ["PrefetchStats"]
