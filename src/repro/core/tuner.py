"""Online prefetch-parameter tuning (à la IOPathTune).

The :class:`OnlineTuner` retunes each attached prefetcher's policy at
fixed simulated-time intervals: the pipeline **depth envelope**, the
prefetch **buffer quota**, and the prefetch **request size** (batching
of adjacent planned ranges).

Determinism contract
--------------------
The tuner schedules **zero events** and installs **no tick hooks**.
Evaluation is pull-based: it runs inside the demand-read path
(:meth:`before_read`, called by
:meth:`~repro.core.prefetcher.Prefetcher.serve_read`) the first time a
handle's demand stream crosses an interval boundary.  Each decision
therefore depends only on

- the simulated clock at a point *causally inside* that handle's own
  read call, and
- the observed prefetcher's **own** counters and buffer list,

both of which are bit-identical under either same-timestamp tie-break
order (the per-handle hit/partial/miss classification is part of the
golden report fingerprints).  A tick-hook design would *not* be
tie-safe: hooks fire after every event, so at a timestamp with several
events the first hook invocation sees order-dependent intermediate
state.  Reading fleet-global monitor counters from one handle's causal
point would be order-dependent for the same reason, which is why the
tuner deliberately stays per-prefetcher even though it reports through
the shared monitor.

With the tuner off (``MachineConfig(tuner=False)``, the default) none
of this code runs and fault-free fingerprints stay bit-identical to a
build without it -- locked by ``tests/test_tuner.py`` against the
bench3 goldens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.policies import AdaptivePolicy, DepthKAhead

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.prefetcher import Prefetcher
    from repro.obs.monitor import Monitor
    from repro.pfs.client import PFSFileHandle
    from repro.sim import Environment


@dataclass(frozen=True)
class TunerConfig:
    """Control-loop constants for :class:`OnlineTuner`."""

    #: Simulated seconds between evaluations of each prefetcher.
    interval_s: float = 0.05
    #: Depth-envelope bounds the tuner may move policies within.
    min_depth: int = 1
    max_depth: int = 8
    #: Useful-fraction thresholds (same semantics as AdaptivePolicy's).
    raise_threshold: float = 0.9
    lower_threshold: float = 0.25
    #: Buffer-quota bounds: the quota halves (>= floor) on memory
    #: pressure and doubles (<= ceiling) while the pipeline is useful.
    quota_floor_bytes: int = 256 * 1024
    quota_ceiling_bytes: int = 8 * 1024 * 1024
    #: Request-size knob bound: at most this many adjacent planned
    #: ranges coalesce into one prefetch request.
    max_batch: int = 4

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 1 <= self.min_depth <= self.max_depth:
            raise ValueError("need 1 <= min_depth <= max_depth")
        if not 0.0 <= self.lower_threshold <= self.raise_threshold <= 1.0:
            raise ValueError("need 0 <= lower_threshold <= raise_threshold <= 1")
        if not 0 < self.quota_floor_bytes <= self.quota_ceiling_bytes:
            raise ValueError("need 0 < quota_floor_bytes <= quota_ceiling_bytes")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


class _Channel:
    """Per-prefetcher tuner state: next deadline + counter snapshot."""

    __slots__ = ("next_eval", "snapshot")

    def __init__(self, next_eval: float) -> None:
        self.next_eval = next_eval
        self.snapshot = (0, 0, 0, 0)  # hits, partial_hits, misses, skipped_oom


class OnlineTuner:
    """Interval-driven controller over a machine's prefetchers.

    Attach prefetchers with :meth:`attach` (done by
    :meth:`repro.machine.Machine.build_prefetcher` when
    ``MachineConfig(tuner=True)``).  Decisions are appended to
    :attr:`decisions` -- ``{"t", "rank", "knob", "old", "new"}`` dicts in
    causal order -- and counted on the monitor as
    ``tuner.adjust.<knob>``.
    """

    def __init__(
        self,
        env: "Environment",
        config: Optional[TunerConfig] = None,
        monitor: Optional["Monitor"] = None,
    ) -> None:
        self.env = env
        self.config = config or TunerConfig()
        self.monitor = monitor
        #: Attach-ordered channels (dict preserves insertion order; the
        #: tuner never iterates it during a run, only per-key lookup).
        self._channels: Dict[int, _Channel] = {}
        self.decisions: List[dict] = []

    # -- wiring ----------------------------------------------------------

    def attach(self, prefetcher: "Prefetcher") -> None:
        """Put *prefetcher* under tuner control."""
        if prefetcher.tuner is not None and prefetcher.tuner is not self:
            raise RuntimeError("prefetcher is already attached to another tuner")
        prefetcher.tuner = self
        self._channels[id(prefetcher)] = _Channel(self.env.now + self.config.interval_s)

    # -- the control loop ------------------------------------------------

    def before_read(
        self, prefetcher: "Prefetcher", handle: "PFSFileHandle", offset: int, nbytes: int
    ) -> None:
        """Pull-based evaluation hook, called from the demand path."""
        chan = self._channels.get(id(prefetcher))
        if chan is None:
            return
        now = self.env.now
        if now < chan.next_eval:
            return
        # Catch up across idle gaps without evaluating once per missed
        # interval: one evaluation per crossing, deadline re-armed past
        # the current time.
        while chan.next_eval <= now:
            chan.next_eval += self.config.interval_s
        self._evaluate(prefetcher, handle, nbytes, chan)

    def _evaluate(
        self, prefetcher: "Prefetcher", handle: "PFSFileHandle", nbytes: int, chan: _Channel
    ) -> None:
        stats = prefetcher.stats
        current = (stats.hits, stats.partial_hits, stats.misses, stats.skipped_oom)
        dh = current[0] - chan.snapshot[0]
        dp = current[1] - chan.snapshot[1]
        dm = current[2] - chan.snapshot[2]
        doom = current[3] - chan.snapshot[3]
        chan.snapshot = current
        classified = dh + dp + dm
        if classified == 0:
            return
        useful = (dh + dp) / classified
        cfg = self.config
        rank = handle.rank
        policy = prefetcher.policy
        struggling = doom > 0 or useful <= cfg.lower_threshold
        thriving = doom == 0 and useful >= cfg.raise_threshold

        # -- depth envelope ------------------------------------------------
        if isinstance(policy, AdaptivePolicy):
            if struggling and policy.max_depth > max(1, cfg.min_depth):
                self._record(rank, "max_depth", policy.max_depth, policy.max_depth - 1)
                policy.set_max_depth(policy.max_depth - 1)
            elif thriving and dp > 0 and policy.max_depth < cfg.max_depth:
                self._record(rank, "max_depth", policy.max_depth, policy.max_depth + 1)
                policy.set_max_depth(policy.max_depth + 1)
        elif isinstance(policy, DepthKAhead):
            if struggling and policy.depth > cfg.min_depth:
                self._record(rank, "depth", policy.depth, policy.depth - 1)
                policy.set_depth(policy.depth - 1)
            elif thriving and dp > 0 and policy.depth < cfg.max_depth:
                self._record(rank, "depth", policy.depth, policy.depth + 1)
                policy.set_depth(policy.depth + 1)

        # -- buffer quota --------------------------------------------------
        quota = getattr(policy, "quota_bytes", None)
        setter = getattr(policy, "set_quota", None)
        if setter is not None:
            if doom > 0:
                base = quota if quota is not None else cfg.quota_ceiling_bytes
                new_quota = max(cfg.quota_floor_bytes, base // 2)
                if new_quota != quota:
                    self._record(rank, "quota_bytes", quota, new_quota)
                    setter(new_quota)
            elif thriving and quota is not None and quota < cfg.quota_ceiling_bytes:
                new_quota = min(cfg.quota_ceiling_bytes, quota * 2)
                self._record(rank, "quota_bytes", quota, new_quota)
                setter(new_quota)

        # -- request size (batching of adjacent ranges) --------------------
        batch = getattr(policy, "batch", None)
        set_batch = getattr(policy, "set_batch", None)
        if batch is not None and set_batch is not None:
            det = getattr(policy, "detector", None)
            # Adjacent planning only happens on contiguous sequential
            # streams (stride == request size); anywhere else a bigger
            # batch is a no-op at best, so fold it back to 1.
            sequential = det is not None and det.confident and det.stride == nbytes
            if (struggling or not sequential) and batch > 1:
                self._record(rank, "batch", batch, 1)
                set_batch(1)
            elif thriving and sequential and batch < cfg.max_batch:
                new_batch = min(cfg.max_batch, batch * 2)
                self._record(rank, "batch", batch, new_batch)
                set_batch(new_batch)

    # -- reporting -------------------------------------------------------

    def _record(self, rank: int, knob: str, old, new) -> None:
        self.decisions.append(
            {"t": self.env.now, "rank": rank, "knob": knob, "old": old, "new": new}
        )
        if self.monitor is not None:
            self.monitor.counter(f"tuner.adjust.{knob}").add(1)

    def summary(self) -> Dict[str, int]:
        """Decision counts per knob (deterministic ordering by knob name)."""
        counts: Dict[str, int] = {}
        for decision in self.decisions:
            counts[decision["knob"]] = counts.get(decision["knob"], 0) + 1
        return dict(sorted(counts.items()))

    def __repr__(self) -> str:
        return (
            f"<OnlineTuner interval={self.config.interval_s}s "
            f"channels={len(self._channels)} decisions={len(self.decisions)}>"
        )


__all__ = ["OnlineTuner", "TunerConfig"]
