"""Prefetch policies: deciding *what* to fetch ahead.

The paper's prototype is :class:`OneRequestAhead`: "The prototype
prefetches only one block of data it anticipates will be needed for the
future read request.  [...] The prefetch request is issued in
anticipation of another read request issued by the same user thread on
the same file."  The anticipated block is the same process's next
request under the current I/O mode -- computable without messages only
in the deterministic-offset modes (M_RECORD, M_ASYNC), which is why the
prototype lives in M_RECORD.

Extensions (the paper's future work, exercised by the policy bench and
property suites):

- :class:`DepthKAhead` -- a depth-k pipeline with buffer-pressure
  capping.  At ``depth=1`` with no quota and no detector it plans
  exactly the :class:`OneRequestAhead` ranges (both call the shared
  :func:`_arithmetic_ranges`, so the equivalence holds by construction
  and is locked by a Hypothesis property).
- :class:`StrideDetector` -- infers a fixed stride from a handle's
  demand-offset history, covering non-unit-stride M_ASYNC readers whose
  next offset the mode arithmetic cannot predict.
- :class:`AdaptivePolicy` -- a per-file depth controller driven by the
  hit/partial/miss rates in :class:`~repro.obs.stats.PrefetchStats` and
  by buffer occupancy.

All state lives on the policy objects and every decision is a pure
function of the handle's own demand stream and its own prefetcher's
counters, so policies never perturb same-timestamp tie-break
determinism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.prefetcher import Prefetcher
    from repro.pfs.client import PFSFileHandle

#: A planned prefetch: (pfs_offset, length).
PlannedRange = Tuple[int, int]

#: Policy names accepted by :func:`make_policy` (and by
#: :attr:`repro.config.MachineConfig.prefetch_policy`).
POLICY_NAMES = ("none", "one-ahead", "depth-k", "strided", "adaptive")


class PrefetchPolicy:
    """Decides which ranges to prefetch after a demand read."""

    name = "base"

    def plan(
        self,
        handle: "PFSFileHandle",
        offset: int,
        nbytes: int,
        prefetcher: "Prefetcher",
    ) -> List[PlannedRange]:
        """Ranges to prefetch after a demand read of [offset, offset+nbytes)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class NoPrefetch(PrefetchPolicy):
    """Prefetching disabled (the paper's baseline)."""

    name = "none"

    def plan(self, handle, offset, nbytes, prefetcher):
        return []


def _arithmetic_ranges(handle: "PFSFileHandle", nbytes: int, depth: int) -> List[PlannedRange]:
    """The mode-arithmetic prediction shared by the depth policies.

    The anticipated base is the handle's own next offset under the
    current I/O mode; successive pipeline slots advance by the mode's
    per-request stride (``nprocs * nbytes`` in M_RECORD, ``nbytes``
    otherwise).  Ranges are clamped at EOF; planning stops at the first
    empty slot.
    """
    if nbytes <= 0:
        return []
    base = handle.next_read_offset(nbytes)
    if base is None:
        # Mode without deterministic offsets: nothing to anticipate.
        return []
    from repro.pfs.modes import IOMode

    stride = handle.nprocs * nbytes if handle.iomode is IOMode.M_RECORD else nbytes
    plans: List[PlannedRange] = []
    size = handle.file.size_bytes
    for k in range(depth):
        start = base + k * stride
        length = max(0, min(nbytes, size - start))
        if length <= 0:
            break
        plans.append((start, length))
    return plans


class OneRequestAhead(PrefetchPolicy):
    """The paper's prototype: fetch the next anticipated request.

    Parameters
    ----------
    depth:
        How many future requests to cover (1 = the prototype).
    """

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth

    @property
    def name(self) -> str:  # type: ignore[override]
        return "one-ahead" if self.depth == 1 else f"{self.depth}-ahead"

    def plan(self, handle, offset, nbytes, prefetcher):
        return _arithmetic_ranges(handle, nbytes, self.depth)

    def __repr__(self) -> str:
        return f"<OneRequestAhead depth={self.depth}>"


class StrideDetector:
    """Infers a fixed access stride from a handle's demand offsets.

    The detector becomes *confident* once the same non-zero stride has
    repeated :attr:`min_confirmations` times; any deviation resets the
    confirmation count, so an irregular stream never sustains
    confidence.  Warm-up is therefore at most ``min_confirmations + 1``
    observations for a perfectly regular pattern (locked by a Hypothesis
    property in ``tests/test_policy_properties.py``).
    """

    def __init__(self, min_confirmations: int = 2) -> None:
        if min_confirmations < 1:
            raise ValueError("min_confirmations must be >= 1")
        self.min_confirmations = min_confirmations
        self._last_offset: Optional[int] = None
        self._stride: Optional[int] = None
        self._confirmations = 0
        #: Size of the most recent observed request (None before any).
        self.last_nbytes: Optional[int] = None

    @property
    def stride(self) -> Optional[int]:
        """The currently hypothesised stride (None before two samples)."""
        return self._stride

    @property
    def confirmations(self) -> int:
        return self._confirmations

    @property
    def confident(self) -> bool:
        """True once the stride has repeated enough to trust."""
        return self._stride is not None and self._confirmations >= self.min_confirmations

    def observe(self, offset: int, nbytes: Optional[int] = None) -> None:
        """Feed one demand offset (and optionally its request size)."""
        if nbytes is not None:
            self.last_nbytes = nbytes
        if self._last_offset is not None:
            stride = offset - self._last_offset
            if stride != 0 and stride == self._stride:
                self._confirmations += 1
            else:
                self._stride = stride if stride != 0 else None
                self._confirmations = 1
        self._last_offset = offset

    def predict(self, offset: int, k: int = 1) -> Optional[int]:
        """Predicted offset of the demand *k* requests after *offset*."""
        if not self.confident:
            return None
        assert self._stride is not None
        return offset + k * self._stride

    def reset(self) -> None:
        self._last_offset = None
        self._stride = None
        self._confirmations = 0
        self.last_nbytes = None

    def __repr__(self) -> str:
        return (
            f"<StrideDetector stride={self._stride} "
            f"confirmations={self._confirmations}/{self.min_confirmations}>"
        )


class StridedPolicy(PrefetchPolicy):
    """Detects a fixed stride from the demand stream and runs ahead of it.

    Useful for M_ASYNC readers walking a file with lseek in a regular
    pattern the mode arithmetic cannot predict.  A thin wrapper over
    :class:`StrideDetector` that prefetches only when confident.
    """

    name = "strided"

    def __init__(self, depth: int = 1, min_confirmations: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self.detector = StrideDetector(min_confirmations=min_confirmations)

    @property
    def min_confirmations(self) -> int:
        return self.detector.min_confirmations

    def observe(self, offset: int) -> None:
        self.detector.observe(offset)

    def plan(self, handle, offset, nbytes, prefetcher):
        self.detector.observe(offset, nbytes)
        if not self.detector.confident or nbytes <= 0:
            return []
        stride = self.detector.stride
        assert stride is not None
        plans: List[PlannedRange] = []
        size = handle.file.size_bytes
        for k in range(1, self.depth + 1):
            start = offset + k * stride
            if start < 0:
                break
            length = max(0, min(nbytes, size - start))
            if length <= 0:
                break
            plans.append((start, length))
        return plans


def _coalesce(ranges: List[PlannedRange], batch: int) -> List[PlannedRange]:
    """Merge runs of adjacent planned ranges into requests of up to
    *batch* slots each (the tuner's request-size knob)."""
    if batch <= 1:
        return ranges
    out: List[Tuple[int, int, int]] = []
    for start, length in ranges:
        if out and out[-1][0] + out[-1][1] == start and out[-1][2] < batch:
            s, ln, n = out.pop()
            out.append((s, ln + length, n + 1))
        else:
            out.append((start, length, 1))
    return [(s, ln) for s, ln, _ in out]


class DepthKAhead(PrefetchPolicy):
    """Depth-k prefetch pipeline with buffer-pressure capping.

    Plans up to *depth* anticipated requests.  Prediction uses the same
    per-mode arithmetic as :class:`OneRequestAhead` (at ``depth=1`` with
    no quota/detector/batch the plans are identical by construction),
    overridden by a confident :class:`StrideDetector` when one is
    attached -- the detector's stride equals the arithmetic stride on
    regular sequential/record streams, and covers lseek-strided M_ASYNC
    streams the arithmetic mispredicts.

    Buffer pressure: ranges overlapping an outstanding (live) prefetch
    buffer are filtered out of the plan (never re-requested), and
    planning stops once outstanding-plus-planned bytes would exceed
    *quota_bytes*.  Both caps are property-tested: planned ranges never
    overlap live buffers nor push total prefetch bytes past the quota.

    ``batch > 1`` coalesces adjacent planned ranges into fewer, larger
    requests (the online tuner's request-size knob).
    """

    def __init__(
        self,
        depth: int = 1,
        quota_bytes: Optional[int] = None,
        detector: Optional[StrideDetector] = None,
        batch: int = 1,
    ) -> None:
        self.depth = depth
        self.quota_bytes = quota_bytes
        self.detector = detector
        self.batch = batch
        self._validate()

    def _validate(self) -> None:
        if self.depth < 0:
            raise ValueError("depth must be >= 0")
        if self.quota_bytes is not None and self.quota_bytes <= 0:
            raise ValueError("quota_bytes must be positive (or None)")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"depth-{self.depth}"

    # -- tuner knobs -----------------------------------------------------

    def set_depth(self, depth: int) -> None:
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self.depth = depth

    def set_quota(self, quota_bytes: Optional[int]) -> None:
        if quota_bytes is not None and quota_bytes <= 0:
            raise ValueError("quota_bytes must be positive (or None)")
        self.quota_bytes = quota_bytes

    def set_batch(self, batch: int) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.batch = batch

    # -- planning --------------------------------------------------------

    def plan(self, handle, offset, nbytes, prefetcher):
        if self.detector is not None:
            self.detector.observe(offset, nbytes)
        if self.depth < 1 or nbytes <= 0:
            return []
        ranges = self._candidates(handle, offset, nbytes)
        ranges = _coalesce(ranges, self.batch)
        return self._cap(ranges, prefetcher)

    def _candidates(self, handle, offset, nbytes) -> List[PlannedRange]:
        det = self.detector
        if det is not None and det.confident:
            size = handle.file.size_bytes
            plans: List[PlannedRange] = []
            for k in range(1, self.depth + 1):
                start = det.predict(offset, k)
                if start is None or start < 0:
                    break
                length = max(0, min(nbytes, size - start))
                if length <= 0:
                    break
                plans.append((start, length))
            return plans
        return _arithmetic_ranges(handle, nbytes, self.depth)

    def _cap(self, ranges: List[PlannedRange], prefetcher) -> List[PlannedRange]:
        blist = getattr(prefetcher, "_list", None) if prefetcher is not None else None
        live = blist.live_bytes if blist is not None else 0
        out: List[PlannedRange] = []
        planned = 0
        for start, length in ranges:
            if blist is not None and blist.overlaps_range(start, length):
                # Already in flight or ready: the pipeline covers it.
                continue
            if self.quota_bytes is not None and live + planned + length > self.quota_bytes:
                break
            out.append((start, length))
            planned += length
        return out

    def __repr__(self) -> str:
        return (
            f"<DepthKAhead depth={self.depth} quota={self.quota_bytes} "
            f"batch={self.batch} detector={self.detector!r}>"
        )


class AdaptivePolicy(PrefetchPolicy):
    """Per-file adaptive depth controller.

    Wraps a :class:`DepthKAhead` pipeline and retunes its depth from the
    handle's own :class:`~repro.obs.stats.PrefetchStats`.  Every
    *window* classified demand reads (hit + partial + miss deltas since
    the last evaluation) the controller computes the useful fraction
    ``(hits + partials) / classified`` over the window and moves depth
    one step:

    - **down** (never below *min_depth*) when the window was mostly
      misses (useful <= *lower_threshold*) or any prefetch was dropped
      for memory pressure (``skipped_oom`` moved) -- so a forced-miss
      stream drives depth monotonically non-increasing, a property
      locked in ``tests/test_policy_properties.py``;
    - **up** (never above *max_depth*) when the window was almost all
      useful (useful >= *raise_threshold*) **and** partial hits showed
      the pipeline is too shallow (demand catching up to in-flight
      prefetches) **and** occupancy leaves room for a deeper pipeline.
      A window of pure full hits leaves depth alone: the pipeline
      already runs ahead of demand, and deeper would only spend memory
      and issue overhead.  Every depth reduction bumps
      ``stats.throttled``.
    """

    name = "adaptive"

    def __init__(
        self,
        min_depth: int = 1,
        max_depth: int = 4,
        initial_depth: int = 1,
        window: int = 8,
        raise_threshold: float = 0.9,
        lower_threshold: float = 0.25,
        quota_bytes: Optional[int] = None,
        detector: Optional[StrideDetector] = None,
        batch: int = 1,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 <= lower_threshold <= raise_threshold <= 1.0:
            raise ValueError("need 0 <= lower_threshold <= raise_threshold <= 1")
        if not 0 <= min_depth <= initial_depth <= max_depth:
            raise ValueError("need 0 <= min_depth <= initial_depth <= max_depth")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.min_depth = min_depth
        self.max_depth = max_depth
        self.window = window
        self.raise_threshold = raise_threshold
        self.lower_threshold = lower_threshold
        self.depth = initial_depth
        self.inner = DepthKAhead(
            depth=max(1, initial_depth),
            quota_bytes=quota_bytes,
            detector=detector,
            batch=batch,
        )
        #: (hits, partial_hits, misses, skipped_oom) at the last window edge.
        self._snapshot: Tuple[int, int, int, int] = (0, 0, 0, 0)

    # -- exposure of the inner pipeline's knobs --------------------------

    @property
    def detector(self) -> Optional[StrideDetector]:
        return self.inner.detector

    @property
    def quota_bytes(self) -> Optional[int]:
        return self.inner.quota_bytes

    @property
    def batch(self) -> int:
        return self.inner.batch

    def set_depth(self, depth: int) -> None:
        """Manual/tuner override: clamp into [min_depth, max_depth]."""
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self.depth = min(max(depth, self.min_depth), self.max_depth)
        if self.depth >= 1:
            self.inner.set_depth(self.depth)

    def set_max_depth(self, max_depth: int) -> None:
        """Tuner knob: move the depth envelope, clamping current depth."""
        if max_depth < max(1, self.min_depth):
            raise ValueError("max_depth must be >= max(1, min_depth)")
        self.max_depth = max_depth
        if self.depth > max_depth:
            self.depth = max_depth
            if self.depth >= 1:
                self.inner.set_depth(self.depth)

    def set_quota(self, quota_bytes: Optional[int]) -> None:
        self.inner.set_quota(quota_bytes)

    def set_batch(self, batch: int) -> None:
        self.inner.set_batch(batch)

    # -- planning --------------------------------------------------------

    def plan(self, handle, offset, nbytes, prefetcher):
        if prefetcher is not None:
            self._maybe_retune(handle, nbytes, prefetcher)
        if self.depth < 1:
            # Keep the detector warm while prefetching is paused so a
            # later probe starts from a confident prediction.
            if self.inner.detector is not None:
                self.inner.detector.observe(offset, nbytes)
            return []
        self.inner.set_depth(self.depth)
        return self.inner.plan(handle, offset, nbytes, prefetcher)

    def _maybe_retune(self, handle, nbytes, prefetcher) -> None:
        stats = prefetcher.stats
        current = (stats.hits, stats.partial_hits, stats.misses, stats.skipped_oom)
        dh = current[0] - self._snapshot[0]
        dp = current[1] - self._snapshot[1]
        dm = current[2] - self._snapshot[2]
        doom = current[3] - self._snapshot[3]
        classified = dh + dp + dm
        if classified < self.window:
            return
        self._snapshot = current
        useful = (dh + dp) / classified
        new = self.depth
        if doom > 0 or useful <= self.lower_threshold:
            new = max(self.min_depth, self.depth - 1)
        elif (
            useful >= self.raise_threshold
            and dp > 0
            and self._room_to_grow(nbytes, prefetcher)
        ):
            new = min(self.max_depth, self.depth + 1)
        if new < self.depth:
            stats.throttled += 1
        if new != self.depth:
            self.depth = new
            if new >= 1:
                self.inner.set_depth(new)

    def _room_to_grow(self, nbytes: int, prefetcher) -> bool:
        """Occupancy gate: does a deeper pipeline fit quota and memory?"""
        projected = (self.depth + 1) * nbytes
        quota = self.inner.quota_bytes
        if quota is not None and projected > quota:
            return False
        blist = getattr(prefetcher, "_list", None)
        if blist is not None and not blist.can_issue(nbytes):
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"<AdaptivePolicy depth={self.depth} "
            f"[{self.min_depth}, {self.max_depth}] window={self.window} "
            f"inner={self.inner!r}>"
        )


def make_policy(
    name: str = "one-ahead",
    depth: int = 1,
    quota_bytes: Optional[int] = None,
    stride_detect: bool = True,
    batch: int = 1,
    max_depth: Optional[int] = None,
) -> PrefetchPolicy:
    """Policy registry keyed by the :class:`~repro.config.MachineConfig`
    ``prefetch_policy`` name.

    ``make_policy("one-ahead", depth=1)`` builds exactly the paper's
    prototype -- the default configuration stays bit-identical to the
    seed (golden-locked).  *stride_detect* attaches a
    :class:`StrideDetector` to the depth-aware policies; *max_depth*
    bounds the adaptive controller (default ``max(4, depth)``).
    """
    if name == "none":
        return NoPrefetch()
    if name == "one-ahead":
        return OneRequestAhead(depth=max(1, depth))
    if name == "strided":
        return StridedPolicy(depth=max(1, depth))
    detector = StrideDetector() if stride_detect else None
    if name == "depth-k":
        return DepthKAhead(depth=depth, quota_bytes=quota_bytes, detector=detector, batch=batch)
    if name == "adaptive":
        top = max_depth if max_depth is not None else max(4, depth)
        return AdaptivePolicy(
            initial_depth=max(1, depth),
            max_depth=max(top, depth, 1),
            quota_bytes=quota_bytes,
            detector=detector,
            batch=batch,
        )
    raise ValueError(f"unknown prefetch policy {name!r}; known: {', '.join(POLICY_NAMES)}")
