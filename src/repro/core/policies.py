"""Prefetch policies: deciding *what* to fetch ahead.

The paper's prototype is :class:`OneRequestAhead`: "The prototype
prefetches only one block of data it anticipates will be needed for the
future read request.  [...] The prefetch request is issued in
anticipation of another read request issued by the same user thread on
the same file."  The anticipated block is the same process's next
request under the current I/O mode -- computable without messages only
in the deterministic-offset modes (M_RECORD, M_ASYNC), which is why the
prototype lives in M_RECORD.

Extensions (the paper's future work, exercised by the ablation
benches): deeper pipelines (*depth* > 1), stride detection for
non-unit-stride M_ASYNC readers, and an adaptive wrapper that stops
prefetching when the hit rate shows the pattern is unpredictable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.prefetcher import Prefetcher
    from repro.pfs.client import PFSFileHandle

#: A planned prefetch: (pfs_offset, length).
PlannedRange = Tuple[int, int]


class PrefetchPolicy:
    """Decides which ranges to prefetch after a demand read."""

    name = "base"

    def plan(
        self,
        handle: "PFSFileHandle",
        offset: int,
        nbytes: int,
        prefetcher: "Prefetcher",
    ) -> List[PlannedRange]:
        """Ranges to prefetch after a demand read of [offset, offset+nbytes)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class NoPrefetch(PrefetchPolicy):
    """Prefetching disabled (the paper's baseline)."""

    name = "none"

    def plan(self, handle, offset, nbytes, prefetcher):
        return []


class OneRequestAhead(PrefetchPolicy):
    """The paper's prototype: fetch the next anticipated request.

    Parameters
    ----------
    depth:
        How many future requests to cover (1 = the prototype).
    """

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth

    @property
    def name(self) -> str:  # type: ignore[override]
        return "one-ahead" if self.depth == 1 else f"{self.depth}-ahead"

    def plan(self, handle, offset, nbytes, prefetcher):
        if nbytes <= 0:
            return []
        base = handle.next_read_offset(nbytes)
        if base is None:
            # Mode without deterministic offsets: nothing to anticipate.
            return []
        from repro.pfs.modes import IOMode

        stride = handle.nprocs * nbytes if handle.iomode is IOMode.M_RECORD else nbytes
        plans: List[PlannedRange] = []
        size = handle.file.size_bytes
        for k in range(self.depth):
            start = base + k * stride
            length = max(0, min(nbytes, size - start))
            if length <= 0:
                break
            plans.append((start, length))
        return plans

    def __repr__(self) -> str:
        return f"<OneRequestAhead depth={self.depth}>"


class StridedPolicy(PrefetchPolicy):
    """Detects a fixed stride from the demand stream and runs ahead of it.

    Useful for M_ASYNC readers walking a file with lseek in a regular
    pattern the mode arithmetic cannot predict.
    """

    name = "strided"

    def __init__(self, depth: int = 1, min_confirmations: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if min_confirmations < 1:
            raise ValueError("min_confirmations must be >= 1")
        self.depth = depth
        self.min_confirmations = min_confirmations
        self._last_offset: Optional[int] = None
        self._stride: Optional[int] = None
        self._confirmations = 0

    def observe(self, offset: int) -> None:
        if self._last_offset is not None:
            stride = offset - self._last_offset
            if stride != 0 and stride == self._stride:
                self._confirmations += 1
            else:
                self._stride = stride if stride != 0 else None
                self._confirmations = 1
        self._last_offset = offset

    def plan(self, handle, offset, nbytes, prefetcher):
        self.observe(offset)
        if (self._stride is None or self._confirmations < self.min_confirmations or nbytes <= 0):
            return []
        plans: List[PlannedRange] = []
        size = handle.file.size_bytes
        for k in range(1, self.depth + 1):
            start = offset + k * self._stride
            if start < 0:
                break
            length = max(0, min(nbytes, size - start))
            if length <= 0:
                break
            plans.append((start, length))
        return plans


class AdaptivePolicy(PrefetchPolicy):
    """Wraps a policy, throttling when recent prefetches miss.

    After *window* consumed-or-discarded prefetches, if the useful
    fraction falls below *min_useful*, prefetching pauses for *backoff*
    demand reads before probing again.
    """

    name = "adaptive"

    def __init__(
        self,
        inner: Optional[PrefetchPolicy] = None,
        window: int = 8,
        min_useful: float = 0.5,
        backoff: int = 8,
    ) -> None:
        if not 0.0 <= min_useful <= 1.0:
            raise ValueError("min_useful must be within [0, 1]")
        if window < 1 or backoff < 1:
            raise ValueError("window and backoff must be >= 1")
        self.inner = inner or OneRequestAhead()
        self.window = window
        self.min_useful = min_useful
        self.backoff = backoff
        self._paused_for = 0

    def plan(self, handle, offset, nbytes, prefetcher):
        if self._paused_for > 0:
            self._paused_for -= 1
            return []
        stats = prefetcher.stats
        resolved = stats.hits + stats.partial_hits + stats.discarded
        if resolved >= self.window:
            useful = (stats.hits + stats.partial_hits) / resolved
            if useful < self.min_useful:
                self._paused_for = self.backoff
                stats.throttled += 1
                return []
        return self.inner.plan(handle, offset, nbytes, prefetcher)

    def __repr__(self) -> str:
        return f"<AdaptivePolicy inner={self.inner!r}>"
