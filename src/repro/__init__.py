"""repro: simulation-based reproduction of *Implementation and
Evaluation of Prefetching in the Intel Paragon Parallel File System*
(Arunachalam, Choudhary, Rullman; IPPS 1996).

Quickstart::

    from repro import (
        Machine, MachineConfig, PFSConfig, IOMode,
        CollectiveReadWorkload, Prefetcher, OneRequestAhead,
    )

    machine = Machine(MachineConfig(n_compute=8, n_io=8))
    mount = machine.mount("/pfs", PFSConfig(stripe_unit=64 * 1024))
    machine.create_file(mount, "data", 128 * 1024 * 1024)

    workload = CollectiveReadWorkload(
        machine, mount, "data",
        request_size=64 * 1024,
        compute_delay=0.05,
        iomode=IOMode.M_RECORD,
        prefetcher_factory=lambda rank: Prefetcher(OneRequestAhead()),
    )
    result = workload.run()
    print(result.report.collective_bandwidth_mbps)
"""

from repro.config import MachineConfig, PFSConfig
from repro.core import (
    AdaptivePolicy,
    DepthKAhead,
    NoPrefetch,
    OneRequestAhead,
    OnlineTuner,
    Prefetcher,
    PrefetchPolicy,
    PrefetchStats,
    StrideDetector,
    StridedPolicy,
    TunerConfig,
    make_policy,
)
from repro.machine import Machine
from repro.metrics import BandwidthReport, report_from_handles
from repro.pfs import IOMode, StripeAttributes
from repro.workloads import (
    CollectiveReadWorkload,
    SeparateFilesWorkload,
    WorkloadResult,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptivePolicy",
    "BandwidthReport",
    "CollectiveReadWorkload",
    "DepthKAhead",
    "IOMode",
    "Machine",
    "MachineConfig",
    "NoPrefetch",
    "OneRequestAhead",
    "OnlineTuner",
    "PFSConfig",
    "PrefetchPolicy",
    "PrefetchStats",
    "Prefetcher",
    "SeparateFilesWorkload",
    "StrideDetector",
    "StridedPolicy",
    "StripeAttributes",
    "TunerConfig",
    "WorkloadResult",
    "__version__",
    "make_policy",
]
