"""File-pointer token and synchronisation service.

The Paragon OS keeps shared-file-pointer state on a server; clients
round-trip to it whenever their I/O mode needs coordination:

- M_UNIX: the token is held for the *whole* operation (atomicity), so
  concurrent readers fully serialise.
- M_LOG: the token is held only to atomically advance the pointer; the
  data transfers themselves proceed concurrently.
- M_SYNC: every node must arrive; offsets are assigned in node-rank
  order and everyone is released together (a barrier).
- M_GLOBAL: the first arrival becomes the leader and advances the
  pointer once; followers learn the common offset.

All of these cost a request/reply across the mesh, which is exactly why
M_RECORD (no messages) is the fast, prefetchable mode.

Crash safety: the coordinator itself needs no crash-specific logic.
Every coordination request goes through the RPC layer's idempotent
``(source node, msg_id)`` request log, so a client that crashed with a
request in flight replays it *with the same msg_id* on restart -- the
log coalesces a still-running original or replays the recorded reply
without re-executing the handler, and the shared pointer advances at
most once per logical operation (see ``PFSFileHandle._recover_after_restart``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.paragonos.messages import RPCMessage
from repro.paragonos.rpc import RPCEndpoint
from repro.pfs.file import PFSFile
from repro.sim import Environment

#: CPU time the coordinator spends per coordination request.
COORDINATION_OVERHEAD_S = 0.001
#: Extra cost when the pointer token moves to a *different* node: the
#: holder's cached pointer state must be recalled and forwarded
#: (cache-coherence-style migration, the dominant cost of the shared-
#: pointer modes on the real machine).
TOKEN_MIGRATION_S = 0.003


@dataclass
class TokenAcquire(RPCMessage):
    file_id: int
    rank: int


@dataclass
class TokenGrant(RPCMessage):
    file_id: int
    offset: int


@dataclass
class TokenRelease(RPCMessage):
    file_id: int
    rank: int
    new_offset: int


@dataclass
class TokenReleased(RPCMessage):
    file_id: int


@dataclass
class SyncArrive(RPCMessage):
    file_id: int
    call_index: int
    rank: int
    nbytes: int


@dataclass
class SyncGo(RPCMessage):
    file_id: int
    call_index: int
    offset: int


@dataclass
class GlobalArrive(RPCMessage):
    file_id: int
    call_index: int
    rank: int
    nbytes: int


@dataclass
class GlobalGo(RPCMessage):
    file_id: int
    call_index: int
    offset: int
    leader: bool


@dataclass
class _TokenState:
    holder: Optional[int] = None
    last_holder: Optional[int] = None
    #: Queue of (rank, event) waiting for the token.
    waiters: List[tuple] = field(default_factory=list)


class CoordinatorService:
    """Pointer-token / barrier service bound to one node's RPC endpoint."""

    def __init__(self, env: Environment, endpoint: RPCEndpoint) -> None:
        self.env = env
        self.endpoint = endpoint
        self._files: Dict[int, PFSFile] = {}
        self._tokens: Dict[int, _TokenState] = {}
        endpoint.register(TokenAcquire, self._handle_acquire)
        endpoint.register(TokenRelease, self._handle_release)
        endpoint.register(SyncArrive, self._handle_sync)
        endpoint.register(GlobalArrive, self._handle_global)

    def register_file(self, pfs_file: PFSFile) -> None:
        self._files[pfs_file.file_id] = pfs_file
        self._tokens.setdefault(pfs_file.file_id, _TokenState())

    def unregister_file(self, pfs_file: PFSFile) -> None:
        self._files.pop(pfs_file.file_id, None)
        self._tokens.pop(pfs_file.file_id, None)

    def _file(self, file_id: int) -> PFSFile:
        try:
            return self._files[file_id]
        except KeyError:
            raise KeyError(f"file {file_id} not registered with coordinator") from None

    # -- token (M_UNIX / M_LOG) -------------------------------------------------

    def _handle_acquire(self, request: TokenAcquire):
        yield from self.endpoint.node.busy(COORDINATION_OVERHEAD_S)
        pfs_file = self._file(request.file_id)
        token = self._tokens[request.file_id]
        if token.holder is None:
            token.holder = request.rank
        else:
            waiter = self.env.event()
            token.waiters.append((request.rank, waiter))
            yield waiter
            # The releasing handler transferred ownership to us directly.
            assert token.holder == request.rank
        if token.last_holder is not None and token.last_holder != request.rank:
            # The pointer state migrates from the previous holder's node.
            yield self.env.timeout(TOKEN_MIGRATION_S)
        token.last_holder = request.rank
        return TokenGrant(file_id=request.file_id, offset=pfs_file.shared_offset)

    def _handle_release(self, request: TokenRelease):
        yield from self.endpoint.node.busy(COORDINATION_OVERHEAD_S)
        pfs_file = self._file(request.file_id)
        token = self._tokens[request.file_id]
        if token.holder != request.rank:
            raise RuntimeError(f"rank {request.rank} releasing token held by {token.holder}")
        pfs_file.shared_offset = request.new_offset
        if token.waiters:
            next_rank, waiter = token.waiters.pop(0)
            token.holder = next_rank
            waiter.succeed()
        else:
            token.holder = None
        return TokenReleased(file_id=request.file_id)

    # -- barrier (M_SYNC) ----------------------------------------------------------

    def _handle_sync(self, request: SyncArrive):
        yield from self.endpoint.node.busy(COORDINATION_OVERHEAD_S)
        pfs_file = self._file(request.file_id)
        call = pfs_file.collective(request.call_index)
        if request.rank in call.sizes:
            raise RuntimeError(
                f"rank {request.rank} arrived twice at M_SYNC call " f"{request.call_index}"
            )
        call.sizes[request.rank] = request.nbytes
        call.arrived += 1
        if call.complete is None:
            call.complete = self.env.event()
        if call.arrived == pfs_file.nprocs:
            # Everyone is here: assign node-rank-ordered offsets.
            call.base_offset = pfs_file.shared_offset
            total = sum(call.sizes.values())
            pfs_file.shared_offset += total
            call.complete.succeed()
            pfs_file.retire_collective(request.call_index)
        else:
            yield call.complete
        offset = call.base_offset + sum(
            size for rank, size in sorted(call.sizes.items()) if rank < request.rank
        )
        return SyncGo(file_id=request.file_id, call_index=request.call_index, offset=offset)

    # -- global (M_GLOBAL) --------------------------------------------------------------

    def _handle_global(self, request: GlobalArrive):
        yield from self.endpoint.node.busy(COORDINATION_OVERHEAD_S)
        pfs_file = self._file(request.file_id)
        call = pfs_file.collective(request.call_index)
        leader = call.arrived == 0
        call.arrived += 1
        if leader:
            call.base_offset = pfs_file.shared_offset
            pfs_file.shared_offset += request.nbytes
        if call.arrived == pfs_file.nprocs:
            pfs_file.retire_collective(request.call_index)
        return GlobalGo(
            file_id=request.file_id,
            call_index=request.call_index,
            offset=call.base_offset,
            leader=leader,
        )
