"""PFS I/O modes (paper Figure 1 and the Paragon OSF/1 User's Guide).

========== ====== ================= ============ =========================
Mode       Number File pointer      Ordering     Notes
========== ====== ================= ============ =========================
M_UNIX     0      shared            arrival      atomic: pointer held for
                                                 the whole operation
M_LOG      1      shared            arrival      pointer update atomic,
                                                 data transfer concurrent
M_SYNC     2      shared            node order   synchronised: all nodes
                                                 must call; sizes may vary
M_RECORD   3      shared (implicit) node order   fixed-size records; no
                                                 synchronisation needed
M_GLOBAL   4      shared            n/a          all nodes read the same
                                                 data; one logical I/O
M_ASYNC    5      unique            none         no coordination, no
                                                 atomicity guarantees
========== ====== ================= ============ =========================

The prefetching prototype (and the paper's measurements) use M_RECORD:
"it is well suited for the SPMD programming model, in which applications
performing an extensive amount of I/O usually distribute the data
equally among the I/O nodes for load-balancing and concurrency."
"""

from __future__ import annotations

import enum


class IOMode(enum.IntEnum):
    """PFS file sharing modes."""

    M_UNIX = 0
    M_LOG = 1
    M_SYNC = 2
    M_RECORD = 3
    M_GLOBAL = 4
    M_ASYNC = 5

    @property
    def shared_pointer(self) -> bool:
        """True if all nodes share one file pointer."""
        return self in (IOMode.M_UNIX, IOMode.M_LOG, IOMode.M_SYNC, IOMode.M_GLOBAL)

    @property
    def needs_token(self) -> bool:
        """True if a read must round-trip to the pointer-token service."""
        return self in (IOMode.M_UNIX, IOMode.M_LOG)

    @property
    def node_ordered(self) -> bool:
        """True if data lands in node-rank order."""
        return self in (IOMode.M_SYNC, IOMode.M_RECORD)

    @property
    def synchronised(self) -> bool:
        """True if every node must participate in every operation."""
        return self in (IOMode.M_SYNC, IOMode.M_GLOBAL)

    @property
    def atomic(self) -> bool:
        """True if the whole operation holds the shared pointer."""
        return self is IOMode.M_UNIX

    @property
    def deterministic_offsets(self) -> bool:
        """True if a node can compute its own offsets with no messages.

        This is the property that makes M_RECORD prefetchable: the client
        knows exactly where its *next* read will fall.
        """
        return self in (IOMode.M_RECORD, IOMode.M_ASYNC)
