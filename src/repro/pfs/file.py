"""PFS file metadata and shared state.

A :class:`PFSFile` is the system-wide view of one striped file: its
stripe attributes, logical size, the shared file pointer, and the
transient collective-operation state used by the synchronised modes.

Per-open, per-node state (individual pointers, read-call counters,
prefetch buffer lists) lives in :class:`repro.pfs.client.PFSFileHandle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.pfs.modes import IOMode
from repro.pfs.stripe import StripeAttributes

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.mount import PFSMount


@dataclass
class CollectiveCall:
    """Transient state of one in-progress collective operation."""

    call_index: int
    base_offset: int = 0
    #: rank -> request size, for M_SYNC offset assignment.
    sizes: Dict[int, int] = field(default_factory=dict)
    arrived: int = 0
    #: For M_GLOBAL: the leader's data, shared with followers.
    result: Optional[object] = None
    #: Event fired when the collective is fully resolved.
    complete: Optional[object] = None


class PFSFile:
    """System-wide metadata for one PFS file."""

    def __init__(
        self,
        name: str,
        mount: "PFSMount",
        attrs: StripeAttributes,
        size_bytes: int = 0,
        file_id: Optional[int] = None,
    ) -> None:
        # Ids are allocated by the mount's (machine-scoped) counter, so
        # placement decisions keyed on file_id (e.g. rotation) never
        # depend on how many files other machines in the same process
        # created -- a fresh machine always numbers its files 1, 2, ...
        self.file_id = next(mount._file_ids) if file_id is None else file_id
        self.name = name
        self.mount = mount
        self.attrs = attrs
        self.size_bytes = size_bytes
        #: The shared file pointer (modes with shared pointers).
        self.shared_offset = 0
        #: Current I/O mode; handles inherit it and may change it together.
        self.iomode = IOMode.M_UNIX
        #: Number of processes that opened the file (fixed at open time for
        #: the synchronised modes).
        self.nprocs = 1
        #: Open handle count (for close-time cleanup checks).
        self.open_handles = 0
        #: M_SYNC / M_GLOBAL collective bookkeeping, keyed by call index.
        self.collectives: Dict[int, CollectiveCall] = {}
        #: Monotonic counter of *completed* collective rounds.
        self.collective_rounds = 0

    def collective(self, call_index: int) -> CollectiveCall:
        call = self.collectives.get(call_index)
        if call is None:
            call = self.collectives[call_index] = CollectiveCall(call_index)
        return call

    def retire_collective(self, call_index: int) -> None:
        self.collectives.pop(call_index, None)
        self.collective_rounds = max(self.collective_rounds, call_index + 1)

    def __repr__(self) -> str:
        return (
            f"<PFSFile {self.name!r} id={self.file_id} size={self.size_bytes} "
            f"mode={self.iomode.name} su={self.attrs.stripe_unit} "
            f"sf={self.attrs.stripe_factor}>"
        )
