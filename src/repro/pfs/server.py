"""The PFS server running on each I/O node.

Serves read/write requests against the node's UFS, through one of two
paths:

- **Fast Path** (mount buffering disabled, the PFS default for large
  transfers): data moves directly between the disks and the reply
  message -- no buffer-cache copy.  Contiguous file-system blocks are
  coalesced into single disk requests.
- **Buffered**: blocks go through the I/O-node buffer cache; hits skip
  the disk entirely, but every byte pays a cache-to-message memcpy on
  the I/O node CPU.

Requests that are not aligned to file-system block boundaries move the
covering whole blocks from disk and pay a partial-block copy ("there is
a higher overhead involved in creating temporary buffers for the size
of the partial blocks and copying only the necessary data").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hardware.node import Node

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
from repro.paragonos.buffercache import BufferCache
from repro.paragonos.messages import (
    ControlReply,
    ControlRequest,
    ReadReply,
    ReadRequest,
    WriteReply,
    WriteRequest,
)
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import get_tracer
from repro.paragonos.rpc import RPCEndpoint
from repro.sim import Environment
from repro.obs.monitor import Monitor
from repro.ufs import UFS, concat_data


class PFSServer:
    """PFS request handlers bound to one I/O node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        endpoint: RPCEndpoint,
        ufs: UFS,
        cache: Optional[BufferCache] = None,
        readahead_blocks: int = 0,
        write_back: bool = False,
        coalesce: bool = True,
        monitor: Optional[Monitor] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        """*readahead_blocks* > 0 enables server-side readahead: after a
        buffered read, the server asynchronously pulls the next blocks of
        the stripe file into its cache (classic UFS readahead -- the
        I/O-node-side alternative to the paper's client-side prefetching;
        compared in the ablation benches).  Requires a cache.

        *write_back* switches buffered writes from write-through to
        write-back: the write returns once the data is in the cache; the
        disk write happens at flush time (sync daemon, explicit flush, or
        clean-block eviction pressure)."""
        if readahead_blocks < 0:
            raise ValueError("readahead_blocks must be non-negative")
        if write_back and cache is None:
            raise ValueError("write-back caching requires a cache")
        self.env = env
        self.node = node
        self.endpoint = endpoint
        self.ufs = ufs
        self.cache = cache
        self.readahead_blocks = readahead_blocks
        self.write_back = write_back
        #: Coalesce contiguous blocks into single disk requests on the
        #: Fast Path (off = one request per block; ablation handle).
        self.coalesce = coalesce
        self.monitor = monitor
        self.faults = faults
        self.tracer = get_tracer(monitor)
        #: Requests currently being handled (always-on; probe source).
        self._active_requests = 0
        telemetry = get_telemetry(monitor)
        label = {"node": str(node.node_id)}
        telemetry.register_probe(
            "pfs_server_active_requests",
            lambda: float(self._active_requests),
            labels=label,
            help="Read/write requests currently in service on this server",
        )
        self._read_hist = telemetry.histogram(
            "pfs_server_read_seconds",
            labels=label,
            help="Server-side handling time per read request",
        )
        if cache is not None:
            cache.writeback = self._writeback
        endpoint.register(ReadRequest, self._handle_read)
        endpoint.register(WriteRequest, self._handle_write)
        endpoint.register(ControlRequest, self._handle_control)

    def _writeback(self, key, data):
        """Generator: persist one dirty cached block to the UFS."""
        file_id, block = key
        yield from self.ufs.write_block(file_id, block, data)
        self._count_extra("writebacks")

    def _block_content(self, file_id: int, offset: int, nbytes: int):
        """Assemble content preferring cached (possibly dirty) blocks."""
        from repro.ufs.data import concat_data

        if self.cache is None:
            return self.ufs.content(file_id, offset, nbytes)
        bs = self.ufs.block_size
        pieces = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            block = pos // bs
            in_block = pos - block * bs
            take = min(bs - in_block, end - pos)
            cached = self.cache.peek((file_id, block))
            if cached is not None:
                pieces.append(cached.slice(in_block, take))
            else:
                pieces.append(self.ufs.content(file_id, pos, take))
            pos += take
        return concat_data(pieces)

    # -- read -------------------------------------------------------------

    def _handle_read(self, request: ReadRequest):
        span = self.tracer.begin(
            "server_io",
            ctx=request.ctx,
            node_id=self.node.node_id,
            op="read",
            bytes=request.nbytes,
            cause=request.cause,
        )
        if span.ctx is not None:
            request.ctx = span.ctx
        started_at = self.env.now
        self._active_requests += 1
        try:
            yield from self.node.busy(self.node.params.server_request_overhead_s)
            if self.faults is not None:
                stall = self.faults.decide("server_stall", f"node{self.node.node_id}")
                if stall is not None:
                    # The server thread wedges (page fault storm, driver
                    # hiccup) before touching storage; the client's RPC
                    # timeout covers it.
                    self._count_extra("stalls")
                    yield self.env.timeout(stall.duration_s)
            if request.fastpath or self.cache is None:
                data, cache_hit = (yield from self._read_fastpath(request)), False
            else:
                data, cache_hit = yield from self._read_buffered(request)
        finally:
            self._active_requests -= 1
        self._read_hist.observe(self.env.now - started_at)
        self.tracer.end(span, cache_hit=cache_hit)
        self._count("reads", request.nbytes, request.cause)
        return ReadReply(
            file_id=request.file_id,
            ufs_offset=request.ufs_offset,
            data=data,
            cache_hit=cache_hit,
        )

    def _read_fastpath(self, request: ReadRequest):
        """Direct disk -> reply transfer with block coalescing."""
        data = yield from self.ufs.read(
            request.file_id,
            request.ufs_offset,
            request.nbytes,
            coalesce=self.coalesce,
            ctx=request.ctx,
        )
        if self._unaligned(request.ufs_offset, request.nbytes):
            # Whole blocks came off the disk; copy out just the range.
            yield from self.node.memcpy(request.nbytes)
            self._count_extra("partial_block_reads")
        return data

    def _read_buffered(self, request: ReadRequest):
        """Per-block reads through the buffer cache."""
        assert self.cache is not None
        bs = self.ufs.block_size
        file_id = request.file_id
        first = request.ufs_offset // bs
        last = (request.ufs_offset + max(request.nbytes, 1) - 1) // bs
        all_hits = True
        for block in range(first, last + 1):
            key = (file_id, block)
            if key not in self.cache:
                all_hits = False

            def fetch(block=block, ctx=request.ctx):
                return (yield from self.ufs.read_block(file_id, block, ctx=ctx))

            yield from self.cache.read_block(key, fetch)
        if self.readahead_blocks > 0:
            self._start_readahead(file_id, last + 1)
        # Cache -> reply buffer copy for every byte delivered.
        yield from self.node.memcpy(request.nbytes)
        data = self._block_content(file_id, request.ufs_offset, request.nbytes)
        return data, all_hits

    def _start_readahead(self, file_id: int, first_block: int) -> None:
        """Asynchronously pull the next blocks of the file into the cache."""
        assert self.cache is not None
        inode = self.ufs.inode(file_id)
        blocks = []
        for block in range(first_block, first_block + self.readahead_blocks):
            if block >= inode.nblocks:
                break
            if (file_id, block) in self.cache:
                continue
            blocks.append(block)
        if not blocks:
            return

        def readahead():
            for block in blocks:

                def fetch(block=block):
                    return (yield from self.ufs.read_block(file_id, block))

                yield from self.cache.read_block((file_id, block), fetch)
                self._count_extra("readahead_blocks")
                if self.faults is not None:
                    # Audit the block as it lands in the cache; offsets
                    # are UFS-stripe-space on this I/O node (invariant 7
                    # checks them against this node's stripe file).
                    start = block * self.ufs.block_size
                    inode = self.ufs.inode(file_id)
                    length = min(self.ufs.block_size, inode.size_bytes - start)
                    self.faults.record_delivery(
                        file_id,
                        start,
                        length,
                        self._block_content(file_id, start, length),
                        kind="readahead",
                        io_node=self.node.node_id,
                    )

        self.env.process(readahead(), name=f"readahead-{self.node.node_id}-{file_id}")

    # -- write ------------------------------------------------------------------

    def _handle_write(self, request: WriteRequest):
        span = self.tracer.begin(
            "server_io",
            ctx=request.ctx,
            node_id=self.node.node_id,
            op="write",
            bytes=len(request.data),
        )
        if span.ctx is not None:
            request.ctx = span.ctx
        self._active_requests += 1
        try:
            yield from self._handle_write_body(request)
        finally:
            self._active_requests -= 1
        nbytes = len(request.data)
        self.tracer.end(span)
        self._count("writes", nbytes, "demand")
        return WriteReply(file_id=request.file_id, ufs_offset=request.ufs_offset, nbytes=nbytes)

    def _handle_write_body(self, request: WriteRequest):
        yield from self.node.busy(self.node.params.server_request_overhead_s)
        nbytes = len(request.data)
        if request.fastpath or self.cache is None:
            yield from self.ufs.write(
                request.file_id,
                request.ufs_offset,
                request.data,
                coalesce=self.coalesce,
                ctx=request.ctx,
            )
            if self._unaligned(request.ufs_offset, nbytes):
                yield from self.node.memcpy(nbytes)
                self._count_extra("partial_block_writes")
        elif self.write_back:
            yield from self._write_back_cached(request, nbytes)
        else:
            # Write-through: install in cache and persist to the UFS.
            yield from self.node.memcpy(nbytes)
            yield from self.ufs.write(
                request.file_id, request.ufs_offset, request.data, ctx=request.ctx
            )
            bs = self.ufs.block_size
            first = request.ufs_offset // bs
            last = (request.ufs_offset + max(nbytes, 1) - 1) // bs
            for block in range(first, last + 1):
                key = (request.file_id, block)
                if key in self.cache:
                    start = block * bs
                    inode = self.ufs.inode(request.file_id)
                    length = min(bs, inode.size_bytes - start)
                    self.cache.write_block(key, self.ufs.content(request.file_id, start, length))
                    # Content now persisted; the cached copy is clean.
                    self.cache._blocks[key].dirty = False

    def _write_back_cached(self, request: WriteRequest, nbytes: int):
        """Write-back: land the data in the cache only; no disk time.

        The write call pays the copy into the cache; partially covered
        blocks are merged against the freshest content (cache first).
        The dirty blocks reach the disk via flush, the sync daemon, or
        eviction pressure.
        """
        from repro.ufs.data import concat_data

        assert self.cache is not None
        yield from self.node.memcpy(nbytes)
        # Grow the stripe file's metadata now (block allocation is
        # bookkeeping); the data itself stays dirty in the cache.
        end = request.ufs_offset + nbytes
        inode = self.ufs.inode(request.file_id)
        if end > inode.size_bytes:
            self.ufs.extend(request.file_id, end)
            inode = self.ufs.inode(request.file_id)
        bs = self.ufs.block_size
        pos = request.ufs_offset
        while pos < end:
            block = pos // bs
            in_block = pos - block * bs
            take = min(bs - in_block, end - pos)
            block_start = block * bs
            block_len = min(bs, inode.size_bytes - block_start)
            old = self._block_content(request.file_id, block_start, block_len)
            chunk = request.data.slice(pos - request.ufs_offset, take)
            merged = concat_data(
                [
                    old.slice(0, in_block),
                    chunk,
                    old.slice(
                        in_block + take, block_len - in_block - take
                    ),
                ]
            )
            self.cache.write_block((request.file_id, block), merged)
            pos += take
        self._count_extra("write_back_writes")
        return None

    # -- control -------------------------------------------------------------------

    def _handle_control(self, request: ControlRequest):
        yield from self.node.busy(self.node.params.server_request_overhead_s)
        op = request.op
        try:
            if op == "create":
                size = int(request.arg or 0)
                self.ufs.create(request.file_id, size_bytes=size)
                result = size
            elif op == "extend":
                inode = self.ufs.extend(request.file_id, int(request.arg))
                result = inode.size_bytes
            elif op == "truncate":
                if self.cache is not None:
                    # Drop cached blocks past the new end.
                    bs = self.ufs.block_size
                    keep = -(-int(request.arg) // bs)
                    for key in [
                        k
                        for k in list(self.cache._blocks)
                        if k[0] == request.file_id and k[1] >= keep
                    ]:
                        self.cache.invalidate(key)
                inode = self.ufs.truncate(request.file_id, int(request.arg))
                result = inode.size_bytes
            elif op == "stat":
                result = self.ufs.inode(request.file_id).size_bytes
            elif op == "unlink":
                if self.cache is not None:
                    self.cache.invalidate_file(request.file_id)
                self.ufs.unlink(request.file_id)
                result = None
            elif op == "flush":
                if self.cache is not None:
                    yield from self.cache.flush()
                result = None
            else:
                return ControlReply(op=op, file_id=request.file_id, error=f"unknown op {op!r}")
        except Exception as exc:
            return ControlReply(op=op, file_id=request.file_id, error=str(exc))
        return ControlReply(op=op, file_id=request.file_id, result=result)

    # -- helpers ---------------------------------------------------------------------

    def _unaligned(self, offset: int, nbytes: int) -> bool:
        bs = self.ufs.block_size
        return offset % bs != 0 or nbytes % bs != 0

    def _count(self, kind: str, nbytes: int, cause: str) -> None:
        if self.monitor is not None:
            name = f"pfs_server.{self.node.node_id}"
            self.monitor.counter(f"{name}.{kind}").add(1)
            self.monitor.counter(f"{name}.bytes_{kind}").add(nbytes)
            self.monitor.counter(f"{name}.{kind}.{cause}").add(1)

    def _count_extra(self, what: str) -> None:
        if self.monitor is not None:
            self.monitor.counter(f"pfs_server.{self.node.node_id}.{what}").add(1)

    def __repr__(self) -> str:
        return f"<PFSServer node={self.node.node_id} cache={'on' if self.cache else 'off'}>"


# Re-export for client convenience.
__all__ = ["PFSServer", "concat_data"]
