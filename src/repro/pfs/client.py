"""The PFS client library on compute nodes.

Implements ``open`` / ``read`` / ``write`` / ``lseek`` / ``close`` /
``setiomode`` plus asynchronous reads (``iread``) over the RPC layer.
A read is declustered into per-I/O-node pieces (paper Figure 3) which
are fetched concurrently; mode-specific coordination (token, barrier,
leader election) happens first and is part of the measured read-call
time.

The prefetch prototype hooks in here: if a handle carries a prefetcher,
demand reads are served through it (hit / partial hit / miss) and every
read triggers the issue of the next prefetch, exactly as in paper
section 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.plan import NodeCrashed
from repro.hardware.mesh import Mesh, MeshMessage
from repro.hardware.node import Node
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import TraceContext, get_tracer
from repro.paragonos.art import AsyncRequestManager
from repro.paragonos.messages import (
    ControlRequest,
    ReadReply,
    ReadRequest,
    WriteRequest,
)
from repro.paragonos.rpc import RPCEndpoint
from repro.pfs.coordinator import (
    GlobalArrive,
    SyncArrive,
    TokenAcquire,
    TokenRelease,
)
from repro.pfs.file import PFSFile
from repro.pfs.modes import IOMode
from repro.pfs.mount import PFSMount
from repro.pfs.stripe import coalesce_pieces, decluster
from repro.sim import Environment
from repro.obs.monitor import Monitor
from repro.ufs.data import Data, LiteralData, concat_data

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.prefetcher import Prefetcher


class PFSClientError(Exception):
    """Client-level usage errors (closed handle, bad mode, ...)."""


class HandleStats:
    """Per-handle accounting used by the paper's bandwidth metric.

    The collective read bandwidth divides total bytes by the time a
    compute node spends *in read calls* (computation between calls is
    excluded), so we record each call's duration.
    """

    __slots__ = (
        "bytes_read",
        "bytes_written",
        "read_call_time",
        "read_calls",
        "write_call_time",
        "write_calls",
        "call_durations",
    )

    def __init__(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_call_time = 0.0
        self.read_calls = 0
        self.write_call_time = 0.0
        self.write_calls = 0
        self.call_durations: List[float] = []

    def record_read(self, nbytes: int, duration: float) -> None:
        self.bytes_read += nbytes
        self.read_call_time += duration
        self.read_calls += 1
        self.call_durations.append(duration)

    def record_write(self, nbytes: int, duration: float) -> None:
        self.bytes_written += nbytes
        self.write_call_time += duration
        self.write_calls += 1


class PFSFileHandle:
    """One process's open instance of a PFS file."""

    def __init__(
        self,
        client: "PFSClient",
        pfs_file: PFSFile,
        rank: int,
        nprocs: int,
        prefetcher: Optional["Prefetcher"] = None,
    ) -> None:
        self.client = client
        self.file = pfs_file
        self.rank = rank
        self.nprocs = nprocs
        self.prefetcher = prefetcher
        #: Private pointer (M_ASYNC; scratch for other modes).
        self.private_offset = 0
        #: Per-handle collective call counter (M_SYNC / M_GLOBAL).
        self.call_index = 0
        #: M_RECORD: PFS offset where the current record round begins.
        self.record_base = 0
        self.closed = False
        self.stats = HandleStats()
        #: Crash/restart bookkeeping (active only when the client's plan
        #: carries node_crash windows).  ``_recovered_epoch`` counts the
        #: crash onsets whose restart recovery has already run;
        #: ``_read_epoch`` snapshots the epoch at read entry so delivery
        #: can tell whether the node died mid-flight.
        self._recovered_epoch = 0
        self._read_epoch = 0
        #: Coordination RPCs sent but not yet acknowledged, keyed by
        #: msg_id.  On restart these are *replayed with the same msg_id*
        #: so the server's idempotent request log applies each side
        #: effect (pointer advance) at most once.
        self._inflight_coord: Dict[int, object] = {}
        #: ``(file_id, release_offset)`` while this handle holds the
        #: shared-pointer token; the release offset tracks whether the
        #: current record was delivered before the crash.
        self._held_token: Optional[tuple] = None
        #: Token-mode record delivered (and audited) but not yet
        #: returned to the application: a crash during the release
        #: handshake kills the read call *after* the pointer advanced,
        #: so the post-restart retry must hand back this completed
        #: result instead of re-reading -- re-reading would fetch the
        #: *next* record and silently drop this one, and re-fetching
        #: this one would double-deliver an audited record.
        self._delivered_unreturned: Optional[tuple] = None
        #: ``(call_index, offset)`` of an M_SYNC barrier grant whose
        #: demand read has not delivered yet.  The coordinator retires a
        #: collective call when its last rank arrives, so a crashed rank
        #: resumes from this grant rather than re-arriving (which would
        #: open a fresh generation nobody else attends).
        self._sync_grant: Optional[tuple] = None
        #: Write-side twin of ``_delivered_unreturned``: ``(offset,
        #: nbytes)`` of an M_UNIX write whose data landed and whose
        #: pointer release is in flight when the node dies.  Restart
        #: recovery settles the release (the pointer advances exactly
        #: once), so the retry must report success for *this* write
        #: instead of re-running it -- re-running would acquire the
        #: *advanced* pointer and duplicate the record at a new offset.
        self._applied_unreturned: Optional[tuple] = None
        #: M_LOG write-slot reservation: the mode releases the pointer
        #: *before* transferring, so a crash mid-transfer leaves a
        #: reserved-but-unwritten hole at ``(offset, nbytes)``.  The
        #: retry must write into this slot rather than acquire a fresh
        #: one, or the file keeps a permanent gap.
        self._write_slot: Optional[tuple] = None
        #: Crash epoch snapshotted at write() entry (twin of
        #: ``_read_epoch``).
        self._write_epoch = 0

    # -- conveniences ------------------------------------------------------

    @property
    def env(self) -> Environment:
        return self.client.env

    @property
    def node(self) -> Node:
        return self.client.node

    @property
    def iomode(self) -> IOMode:
        return self.file.iomode

    def _check_open(self) -> None:
        if self.closed:
            raise PFSClientError(f"operation on closed handle of {self.file.name!r}")

    # -- crash/restart machinery ----------------------------------------------

    def _crash_barrier(self):
        """Generator: fail fast if the node is down; run restart
        recovery once per crash epoch before admitting a new call.

        Called at read() entry.  If the node is inside a crash window
        the call raises :class:`NodeCrashed` immediately (a dead node
        cannot start a read).  If the node restarted since this handle
        last recovered, the shared-pointer coordination handshake is
        replayed first: in-flight coordination RPCs are re-sent with
        their original msg_ids (the coordinator's idempotent request
        log coalesces or replays them without double-advancing the
        pointer) and a still-held token is released at the correct
        offset.
        """
        client = self.client
        now = self.env.now
        if client.crashed_at(now):
            raise NodeCrashed(f"node{self.node.node_id} is down at t={now:.6f}")
        epoch = client.crash_epoch_at(now)
        if epoch > self._recovered_epoch:
            # Mark recovered *before* replaying: the replay RPCs route
            # through self._coordinate/read paths that would otherwise
            # re-enter recovery for the same epoch.
            self._recovered_epoch = epoch
            yield from self._recover_after_restart()

    def _recover_after_restart(self):
        """Generator: replay the coordination handshake after a restart.

        Replays every in-flight coordination RPC (sorted by msg_id, the
        order they were issued) so the server's request log settles each
        one exactly once, then releases the shared-pointer token if this
        handle still holds it.  Finally drops the prefetch buffer: a
        crashed node loses its memory, so buffered prefetched data must
        be re-fetched (and re-audited) after restart.
        """
        pending = sorted(self._inflight_coord.items())
        self._inflight_coord.clear()
        held = self._held_token
        for _msg_id, request in pending:
            # Same request object => same msg_id: the coordinator's
            # request log coalesces a still-in-flight original or
            # replays the recorded reply of a completed one.
            reply = yield from self._coordinate(request)
            if isinstance(request, TokenAcquire):
                held = (request.file_id, reply.offset)
            elif isinstance(request, TokenRelease):
                held = None
            elif isinstance(request, SyncArrive):
                # The barrier completed (or completes now) server-side;
                # keep the granted offset so the retried read consumes
                # it instead of re-arriving at a retired call.
                self._sync_grant = (request.call_index, reply.offset)
        if held is not None:
            # The node died while holding the token.  Release it at the
            # held offset: past the delivered record if _demand_read
            # completed, at the grant offset otherwise -- so a delivered
            # record advances the pointer exactly once and an
            # undelivered one not at all.
            file_id, release_offset = held
            self._held_token = held
            yield from self._coordinate(
                TokenRelease(file_id=file_id, rank=self.rank, new_offset=release_offset)
            )
        self._held_token = None
        if self.prefetcher is not None:
            self.prefetcher.on_crash(self)

    def _coordinate(self, request, ctx: Optional[TraceContext] = None):
        """Generator: coordination RPC, tracked for crash replay.

        Registers the request as in-flight before transmission and
        unregisters it when the reply lands; anything still registered
        at restart is replayed by :meth:`_recover_after_restart`.
        """
        if not self.client.crash_windows:
            return (yield from self.client._coordinate(request, ctx=ctx))
        self._inflight_coord[request.msg_id] = request
        reply = yield from self.client._coordinate(request, ctx=ctx)
        self._inflight_coord.pop(request.msg_id, None)
        return reply

    # -- offset prediction (used by the prefetcher) ---------------------------

    def next_read_offset(self, nbytes: int) -> Optional[int]:
        """Where this handle's next read of *nbytes* will fall, if knowable.

        Deterministic for M_RECORD (record arithmetic) and M_ASYNC
        (private pointer); None for modes whose offsets depend on other
        nodes' arrival order.
        """
        mode = self.iomode
        if mode is IOMode.M_RECORD:
            return self.record_base + self.rank * nbytes
        if mode is IOMode.M_ASYNC:
            return self.private_offset
        return None

    # -- read ---------------------------------------------------------------------

    def read(self, nbytes: int):
        """Generator: read *nbytes* under the file's I/O mode; returns Data.

        Short reads happen at end of file; a read entirely past EOF
        returns empty data.
        """
        self._check_open()
        if nbytes < 0:
            raise PFSClientError("negative read size")
        if self.client.crash_windows:
            yield from self._crash_barrier()
            self._read_epoch = self.client.crash_epoch_at(self.env.now)
        start = self.env.now
        # Root span of the trace: one request ID per user read call.
        span = self.client.tracer.begin(
            "client_call",
            node_id=self.node.node_id,
            op="read",
            rank=self.rank,
            nbytes=nbytes,
            mode=self.iomode.name,
        )
        ctx = span.ctx
        yield from self.node.busy(self.node.params.client_call_overhead_s)

        if self._delivered_unreturned is not None:
            # The previous call on this handle died after its record was
            # delivered and the shared pointer advanced; complete that
            # call's hand-off instead of consuming a new record.
            _offset, _n, data = self._delivered_unreturned
            self._delivered_unreturned = None
            duration = self.env.now - start
            self.client.tracer.end(span, bytes_returned=len(data), replayed=True)
            self.stats.record_read(len(data), duration)
            self.client._record_read(len(data), duration)
            return data

        mode = self.iomode
        try:
            if mode is IOMode.M_UNIX:
                data = yield from self._read_m_unix(nbytes, ctx)
            elif mode is IOMode.M_LOG:
                data = yield from self._read_m_log(nbytes, ctx)
            elif mode is IOMode.M_SYNC:
                data = yield from self._read_m_sync(nbytes, ctx)
            elif mode is IOMode.M_RECORD:
                data = yield from self._read_m_record(nbytes, ctx)
            elif mode is IOMode.M_GLOBAL:
                data = yield from self._read_m_global(nbytes, ctx)
            elif mode is IOMode.M_ASYNC:
                data = yield from self._read_m_async(nbytes, ctx)
            else:  # pragma: no cover - exhaustive over IOMode
                raise PFSClientError(f"unsupported mode {mode}")
        except NodeCrashed:
            # The node died mid-call: close the span (the call never
            # returns to the application) and let the workload's
            # restart logic retry after the crash window.
            self.client.tracer.end(span, crashed=True)
            raise

        duration = self.env.now - start
        self.client.tracer.end(span, bytes_returned=len(data))
        self.stats.record_read(len(data), duration)
        self.client._record_read(len(data), duration)
        return data

    def _clamp(self, offset: int, nbytes: int) -> int:
        return max(0, min(nbytes, self.file.size_bytes - offset))

    def _read_m_unix(self, nbytes: int, ctx: Optional[TraceContext] = None):
        # Atomic: hold the pointer token for the entire operation.
        grant = yield from self._coordinate(
            TokenAcquire(file_id=self.file.file_id, rank=self.rank), ctx=ctx
        )
        offset = grant.offset
        # Held-token tracking: if the node crashes while we hold the
        # token, restart recovery releases it at this offset -- bumped
        # past the record the moment delivery succeeds, so a delivered
        # record advances the pointer exactly once.
        self._held_token = (self.file.file_id, offset)
        n = self._clamp(offset, nbytes)
        data = yield from self._demand_read(offset, n, ctx)
        self._held_token = (self.file.file_id, offset + n)
        if self.client.crash_windows:
            self._delivered_unreturned = (offset, n, data)
        # Atomicity: completion bookkeeping happens inside the hold.
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        yield from self._coordinate(
            TokenRelease(file_id=self.file.file_id, rank=self.rank, new_offset=offset + n),
            ctx=ctx,
        )
        self._held_token = None
        self._delivered_unreturned = None
        return data

    def _read_m_log(self, nbytes: int, ctx: Optional[TraceContext] = None):
        # Arrival-order data placement: the pointer token is held until
        # the transfer lands (the Paragon implementation serialised
        # M_LOG operations almost as heavily as M_UNIX; only the final
        # client-side completion overlaps with the next grant).
        grant = yield from self._coordinate(
            TokenAcquire(file_id=self.file.file_id, rank=self.rank), ctx=ctx
        )
        offset = grant.offset
        self._held_token = (self.file.file_id, offset)
        n = self._clamp(offset, nbytes)
        data = yield from self._demand_read(offset, n, ctx)
        self._held_token = (self.file.file_id, offset + n)
        if self.client.crash_windows:
            self._delivered_unreturned = (offset, n, data)
        yield from self._coordinate(
            TokenRelease(file_id=self.file.file_id, rank=self.rank, new_offset=offset + n),
            ctx=ctx,
        )
        self._held_token = None
        self._delivered_unreturned = None
        return data

    def _read_m_sync(self, nbytes: int, ctx: Optional[TraceContext] = None):
        # A barrier arrival is consumed server-side the moment the
        # collective completes (the coordinator retires the call), so a
        # crashed rank must never re-arrive for a call it already joined
        # -- the fresh SyncArrive would open a new generation nobody
        # else attends and hang forever.  The grant therefore sticks to
        # the handle until the demand read delivers: a crash during the
        # read (or a reply lost to the crash window and re-obtained by
        # the restart replay) resumes at the granted offset instead of
        # re-coordinating.
        if self._sync_grant is not None and self._sync_grant[0] == self.call_index:
            offset = self._sync_grant[1]
        else:
            go = yield from self._coordinate(
                SyncArrive(
                    file_id=self.file.file_id,
                    call_index=self.call_index,
                    rank=self.rank,
                    nbytes=nbytes,
                ),
                ctx=ctx,
            )
            offset = go.offset
            self._sync_grant = (self.call_index, offset)
        n = self._clamp(offset, nbytes)
        data = yield from self._demand_read(offset, n, ctx)
        self._sync_grant = None
        self.call_index += 1
        return data

    def _read_m_record(self, nbytes: int, ctx: Optional[TraceContext] = None):
        offset = self.record_base + self.rank * nbytes
        self.record_base += self.nprocs * nbytes
        self.call_index += 1
        n = self._clamp(offset, nbytes)
        try:
            return (yield from self._demand_read(offset, n, ctx))
        except NodeCrashed:
            # The record was not delivered: roll back the record
            # arithmetic so the post-restart retry re-reads it.
            self.record_base -= self.nprocs * nbytes
            self.call_index -= 1
            raise

    def _read_m_global(self, nbytes: int, ctx: Optional[TraceContext] = None):
        call_index = self.call_index
        self.call_index += 1
        go = yield from self._coordinate(
            GlobalArrive(
                file_id=self.file.file_id,
                call_index=call_index,
                rank=self.rank,
                nbytes=nbytes,
            ),
            ctx=ctx,
        )
        n = self._clamp(go.offset, nbytes)
        state = self._global_state(call_index)
        if go.leader:
            data = yield from self._demand_read(go.offset, n, ctx)
            state["data"] = data
            state["leader_node"] = self.node
            state["event"].succeed()
        else:
            if not state["event"].triggered:
                yield state["event"]
            # The leader ships the block to this node across the mesh.
            leader_node = state["leader_node"]
            yield from self.client.mesh.send(
                MeshMessage(
                    src=leader_node.position,
                    dst=self.node.position,
                    size_bytes=n,
                    ctx=ctx,
                )
            )
            data = state["data"]
        state["served"] += 1
        if state["served"] == self.nprocs:
            self.file.__dict__.setdefault("_client_global", {}).pop(call_index, None)
        return data

    def _read_m_async(self, nbytes: int, ctx: Optional[TraceContext] = None):
        offset = self.private_offset
        n = self._clamp(offset, nbytes)
        # Advance before serving so the prefetcher's "next read" question
        # (next_read_offset) sees the post-read position.
        self.private_offset = offset + n
        try:
            return (yield from self._demand_read(offset, n, ctx))
        except NodeCrashed:
            self.private_offset = offset
            raise

    def _global_state(self, call_index: int) -> dict:
        registry = self.file.__dict__.setdefault("_client_global", {})
        state = registry.get(call_index)
        if state is None:
            state = registry[call_index] = {
                "event": self.env.event(),
                "data": None,
                "leader_node": None,
                "served": 0,
            }
        return state

    def _demand_read(self, offset: int, nbytes: int, ctx: Optional[TraceContext] = None):
        """Serve a demand read, through the prefetcher when present."""
        if nbytes == 0:
            return LiteralData(b"")
        if self.prefetcher is not None:
            data = yield from self.prefetcher.serve_read(self, offset, nbytes, ctx=ctx)
        else:
            data = yield from self.transfer_read(offset, nbytes, ctx=ctx)
        client = self.client
        if client.crash_windows:
            # The node must have stayed up for the whole flight for the
            # bytes to count as delivered: not currently down, and no
            # crash/restart cycle since read() entry.
            now = self.env.now
            if client.crashed_at(now) or client.crash_epoch_at(now) != self._read_epoch:
                raise NodeCrashed(
                    f"node{self.node.node_id} crashed before delivery of "
                    f"[{offset}, {offset + nbytes})"
                )
        if client.faults is not None:
            # Audit what the application actually received; Machine.verify
            # (invariant 7) diffs these digests against ground truth.
            client.faults.record_delivery(self.file.file_id, offset, nbytes, data, kind="demand")
        return data

    def transfer_read(
        self, offset: int, nbytes: int, cause: str = "demand", ctx: Optional[TraceContext] = None
    ):
        """Generator: declustered fetch of [offset, offset+nbytes) from the
        I/O nodes; no pointer coordination, no prefetching."""
        return (yield from self.client.transfer_read(self.file, offset, nbytes, cause, ctx=ctx))

    # -- write -----------------------------------------------------------------------

    def write(self, data: Data):
        """Generator: write *data* under the file's I/O mode."""
        self._check_open()
        if self.client.crash_windows:
            yield from self._crash_barrier()
            self._write_epoch = self.client.crash_epoch_at(self.env.now)
        start = self.env.now
        span = self.client.tracer.begin(
            "client_call",
            node_id=self.node.node_id,
            op="write",
            rank=self.rank,
            nbytes=len(data),
            mode=self.iomode.name,
        )
        ctx = span.ctx
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        nbytes = len(data)
        mode = self.iomode

        if self._applied_unreturned is not None:
            # The previous call on this handle died after its data landed
            # and restart recovery settled the pointer release; report
            # that call's success instead of writing a duplicate record.
            # (The workload's retry re-presents the same payload, so the
            # bytes on disk already match what this call promises.)
            _offset, applied_n = self._applied_unreturned
            self._applied_unreturned = None
            duration = self.env.now - start
            self.client.tracer.end(span, replayed=True)
            self.stats.record_write(applied_n, duration)
            return applied_n

        try:
            if mode is IOMode.M_UNIX:
                # Atomic: hold the pointer token across the transfer, with
                # the same held-token bookkeeping as the read path so
                # restart recovery releases it at the right offset --
                # past the record once the data landed, at the grant
                # offset otherwise.
                grant = yield from self._coordinate(
                    TokenAcquire(file_id=self.file.file_id, rank=self.rank), ctx=ctx
                )
                offset = grant.offset
                self._held_token = (self.file.file_id, offset)
                yield from self.client.transfer_write(self.file, offset, data, ctx=ctx)
                self._check_write_applied(offset, nbytes)
                self._held_token = (self.file.file_id, offset + nbytes)
                if self.client.crash_windows:
                    self._applied_unreturned = (offset, nbytes)
                yield from self._coordinate(
                    TokenRelease(
                        file_id=self.file.file_id,
                        rank=self.rank,
                        new_offset=offset + nbytes,
                    ),
                    ctx=ctx,
                )
                self._held_token = None
                self._applied_unreturned = None
            elif mode is IOMode.M_LOG:
                if self._write_slot is None:
                    grant = yield from self._coordinate(
                        TokenAcquire(file_id=self.file.file_id, rank=self.rank), ctx=ctx
                    )
                    offset = grant.offset
                    # Reserve the slot before releasing: crashes only
                    # surface at yields, so the reservation is atomic
                    # with the release RPC -- if the node dies awaiting
                    # the reply, recovery replays the release (the
                    # pointer advances exactly once) and the reservation
                    # tells the retry which hole to fill.
                    if self.client.crash_windows:
                        self._write_slot = (offset, nbytes)
                    self._held_token = (self.file.file_id, offset + nbytes)
                    yield from self._coordinate(
                        TokenRelease(
                            file_id=self.file.file_id,
                            rank=self.rank,
                            new_offset=offset + nbytes,
                        ),
                        ctx=ctx,
                    )
                    self._held_token = None
                else:
                    # Retry of a crashed call: the pointer already
                    # advanced past our reserved slot; write into it
                    # rather than acquiring a fresh (later) one.
                    offset, _slot_n = self._write_slot
                yield from self.client.transfer_write(self.file, offset, data, ctx=ctx)
                self._check_write_applied(offset, nbytes)
                self._write_slot = None
            elif mode is IOMode.M_SYNC:
                go = yield from self._coordinate(
                    SyncArrive(
                        file_id=self.file.file_id,
                        call_index=self.call_index,
                        rank=self.rank,
                        nbytes=nbytes,
                    ),
                    ctx=ctx,
                )
                self.call_index += 1
                yield from self.client.transfer_write(self.file, go.offset, data, ctx=ctx)
                self._check_write_applied(go.offset, nbytes)
            elif mode is IOMode.M_RECORD:
                offset = self.record_base + self.rank * nbytes
                self.record_base += self.nprocs * nbytes
                self.call_index += 1
                try:
                    yield from self.client.transfer_write(self.file, offset, data, ctx=ctx)
                    self._check_write_applied(offset, nbytes)
                except NodeCrashed:
                    # The record may be partially applied but the retry
                    # rewrites the same slot: roll back the record
                    # arithmetic so it recomputes the same offset.
                    self.record_base -= self.nprocs * nbytes
                    self.call_index -= 1
                    raise
            elif mode is IOMode.M_GLOBAL:
                call_index = self.call_index
                self.call_index += 1
                go = yield from self._coordinate(
                    GlobalArrive(
                        file_id=self.file.file_id,
                        call_index=call_index,
                        rank=self.rank,
                        nbytes=nbytes,
                    ),
                    ctx=ctx,
                )
                if go.leader:
                    yield from self.client.transfer_write(self.file, go.offset, data, ctx=ctx)
                    self._check_write_applied(go.offset, nbytes)
            elif mode is IOMode.M_ASYNC:
                # The private pointer advances only after the transfer
                # lands, so a crashed call needs no rollback: the retry
                # recomputes the same offset and overwrites any partial
                # application.
                offset = self.private_offset
                yield from self.client.transfer_write(self.file, offset, data, ctx=ctx)
                self._check_write_applied(offset, nbytes)
                self.private_offset = offset + nbytes
            else:  # pragma: no cover
                raise PFSClientError(f"unsupported mode {mode}")
        except NodeCrashed:
            self.client.tracer.end(span, crashed=True)
            raise

        # Writes may grow the file.
        duration = self.env.now - start
        self.client.tracer.end(span)
        self.stats.record_write(nbytes, duration)
        return nbytes

    def _check_write_applied(self, offset: int, nbytes: int) -> None:
        """Raise :class:`NodeCrashed` unless the node stayed up for the
        whole write flight (write-side twin of the delivery check in
        :meth:`_demand_read`): not currently down, and no crash/restart
        cycle since write() entry.  Partial application is fine -- the
        caller either retries the same offset or (M_UNIX) has not yet
        advanced the shared pointer.
        """
        client = self.client
        if not client.crash_windows:
            return
        now = self.env.now
        if client.crashed_at(now) or client.crash_epoch_at(now) != self._write_epoch:
            raise NodeCrashed(
                f"node{self.node.node_id} crashed before applying "
                f"[{offset}, {offset + nbytes})"
            )

    # -- async reads --------------------------------------------------------------------

    def iread(self, nbytes: int):
        """Generator: issue an asynchronous read via the ART machinery.

        Returns the :class:`~repro.paragonos.art.AsyncRequest`; wait on
        ``request.event`` for the data.
        """
        self._check_open()

        def operation():
            return (yield from self.read(nbytes))

        request = yield from self.client.art.submit(operation, tag="iread")
        return request

    def iwrite(self, data: Data):
        """Generator: issue an asynchronous write via the ART machinery.

        Returns the :class:`~repro.paragonos.art.AsyncRequest`; wait on
        ``request.event`` for the byte count.
        """
        self._check_open()

        def operation():
            return (yield from self.write(data))

        request = yield from self.client.art.submit(operation, tag="iwrite")
        return request

    # -- pointer management ----------------------------------------------------------------

    def lseek(self, offset: int, whence: str = "set"):
        """Generator: reposition the pointer.

        *whence* is "set" (absolute), "cur" (relative to the current
        position) or "end" (relative to end of file).

        - M_ASYNC: sets this handle's private pointer (no messages).
        - M_UNIX / M_LOG: sets the shared pointer (token round trip).
        - M_RECORD: sets the record base; all handles must do the same.
        - M_SYNC / M_GLOBAL: unsupported mid-stream repositioning.
        """
        self._check_open()
        mode = self.iomode
        if whence == "cur":
            if mode is IOMode.M_ASYNC:
                offset += self.private_offset
            elif mode is IOMode.M_RECORD:
                offset += self.record_base
            else:
                offset += self.file.shared_offset
        elif whence == "end":
            offset += self.file.size_bytes
        elif whence != "set":
            raise PFSClientError(f"unknown whence {whence!r}")
        if offset < 0:
            raise PFSClientError("negative seek offset")
        if mode is IOMode.M_ASYNC:
            self.private_offset = offset
        elif mode in (IOMode.M_UNIX, IOMode.M_LOG):
            yield from self._coordinate(TokenAcquire(file_id=self.file.file_id, rank=self.rank))
            self._held_token = (self.file.file_id, offset)
            yield from self._coordinate(
                TokenRelease(file_id=self.file.file_id, rank=self.rank, new_offset=offset)
            )
            self._held_token = None
        elif mode is IOMode.M_RECORD:
            self.record_base = offset
        else:
            raise PFSClientError(f"lseek is not supported in {mode.name}")
        return offset

    def setiomode(self, mode: IOMode):
        """Generator: change the file's I/O mode (collective operation).

        "The I/O mode can be set when a file is opened, and the
        application can also set/modify the I/O mode during the course
        of reading or writing the file."
        """
        self._check_open()
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        self.file.iomode = mode
        self.call_index = 0
        self.record_base = self.file.shared_offset
        return mode

    def close(self):
        """Generator: close the handle; frees all prefetch buffers."""
        if self.closed:
            return None
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        if self.prefetcher is not None:
            self.prefetcher.on_close(self)
        self.closed = True
        self.file.open_handles -= 1
        return None

    def __repr__(self) -> str:
        return (
            f"<PFSFileHandle {self.file.name!r} rank={self.rank}/{self.nprocs} "
            f"mode={self.iomode.name}{' closed' if self.closed else ''}>"
        )


class PFSClient:
    """PFS client library instance on one compute node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        endpoint: RPCEndpoint,
        mesh: Mesh,
        io_endpoints: Dict[int, RPCEndpoint],
        coordinator_endpoint: RPCEndpoint,
        art: Optional[AsyncRequestManager] = None,
        monitor: Optional[Monitor] = None,
        faults=None,
    ) -> None:
        self.env = env
        self.node = node
        self.endpoint = endpoint
        self.mesh = mesh
        self.io_endpoints = io_endpoints
        self.coordinator_endpoint = coordinator_endpoint
        self.art = art or AsyncRequestManager(env, node)
        self.monitor = monitor
        #: FaultInjector when the machine runs under a fault plan; used
        #: for the delivery audit (Machine.verify invariant 7) and the
        #: prefetcher's retry budget.
        self.faults = faults
        #: Sorted ``(crash_at, restart_at)`` windows from the fault
        #: plan's node_crash/node_restart specs (empty when this node
        #: never crashes).  Crashes are pure time predicates -- no
        #: events are ever scheduled for them -- so fault-free runs are
        #: bit-identical with or without the machinery.
        self.crash_windows: tuple = ()
        self.tracer = get_tracer(monitor)
        #: Always-on per-rank read progress (probe source).
        self.bytes_read_total = 0
        telemetry = get_telemetry(monitor)
        label = {"node": str(node.node_id)}
        telemetry.register_probe(
            "client_read_bytes_total",
            lambda: float(self.bytes_read_total),
            labels=label,
            help="Bytes returned to the application on this node (rank progress)",
            kind="counter",
        )
        self._read_call_hist = telemetry.histogram(
            "client_read_call_seconds",
            labels=label,
            help="User-visible duration of each read() call",
        )

    # -- crash/restart predicates ---------------------------------------------

    def crashed_at(self, now: float) -> bool:
        """True while *now* falls inside a crash window (half-open:
        the node is back up at exactly ``restart_at``)."""
        return any(c <= now < r for c, r in self.crash_windows)

    def crash_epoch_at(self, now: float) -> int:
        """Number of crash onsets at or before *now*.

        A delivery is suspect when the epoch changed between read entry
        and completion -- the node died (and restarted) mid-flight.
        """
        return sum(1 for c, _r in self.crash_windows if c <= now)

    def wait_restarted(self):
        """Generator: block until the current crash window (if any)
        ends.  No-op when the node is up."""
        for c, r in self.crash_windows:
            if c <= self.env.now < r:
                yield self.env.timeout(r - self.env.now)
                return

    # -- namespace ------------------------------------------------------------

    def open(
        self,
        mount: PFSMount,
        name: str,
        iomode: IOMode,
        rank: int = 0,
        nprocs: int = 1,
        prefetcher: Optional["Prefetcher"] = None,
    ):
        """Generator: open *name* on *mount*, returning a handle.

        Every participating process opens with its *rank* out of
        *nprocs*; the synchronised modes rely on these being consistent.
        """
        if not 0 <= rank < nprocs:
            raise PFSClientError(f"rank {rank} outside 0..{nprocs - 1}")
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        pfs_file = mount.lookup(name)
        pfs_file.iomode = iomode
        pfs_file.nprocs = nprocs
        pfs_file.open_handles += 1
        handle = PFSFileHandle(self, pfs_file, rank, nprocs, prefetcher=prefetcher)
        if prefetcher is not None:
            prefetcher.on_open(handle)
        return handle

    # -- transfers --------------------------------------------------------------

    def transfer_read(
        self,
        pfs_file: PFSFile,
        offset: int,
        nbytes: int,
        cause: str,
        ctx: Optional[TraceContext] = None,
    ):
        """Generator: declustered read returning assembled Data.

        Pieces contiguous in one I/O node's stripe file are coalesced
        into a single request; the per-node fetches run concurrently.
        """
        if nbytes == 0:
            return LiteralData(b"")
        requests = coalesce_pieces(decluster(pfs_file.attrs, offset, nbytes))
        fastpath = pfs_file.mount.fastpath

        def fetch(creq):
            def gen():
                # One stripe_piece span per coalesced per-I/O-node request;
                # concurrent pieces are concurrent child spans.
                piece_span = self.tracer.begin(
                    "stripe_piece",
                    ctx=ctx,
                    node_id=self.node.node_id,
                    io_node=creq.io_node,
                    bytes=creq.length,
                    cause=cause,
                )
                request = ReadRequest(
                    file_id=pfs_file.file_id,
                    ufs_offset=creq.ufs_offset,
                    nbytes=creq.length,
                    fastpath=fastpath,
                    cause=cause,
                )
                if piece_span.ctx is not None:
                    request.ctx = piece_span.ctx
                try:
                    reply = yield from self.endpoint.call(self._io_endpoint(creq.io_node), request)
                    # Land the reply into the destination buffer through
                    # the message co-processor.  This per-call data path
                    # (a few MB/s) is what bounds single-request latency
                    # on the real machine (paper Table 2's 0.4s for
                    # 1024KB).
                    yield from self.node.receive(creq.length)
                except NodeCrashed:
                    # A spawned piece process must not die with an
                    # unhandled exception (the kernel treats un-waited
                    # failed events as bugs); return a sentinel and let
                    # the gathering parent raise once.
                    self.tracer.end(piece_span, crashed=True)
                    return None
                self.tracer.end(piece_span)
                return reply

            return gen

        if len(requests) == 1:
            replies = [(yield from fetch(requests[0])())]
        else:
            procs = [
                self.env.process(fetch(creq)(), name=f"read-piece-{i}")
                for i, creq in enumerate(requests)
            ]
            condition = yield self.env.all_of(procs)
            replies = [condition[p] for p in procs]
        if any(reply is None for reply in replies):
            raise NodeCrashed(f"node{self.node.node_id} crashed during declustered read")

        # Reassemble in PFS offset order from the per-node replies.
        located: List[tuple] = []
        for creq, reply in zip(requests, replies):
            assert isinstance(reply, ReadReply)
            for piece in creq.pieces:
                chunk = reply.data.slice(piece.ufs_offset - creq.ufs_offset, piece.length)
                located.append((piece.pfs_offset, chunk))
        located.sort(key=lambda item: item[0])
        data = concat_data([chunk for _pos, chunk in located])
        if self.monitor is not None:
            self.monitor.counter(f"pfs_client.{cause}_reads").add(1)
            self.monitor.counter(f"pfs_client.{cause}_bytes").add(len(data))
        return data

    def transfer_write(
        self, pfs_file: PFSFile, offset: int, data: Data, ctx: Optional[TraceContext] = None
    ):
        """Generator: declustered write of *data* at *offset*."""
        nbytes = len(data)
        if nbytes == 0:
            return 0
        requests = coalesce_pieces(decluster(pfs_file.attrs, offset, nbytes))
        fastpath = pfs_file.mount.fastpath

        def put(creq):
            def gen():
                piece_span = self.tracer.begin(
                    "stripe_piece",
                    ctx=ctx,
                    node_id=self.node.node_id,
                    io_node=creq.io_node,
                    bytes=creq.length,
                    cause="write",
                )
                # Gather the UFS-contiguous run from the PFS-ordered data.
                chunk = concat_data(
                    [data.slice(piece.pfs_offset - offset, piece.length) for piece in creq.pieces]
                )
                request = WriteRequest(
                    file_id=pfs_file.file_id,
                    ufs_offset=creq.ufs_offset,
                    data=chunk,
                    fastpath=fastpath,
                )
                if piece_span.ctx is not None:
                    request.ctx = piece_span.ctx
                try:
                    yield from self.endpoint.call(self._io_endpoint(creq.io_node), request)
                except NodeCrashed:
                    # As on the read path: a spawned piece process must
                    # not die with an unhandled exception; return a
                    # sentinel and let the gathering parent raise once.
                    self.tracer.end(piece_span, crashed=True)
                    return False
                self.tracer.end(piece_span)
                return True

            return gen

        if len(requests) == 1:
            ok = [(yield from put(requests[0])())]
        else:
            procs = [
                self.env.process(put(creq)(), name=f"write-piece-{i}")
                for i, creq in enumerate(requests)
            ]
            condition = yield self.env.all_of(procs)
            ok = [condition[p] for p in procs]
        if not all(ok):
            raise NodeCrashed(f"node{self.node.node_id} crashed during declustered write")
        if offset + nbytes > pfs_file.size_bytes:
            pfs_file.size_bytes = offset + nbytes
        return nbytes

    # -- metadata operations -----------------------------------------------------

    def stat(self, mount: PFSMount, name: str):
        """Generator: return the file's size, verified against the
        stripe files on the I/O nodes."""
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        pfs_file = mount.lookup(name)
        total = 0
        for io_node in pfs_file.attrs.stripe_group:
            reply = yield from self._control(
                io_node, ControlRequest(op="stat", file_id=pfs_file.file_id)
            )
            if reply.error:
                raise PFSClientError(f"stat failed on node {io_node}: {reply.error}")
            total += reply.result
        # Sparse files may hold fewer stripe bytes than the logical size,
        # but never more.
        if total > pfs_file.size_bytes:
            raise PFSClientError(
                f"stripe files hold {total} bytes but metadata says " f"{pfs_file.size_bytes}"
            )
        return pfs_file.size_bytes

    def unlink(self, mount: PFSMount, name: str):
        """Generator: remove a PFS file and its stripe files."""
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        pfs_file = mount.lookup(name)
        if pfs_file.open_handles > 0:
            raise PFSClientError(f"{name!r} still has open handles")
        for io_node in pfs_file.attrs.stripe_group:
            reply = yield from self._control(
                io_node, ControlRequest(op="unlink", file_id=pfs_file.file_id)
            )
            if reply.error:
                raise PFSClientError(f"unlink failed on node {io_node}: {reply.error}")
        mount.remove(name)
        return None

    def truncate(self, mount: PFSMount, name: str, new_size: int):
        """Generator: set the file's logical size to *new_size*,
        resizing every stripe file accordingly."""
        if new_size < 0:
            raise PFSClientError("negative truncate size")
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        pfs_file = mount.lookup(name)
        from repro.pfs.stripe import ufs_file_size

        for group_index, io_node in enumerate(pfs_file.attrs.stripe_group):
            target = ufs_file_size(pfs_file.attrs, new_size, group_index)
            reply = yield from self._control(
                io_node,
                ControlRequest(op="truncate", file_id=pfs_file.file_id, arg=target),
            )
            if reply.error:
                raise PFSClientError(f"truncate failed on node {io_node}: {reply.error}")
        pfs_file.size_bytes = new_size
        if pfs_file.shared_offset > new_size:
            pfs_file.shared_offset = new_size
        return new_size

    def flush(self, mount: PFSMount, name: str):
        """Generator: flush dirty cached blocks of the file on every
        I/O node in its stripe group."""
        yield from self.node.busy(self.node.params.client_call_overhead_s)
        pfs_file = mount.lookup(name)
        for io_node in pfs_file.attrs.stripe_group:
            reply = yield from self._control(
                io_node, ControlRequest(op="flush", file_id=pfs_file.file_id)
            )
            if reply.error:
                raise PFSClientError(f"flush failed on node {io_node}: {reply.error}")
        return None

    # -- internals ----------------------------------------------------------------

    def _io_endpoint(self, io_node: int) -> RPCEndpoint:
        try:
            return self.io_endpoints[io_node]
        except KeyError:
            raise PFSClientError(f"no PFS server on I/O node {io_node}") from None

    def _coordinate(self, request, ctx: Optional[TraceContext] = None):
        """Generator: RPC to the coordination service."""
        span = self.tracer.begin(
            "coordinate",
            ctx=ctx,
            node_id=self.node.node_id,
            msg=type(request).__name__,
        )
        if span.ctx is not None:
            request.ctx = span.ctx
        reply = yield from self.endpoint.call(self.coordinator_endpoint, request)
        self.tracer.end(span)
        return reply

    def _control(self, io_node: int, request: ControlRequest):
        """Generator: metadata RPC to one I/O node."""
        return (yield from self.endpoint.call(self._io_endpoint(io_node), request))

    def _record_read(self, nbytes: int, duration: float) -> None:
        self.bytes_read_total += nbytes
        self._read_call_hist.observe(duration)
        if self.monitor is not None:
            self.monitor.series(f"pfs_client.{self.node.node_id}.read_call").record(duration)

    def __repr__(self) -> str:
        return f"<PFSClient node={self.node.node_id}>"
