"""Stripe attributes and declustering (paper Figure 3).

A PFS file is split into *stripe units* of ``stripe_unit`` bytes dealt
round-robin across the ``stripe_group`` of I/O nodes: unit *u* lives on
group member ``u % g`` at position ``(u // g) * stripe_unit`` within
that member's UFS stripe file.

"If the request size sz is larger than the stripe unit size su, then
the first of the sz/su requests go to the first I/O node and the second
of the sz/su requests to the second I/O node and so on."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class StripeAttributes:
    """How a PFS file is laid out across I/O nodes.

    Parameters
    ----------
    stripe_unit:
        Unit of data interleaving in bytes (default 64KB, the paper's
        file-system block size).
    stripe_group:
        Indices of the I/O nodes the file is interleaved across.  The
        paper's "stripe factor" is ``len(stripe_group)``.
    rotation:
        Which group member holds the file's *first* stripe unit.  The
        PFS rotates this per file so a population of files (e.g. one
        per compute node) spreads its load instead of all starting on
        the same I/O node.
    """

    stripe_unit: int = 64 * 1024
    stripe_group: Tuple[int, ...] = field(default_factory=tuple)
    rotation: int = 0

    def __post_init__(self) -> None:
        if self.stripe_unit <= 0:
            raise ValueError("stripe unit must be positive")
        if not self.stripe_group:
            raise ValueError("stripe group must name at least one I/O node")
        if len(set(self.stripe_group)) != len(self.stripe_group):
            raise ValueError("stripe group members must be distinct")
        if not 0 <= self.rotation < len(self.stripe_group):
            raise ValueError("rotation must be within the stripe group")

    @property
    def stripe_factor(self) -> int:
        return len(self.stripe_group)


@dataclass(frozen=True)
class StripePiece:
    """One contiguous piece of a declustered request.

    Attributes
    ----------
    group_index:
        Position within the stripe group (0 .. stripe_factor - 1).
    io_node:
        The I/O node id (``stripe_group[group_index]``).
    pfs_offset:
        Offset of this piece within the PFS file.
    ufs_offset:
        Offset of this piece within that I/O node's UFS stripe file.
    length:
        Piece length in bytes.
    """

    group_index: int
    io_node: int
    pfs_offset: int
    ufs_offset: int
    length: int


def decluster(attrs: StripeAttributes, offset: int, nbytes: int) -> List[StripePiece]:
    """Split a PFS byte range into per-I/O-node pieces.

    Adjacent stripe units that land on the *same* I/O node contiguously
    in its UFS file are merged into one piece (this happens whenever the
    request spans more than ``stripe_factor`` units).
    """
    if offset < 0 or nbytes < 0:
        raise ValueError("offset and size must be non-negative")
    su = attrs.stripe_unit
    g = attrs.stripe_factor
    pieces: List[StripePiece] = []
    pos = offset
    end = offset + nbytes
    while pos < end:
        unit = pos // su
        within = pos - unit * su
        take = min(su - within, end - pos)
        group_index = (unit + attrs.rotation) % g
        ufs_offset = (unit // g) * su + within
        prev = pieces[-1] if pieces else None
        if (
            prev is not None
            and prev.group_index == group_index
            and prev.ufs_offset + prev.length == ufs_offset
        ):
            pieces[-1] = StripePiece(
                group_index=prev.group_index,
                io_node=prev.io_node,
                pfs_offset=prev.pfs_offset,
                ufs_offset=prev.ufs_offset,
                length=prev.length + take,
            )
        else:
            pieces.append(
                StripePiece(
                    group_index=group_index,
                    io_node=attrs.stripe_group[group_index],
                    pfs_offset=pos,
                    ufs_offset=ufs_offset,
                    length=take,
                )
            )
        pos += take
    return pieces


def pieces_per_node(pieces: Sequence[StripePiece]) -> dict:
    """Group pieces by I/O node id (ordering preserved)."""
    out: dict = {}
    for piece in pieces:
        out.setdefault(piece.io_node, []).append(piece)
    return out


@dataclass(frozen=True)
class CoalescedRequest:
    """One per-I/O-node request covering several stripe-unit pieces.

    The PFS client gathers the pieces of a declustered request that are
    *contiguous in an I/O node's UFS stripe file* into a single wire
    request ("file system block coalescing is done on large read and
    write operations").  ``pieces`` lists the constituent pieces in
    ascending UFS order; piece *p*'s data lives at
    ``p.ufs_offset - self.ufs_offset`` within the request's data.
    """

    io_node: int
    ufs_offset: int
    length: int
    pieces: Tuple[StripePiece, ...]


def coalesce_pieces(pieces: Sequence[StripePiece]) -> List[CoalescedRequest]:
    """Merge per-node UFS-contiguous pieces into single requests."""
    out: List[CoalescedRequest] = []
    # sim-ok: R003v2 -- dict insertion order follows the deterministic piece order; sorting by node would reorder wire requests and move golden fingerprints
    for io_node, node_pieces in pieces_per_node(pieces).items():
        ordered = sorted(node_pieces, key=lambda p: p.ufs_offset)
        run: List[StripePiece] = [ordered[0]]
        for piece in ordered[1:]:
            if run[-1].ufs_offset + run[-1].length == piece.ufs_offset:
                run.append(piece)
            else:
                out.append(_make_request(io_node, run))
                run = [piece]
        out.append(_make_request(io_node, run))
    return out


def _make_request(io_node: int, run: List[StripePiece]) -> CoalescedRequest:
    start = run[0].ufs_offset
    length = run[-1].ufs_offset + run[-1].length - start
    return CoalescedRequest(io_node=io_node, ufs_offset=start, length=length, pieces=tuple(run))


def ufs_file_size(attrs: StripeAttributes, pfs_size: int, group_index: int) -> int:
    """Bytes of a PFS file of *pfs_size* stored on group member *group_index*."""
    if pfs_size < 0:
        raise ValueError("file size must be non-negative")
    su = attrs.stripe_unit
    g = attrs.stripe_factor
    full_units, tail = divmod(pfs_size, su)
    whole_rounds, extra_units = divmod(full_units, g)
    size = whole_rounds * su
    # Undo the rotation: position of this member in unit-dealing order.
    logical_index = (group_index - attrs.rotation) % g
    if logical_index < extra_units:
        size += su
    elif logical_index == extra_units:
        size += tail
    return size
