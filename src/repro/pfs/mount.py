"""PFS mount table.

"Any number of PFS file systems may be mounted in the system, each with
different default data striping attributes and buffering strategies."

A :class:`PFSMount` carries the default stripe attributes, the buffering
strategy (buffering disabled means Fast Path I/O), and the name -> file
registry.  Individual files may override the stripe attributes at
create time.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional

from repro.pfs.file import PFSFile
from repro.pfs.stripe import StripeAttributes


class PFSMountError(Exception):
    """Mount-level errors (duplicate file, unknown file, ...)."""


class PFSMount:
    """One mounted PFS file system."""

    def __init__(
        self,
        name: str,
        default_attrs: StripeAttributes,
        buffered: bool = False,
        file_ids: Optional[Iterator[int]] = None,
    ) -> None:
        self.name = name
        self.default_attrs = default_attrs
        #: False => Fast Path I/O (the high-performance default the paper
        #: measures); True => route transfers through the I/O-node cache.
        self.buffered = buffered
        self._files: Dict[str, PFSFile] = {}
        #: File-id allocator.  The machine passes one counter shared by
        #: all of its mounts (ids key UFS inodes machine-wide); a mount
        #: built standalone gets its own, starting at 1 either way so
        #: ids never depend on unrelated machines in the same process.
        self._file_ids: Iterator[int] = file_ids if file_ids is not None else itertools.count(1)

    @property
    def fastpath(self) -> bool:
        return not self.buffered

    def create_file(
        self,
        name: str,
        size_bytes: int = 0,
        attrs: Optional[StripeAttributes] = None,
    ) -> PFSFile:
        """Register a new PFS file (stripe files are created by the machine)."""
        if name in self._files:
            raise PFSMountError(f"file {name!r} already exists on mount {self.name!r}")
        pfs_file = PFSFile(
            name=name,
            mount=self,
            attrs=attrs or self.default_attrs,
            size_bytes=size_bytes,
        )
        self._files[name] = pfs_file
        return pfs_file

    def lookup(self, name: str) -> PFSFile:
        try:
            return self._files[name]
        except KeyError:
            raise PFSMountError(f"no file {name!r} on mount {self.name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def remove(self, name: str) -> PFSFile:
        try:
            return self._files.pop(name)
        except KeyError:
            raise PFSMountError(f"no file {name!r} on mount {self.name!r}") from None

    @property
    def files(self) -> Dict[str, PFSFile]:
        return dict(self._files)

    def __repr__(self) -> str:
        return (
            f"<PFSMount {self.name!r} su={self.default_attrs.stripe_unit} "
            f"sf={self.default_attrs.stripe_factor} "
            f"{'buffered' if self.buffered else 'fastpath'} "
            f"files={len(self._files)}>"
        )
