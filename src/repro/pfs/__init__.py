"""The Paragon Parallel File System (PFS) model.

A PFS file is striped across a group of UFSes on distinct I/O nodes;
multiple application processes on compute nodes access it concurrently
under one of six I/O modes (paper Figure 1).  Reads and writes are
declustered into per-I/O-node pieces (paper Figure 3) and served either
through the I/O-node buffer cache or via Fast Path directly from disk
to the user's buffer.

- :mod:`repro.pfs.modes` -- the I/O modes and their semantics.
- :mod:`repro.pfs.stripe` -- stripe attributes and declustering math.
- :mod:`repro.pfs.file` -- PFS file metadata and shared pointer state.
- :mod:`repro.pfs.coordinator` -- file-pointer token / barrier service.
- :mod:`repro.pfs.server` -- the PFS server on each I/O node.
- :mod:`repro.pfs.client` -- the PFS client library on compute nodes.
- :mod:`repro.pfs.mount` -- mount table with per-mount stripe attributes.
"""

from repro.pfs.client import PFSClient, PFSFileHandle
from repro.pfs.coordinator import CoordinatorService
from repro.pfs.file import PFSFile
from repro.pfs.modes import IOMode
from repro.pfs.mount import PFSMount
from repro.pfs.server import PFSServer
from repro.pfs.stripe import StripeAttributes, StripePiece, decluster

__all__ = [
    "CoordinatorService",
    "IOMode",
    "PFSClient",
    "PFSFile",
    "PFSFileHandle",
    "PFSMount",
    "PFSServer",
    "StripeAttributes",
    "StripePiece",
    "decluster",
]
