"""Bandwidth metrics, as the paper defines them.

Paper section 4: "a collective I/O request is considered complete when
the individual I/O requests of all the nodes have been satisfied.  The
read bandwidth is the total amount of data that can be read by all the
nodes per unit time as observed by the application.  For a parallel I/O
mode like M_RECORD, the numerator would be the amount of data read by
all the compute nodes and the time taken is the time taken by a compute
node to complete all the read calls."

With computation between reads, the read-call time *excludes* the
compute delays -- this is what lets prefetching raise the observed
bandwidth: a hit makes "the read access time appear less than it
actually is by reading the block before the read request was issued".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.stats import PrefetchStats
    from repro.obs.telemetry_export import BottleneckReport
    from repro.pfs.client import PFSFileHandle

MB = 1024 * 1024


@dataclass
class BandwidthReport:
    """Read-performance summary of one collective run."""

    #: Total bytes read by all participating nodes.
    total_bytes: int
    #: Wall-clock span of the run (first call start to last completion).
    elapsed_s: float
    #: Per-rank time spent inside read calls.
    read_call_time_by_rank: Dict[int, float] = field(default_factory=dict)
    #: Per-rank bytes read.
    bytes_by_rank: Dict[int, int] = field(default_factory=dict)
    #: Per-rank read call counts.
    calls_by_rank: Dict[int, int] = field(default_factory=dict)
    #: Merged prefetch statistics, when prefetching was active.
    prefetch: Optional["PrefetchStats"] = None
    #: Per-layer latency breakdown (span kind -> exclusive seconds on the
    #: critical path), attached when the run was traced.  Excluded from
    #: equality: tracing must not change what a run *measures*.
    breakdown: Optional[Dict[str, float]] = field(default=None, compare=False)
    #: Which resource saturated, attached when the run had telemetry on.
    #: Excluded from equality for the same reason as ``breakdown``.
    bottleneck: Optional["BottleneckReport"] = field(default=None, compare=False)

    @property
    def read_time_s(self) -> float:
        """Time for "a compute node to complete all the read calls":
        the slowest node's total in-call time."""
        if not self.read_call_time_by_rank:
            return 0.0
        return max(self.read_call_time_by_rank.values())

    @property
    def collective_bandwidth_mbps(self) -> float:
        """The paper's metric: total bytes / slowest node's read-call time."""
        t = self.read_time_s
        return (self.total_bytes / t) / MB if t > 0 else 0.0

    @property
    def elapsed_bandwidth_mbps(self) -> float:
        """Total bytes / wall-clock elapsed (includes compute delays)."""
        return (self.total_bytes / self.elapsed_s) / MB if self.elapsed_s > 0 else 0.0

    @property
    def per_node_bandwidth_mbps(self) -> Dict[int, float]:
        """Each rank's bytes / its own read-call time."""
        out = {}
        for rank, t in self.read_call_time_by_rank.items():
            nbytes = self.bytes_by_rank.get(rank, 0)
            out[rank] = (nbytes / t) / MB if t > 0 else 0.0
        return out

    @property
    def mean_read_access_time_s(self) -> float:
        """Average duration of one read call across all ranks."""
        calls = sum(self.calls_by_rank.values())
        time = sum(self.read_call_time_by_rank.values())
        return time / calls if calls else 0.0

    @property
    def balanced(self) -> float:
        """Evenness of per-node benefit (min/max per-node bandwidth).

        "the prefetching benefits should be equally distributed amongst
        the processors in order to see an overall benefit."
        """
        per_node = [b for b in self.per_node_bandwidth_mbps.values() if b > 0]
        if not per_node:
            return 1.0
        return min(per_node) / max(per_node)


def report_from_handles(
    handles: List["PFSFileHandle"],
    elapsed_s: float,
) -> BandwidthReport:
    """Build a :class:`BandwidthReport` from finished handles."""
    report = BandwidthReport(
        total_bytes=sum(h.stats.bytes_read for h in handles),
        elapsed_s=elapsed_s,
    )
    prefetch_stats = None
    for h in handles:
        report.read_call_time_by_rank[h.rank] = h.stats.read_call_time
        report.bytes_by_rank[h.rank] = h.stats.bytes_read
        report.calls_by_rank[h.rank] = h.stats.read_calls
        if h.prefetcher is not None:
            if prefetch_stats is None:
                prefetch_stats = h.prefetcher.stats
            else:
                prefetch_stats = prefetch_stats.merge(h.prefetcher.stats)
    report.prefetch = prefetch_stats
    return report
