"""The UFS: files, block allocation, reads/writes with coalescing.

One UFS instance runs per I/O node.  Reads and writes are generators
that spend simulated time on the node's block device; the *content*
returned is assembled from written blocks (literal bytes) and unwritten
blocks (synthetic deterministic bytes), so round-trips are exact without
materialising gigabytes.

Fast Path coalescing: a multi-block read/write issues one disk request
per *physically contiguous run* of blocks rather than one per block.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.trace import TraceContext
from repro.obs.monitor import Monitor
from repro.ufs.allocator import ExtentAllocator
from repro.ufs.blockdev import BlockDevice
from repro.ufs.data import Data, LiteralData, SyntheticData, concat_data
from repro.ufs.inode import Inode


class UFSError(Exception):
    """File-system level errors (missing file, bad range, ...)."""


class UFS:
    """A Unix File System on one block device."""

    def __init__(
        self,
        device: BlockDevice,
        fs_id: int = 0,
        name: str = "ufs",
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.device = device
        self.fs_id = fs_id
        self.name = name
        self.monitor = monitor
        self.block_size = device.block_size
        self.allocator = ExtentAllocator(device.total_blocks)
        self._inodes: Dict[int, Inode] = {}
        #: Written content: (file_id, logical_block) -> block bytes.
        self._written: Dict[tuple, LiteralData] = {}

    # -- namespace ---------------------------------------------------------

    def exists(self, file_id: int) -> bool:
        return file_id in self._inodes

    def inode(self, file_id: int) -> Inode:
        try:
            return self._inodes[file_id]
        except KeyError:
            raise UFSError(f"no such file {file_id} on {self.name}") from None

    def create(self, file_id: int, size_bytes: int = 0) -> Inode:
        """Create a file, allocating blocks to cover *size_bytes*."""
        if file_id in self._inodes:
            raise UFSError(f"file {file_id} already exists on {self.name}")
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        inode = Inode(file_id=file_id)
        self._inodes[file_id] = inode
        if size_bytes > 0:
            self._grow(inode, size_bytes)
        return inode

    def extend(self, file_id: int, new_size: int) -> Inode:
        """Grow a file to at least *new_size* bytes."""
        inode = self.inode(file_id)
        if new_size > inode.size_bytes:
            self._grow(inode, new_size)
        return inode

    def truncate(self, file_id: int, new_size: int) -> Inode:
        """Shrink (or grow) a file to exactly *new_size* bytes.

        Shrinking frees whole blocks past the new end and discards their
        written content; growing allocates like :meth:`extend`.
        """
        if new_size < 0:
            raise ValueError("size must be non-negative")
        inode = self.inode(file_id)
        if new_size >= inode.size_bytes:
            return self.extend(file_id, new_size)
        keep_blocks = -(-new_size // self.block_size) if new_size else 0
        if keep_blocks < inode.nblocks:
            # Free the physical extents of the dropped tail.
            dropped = inode.physical_runs(keep_blocks, inode.nblocks - keep_blocks)
            from repro.ufs.allocator import Extent

            self.allocator.free([Extent(phys, length) for _log, phys, length in dropped])
            del inode.block_map[keep_blocks:]
            for key in [k for k in self._written if k[0] == file_id and k[1] >= keep_blocks]:
                del self._written[key]
        inode.size_bytes = new_size
        return inode

    def unlink(self, file_id: int) -> None:
        inode = self.inode(file_id)
        self.allocator.free(inode.extents())
        del self._inodes[file_id]
        for key in [k for k in self._written if k[0] == file_id]:
            del self._written[key]

    def _grow(self, inode: Inode, new_size: int) -> None:
        needed_blocks = -(-new_size // self.block_size)  # ceil div
        extra = needed_blocks - inode.nblocks
        if extra > 0:
            inode.append_extents(self.allocator.allocate(extra))
        inode.size_bytes = max(inode.size_bytes, new_size)

    # -- content assembly (no simulated time) -------------------------------

    def _synthetic_key(self, file_id: int) -> int:
        return self.fs_id * 1_000_003 + file_id

    def content(self, file_id: int, offset: int, nbytes: int) -> Data:
        """Assemble the content of a byte range (no disk time)."""
        inode = self.inode(file_id)
        if offset < 0 or nbytes < 0 or offset + nbytes > inode.size_bytes:
            raise UFSError(
                f"range [{offset}, {offset + nbytes}) outside file {file_id} "
                f"of {inode.size_bytes} bytes"
            )
        if nbytes == 0:
            return LiteralData(b"")
        bs = self.block_size
        key = self._synthetic_key(file_id)
        pieces: List[Data] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            block = pos // bs
            in_block = pos - block * bs
            take = min(bs - in_block, end - pos)
            written = self._written.get((file_id, block))
            if written is not None:
                pieces.append(written.slice(in_block, take))
            else:
                pieces.append(SyntheticData(key, pos, take))
            pos += take
        return concat_data(pieces)

    # -- timed operations ------------------------------------------------------

    def read(
        self,
        file_id: int,
        offset: int,
        nbytes: int,
        coalesce: bool = True,
        ctx: Optional[TraceContext] = None,
    ):
        """Generator: read a byte range, spending disk time; returns Data.

        Whole file-system blocks covering the range are transferred from
        disk (partial-block requests still move full blocks -- the source
        of the paper's partial-block overhead); content for exactly the
        requested range is returned.
        """
        inode = self.inode(file_id)
        if offset < 0 or nbytes < 0 or offset + nbytes > inode.size_bytes:
            raise UFSError(
                f"read [{offset}, {offset + nbytes}) outside file {file_id} "
                f"of {inode.size_bytes} bytes"
            )
        if nbytes == 0:
            return LiteralData(b"")
        bs = self.block_size
        first_block = offset // bs
        last_block = (offset + nbytes - 1) // bs
        nblocks = last_block - first_block + 1

        for _logical, physical, run_len in self._runs(inode, first_block, nblocks, coalesce):
            yield from self.device.read_extent(physical, run_len, ctx=ctx)

        if self.monitor is not None:
            self.monitor.counter(f"{self.name}.reads").add(1)
            self.monitor.counter(f"{self.name}.bytes_read").add(nbytes)
        return self.content(file_id, offset, nbytes)

    def write(
        self,
        file_id: int,
        offset: int,
        data: Data,
        coalesce: bool = True,
        ctx: Optional[TraceContext] = None,
    ):
        """Generator: write *data* at *offset*, growing the file as needed.

        Partially covered edge blocks require a read-modify-write: the
        block is read from disk, merged, and written back.
        """
        nbytes = len(data)
        if offset < 0:
            raise UFSError("negative offset")
        inode = self.inode(file_id)
        if nbytes == 0:
            return 0
        if offset + nbytes > inode.size_bytes:
            self._grow(inode, offset + nbytes)
        bs = self.block_size
        first_block = offset // bs
        last_block = (offset + nbytes - 1) // bs
        nblocks = last_block - first_block + 1

        # Read-modify-write for partially covered edge blocks.
        rmw_blocks = []
        if offset % bs != 0:
            rmw_blocks.append(first_block)
        if (offset + nbytes) % bs != 0:
            rmw_blocks.append(last_block)
        for block in dict.fromkeys(rmw_blocks):
            physical = inode.physical_block(block)
            yield from self.device.read_extent(physical, 1, ctx=ctx)

        # Merge content into the written-block store.
        self._merge_written(inode, offset, data)

        for _logical, physical, run_len in self._runs(inode, first_block, nblocks, coalesce):
            yield from self.device.write_extent(physical, run_len, ctx=ctx)

        if self.monitor is not None:
            self.monitor.counter(f"{self.name}.writes").add(1)
            self.monitor.counter(f"{self.name}.bytes_written").add(nbytes)
        return nbytes

    def read_block(self, file_id: int, block_index: int, ctx: Optional[TraceContext] = None):
        """Generator: read exactly one file-system block (cache fill path)."""
        inode = self.inode(file_id)
        physical = inode.physical_block(block_index)
        yield from self.device.read_extent(physical, 1, ctx=ctx)
        start = block_index * self.block_size
        length = min(self.block_size, inode.size_bytes - start)
        return self.content(file_id, start, length)

    def write_block(
        self, file_id: int, block_index: int, data: Data, ctx: Optional[TraceContext] = None
    ):
        """Generator: write exactly one file-system block."""
        if len(data) > self.block_size:
            raise UFSError("block write larger than block size")
        inode = self.inode(file_id)
        start = block_index * self.block_size
        if start + len(data) > inode.size_bytes:
            self._grow(inode, start + len(data))
        physical = inode.physical_block(block_index)
        self._merge_written(inode, start, data)
        yield from self.device.write_extent(physical, 1, ctx=ctx)
        return len(data)

    # -- internals ------------------------------------------------------------

    def _runs(self, inode: Inode, first_block: int, nblocks: int, coalesce: bool):
        runs = inode.physical_runs(first_block, nblocks)
        if coalesce:
            return runs
        # Uncoalesced: one request per block.
        split = []
        for logical, physical, run_len in runs:
            for k in range(run_len):
                split.append((logical + k, physical + k, 1))
        return split

    def _merge_written(self, inode: Inode, offset: int, data: Data) -> None:
        bs = self.block_size
        pos = offset
        end = offset + len(data)
        while pos < end:
            block = pos // bs
            in_block = pos - block * bs
            take = min(bs - in_block, end - pos)
            key = (inode.file_id, block)
            existing = self._written.get(key)
            if existing is None:
                # Materialise the block's prior content so the merge is exact.
                block_start = block * bs
                block_len = min(bs, inode.size_bytes - block_start)
                existing = LiteralData(
                    self.content(inode.file_id, block_start, block_len).to_bytes()
                )
            buf = bytearray(existing.to_bytes())
            piece = data.slice(pos - offset, take).to_bytes()
            if in_block + take > len(buf):
                buf.extend(b"\x00" * (in_block + take - len(buf)))
            buf[in_block : in_block + take] = piece
            self._written[key] = LiteralData(bytes(buf))
            pos += take

    def __repr__(self) -> str:
        return f"<UFS {self.name} files={len(self._inodes)}>"
