"""Block-granular device over a RAID array.

Translates block indices into byte LBAs and exposes extent reads/writes
so the UFS can issue one disk request per physically contiguous run
(Fast Path block coalescing: "file system block coalescing is done on
large read and write operations, which reduces the number of required
disk accesses when blocks of the file are contiguous on the disk").
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.raid import RAID3Array
from repro.obs.trace import TraceContext


class BlockDevice:
    """Fixed-block-size view of a RAID array."""

    def __init__(self, array: RAID3Array, block_size: int) -> None:
        if block_size <= 0:
            raise ValueError("block size must be positive")
        self.array = array
        self.block_size = block_size

    @property
    def total_blocks(self) -> int:
        return self.array.capacity_bytes // self.block_size

    def read_extent(self, start_block: int, nblocks: int, ctx: Optional[TraceContext] = None):
        """Generator: read *nblocks* contiguous blocks in one disk request."""
        self._validate(start_block, nblocks)
        nbytes = nblocks * self.block_size
        yield from self.array.read(start_block * self.block_size, nbytes, ctx=ctx)
        return nbytes

    def write_extent(self, start_block: int, nblocks: int, ctx: Optional[TraceContext] = None):
        """Generator: write *nblocks* contiguous blocks in one disk request."""
        self._validate(start_block, nblocks)
        nbytes = nblocks * self.block_size
        yield from self.array.write(start_block * self.block_size, nbytes, ctx=ctx)
        return nbytes

    def _validate(self, start_block: int, nblocks: int) -> None:
        if nblocks <= 0:
            raise ValueError("extent must contain at least one block")
        if start_block < 0 or start_block + nblocks > self.total_blocks:
            raise ValueError(
                f"extent [{start_block}, {start_block + nblocks}) outside device "
                f"of {self.total_blocks} blocks"
            )

    def __repr__(self) -> str:
        return f"<BlockDevice {self.total_blocks} x {self.block_size}B>"
