"""Unix File System (UFS) model.

Each I/O node runs one UFS on its RAID array; a PFS file is striped
across a group of these UFSes ("striping the files across a group of
regular Unix File Systems (UFS) which are located on distinct storage
devices").

- :mod:`repro.ufs.data` -- lazy, content-addressed data values so
  multi-megabyte simulated files never materialise real bytes unless a
  test asks them to.
- :mod:`repro.ufs.blockdev` -- block-granular device over a RAID array.
- :mod:`repro.ufs.allocator` -- extent-based block allocator.
- :mod:`repro.ufs.inode` -- inodes and block maps.
- :mod:`repro.ufs.filesystem` -- the file system: create/read/write with
  block coalescing for Fast Path I/O.
"""

from repro.ufs.allocator import AllocationError, Extent, ExtentAllocator
from repro.ufs.blockdev import BlockDevice
from repro.ufs.data import Data, LiteralData, SyntheticData, concat_data
from repro.ufs.filesystem import UFS, UFSError
from repro.ufs.inode import Inode

__all__ = [
    "AllocationError",
    "BlockDevice",
    "Data",
    "Extent",
    "ExtentAllocator",
    "Inode",
    "LiteralData",
    "SyntheticData",
    "UFS",
    "UFSError",
    "concat_data",
]
