"""Lazy data values for simulated file contents.

Simulated reads must return *contents* so the test suite can assert that
the prefetch path is byte-identical to the direct path -- but benchmark
workloads read hundreds of megabytes, and materialising real ``bytes``
for every transfer would dominate runtime.  A :class:`Data` value is an
immutable, length-bearing description of file content that supports
slicing and concatenation in O(pieces), and only produces real bytes
when :meth:`Data.to_bytes` is called.

Unwritten file content is :class:`SyntheticData`: byte *p* of stream
*key* is a cheap deterministic mix of ``(key, p)``, so any two reads of
the same region agree regardless of which code path produced them.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)


def _synthetic_bytes(key: int, offset: int, length: int) -> bytes:
    """Deterministic pseudo-random bytes for stream *key* at *offset*."""
    if length == 0:
        return b""
    positions = np.arange(offset, offset + length, dtype=np.uint64)
    mixed = (positions + np.uint64(key & 0xFFFFFFFFFFFFFFFF)) * _MIX_A
    mixed ^= mixed >> np.uint64(31)
    mixed *= _MIX_B
    mixed ^= mixed >> np.uint64(29)
    return (mixed & np.uint64(0xFF)).astype(np.uint8).tobytes()


class Data:
    """Immutable description of a run of file content."""

    __slots__ = ()

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def slice(self, start: int, length: int) -> "Data":  # pragma: no cover
        raise NotImplementedError

    def to_bytes(self) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check_slice(self, start: int, length: int) -> None:
        if start < 0 or length < 0 or start + length > len(self):
            raise ValueError(
                f"slice [{start}, {start + length}) out of range for " f"data of length {len(self)}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Data):
            return NotImplemented
        if len(self) != len(other):
            return False
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash((len(self), self.to_bytes()))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} len={len(self)}>"


class LiteralData(Data):
    """Content backed by real bytes (anything the application wrote)."""

    __slots__ = ("_payload",)

    def __init__(self, payload: Union[bytes, bytearray]) -> None:
        self._payload = bytes(payload)

    def __len__(self) -> int:
        return len(self._payload)

    def slice(self, start: int, length: int) -> "LiteralData":
        self._check_slice(start, length)
        return LiteralData(self._payload[start : start + length])

    def to_bytes(self) -> bytes:
        return self._payload


class SyntheticData(Data):
    """Unwritten file content: deterministic function of (key, offset)."""

    __slots__ = ("key", "offset", "length")

    def __init__(self, key: int, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        self.key = key
        self.offset = offset
        self.length = length

    def __len__(self) -> int:
        return self.length

    def slice(self, start: int, length: int) -> "SyntheticData":
        self._check_slice(start, length)
        return SyntheticData(self.key, self.offset + start, length)

    def to_bytes(self) -> bytes:
        return _synthetic_bytes(self.key, self.offset, self.length)

    def __eq__(self, other: object) -> bool:
        # Fast path: same stream and range agree without materialising.
        if isinstance(other, SyntheticData):
            if (
                self.key == other.key
                and self.offset == other.offset
                and self.length == other.length
            ):
                return True
        return super().__eq__(other)

    __hash__ = Data.__hash__


class ConcatData(Data):
    """Concatenation of pieces (multi-extent or multi-node reads)."""

    __slots__ = ("parts", "_length")

    def __init__(self, parts: Sequence[Data]) -> None:
        flat: List[Data] = []
        for part in parts:
            if isinstance(part, ConcatData):
                flat.extend(part.parts)
            elif len(part) > 0:
                flat.append(part)
        self.parts = tuple(flat)
        self._length = sum(len(p) for p in self.parts)

    def __len__(self) -> int:
        return self._length

    def slice(self, start: int, length: int) -> Data:
        self._check_slice(start, length)
        out: List[Data] = []
        remaining = length
        pos = start
        for part in self.parts:
            if remaining == 0:
                break
            if pos >= len(part):
                pos -= len(part)
                continue
            take = min(len(part) - pos, remaining)
            out.append(part.slice(pos, take))
            remaining -= take
            pos = 0
        return concat_data(out)

    def to_bytes(self) -> bytes:
        return b"".join(p.to_bytes() for p in self.parts)


def concat_data(parts: Sequence[Data]) -> Data:
    """Concatenate data values, collapsing trivial cases."""
    flat = [p for p in parts if len(p) > 0]
    if not flat:
        return LiteralData(b"")
    if len(flat) == 1:
        return flat[0]
    return ConcatData(flat)


def zeros(length: int) -> Data:
    """All-zero content (e.g. reads past a write hole)."""
    return SyntheticData(0, 0, 0) if length == 0 else LiteralData(b"\x00" * length)
