"""Inodes and block maps.

An inode records a file's size and the *physical* block backing each
*logical* block.  :meth:`Inode.physical_runs` turns a logical range into
maximal physically contiguous runs -- the unit of Fast Path coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ufs.allocator import Extent


@dataclass
class Inode:
    """On-"disk" metadata for one UFS file."""

    file_id: int
    size_bytes: int = 0
    #: logical block index -> physical block index.
    block_map: List[int] = field(default_factory=list)
    #: Blocks whose content has been written: logical block -> True.
    written: Dict[int, bool] = field(default_factory=dict)

    @property
    def nblocks(self) -> int:
        return len(self.block_map)

    def append_extents(self, extents: List[Extent]) -> None:
        """Grow the block map with newly allocated extents."""
        for extent in extents:
            self.block_map.extend(range(extent.start, extent.end))

    def physical_block(self, logical: int) -> int:
        if logical < 0 or logical >= len(self.block_map):
            raise IndexError(
                f"logical block {logical} out of range (file has " f"{len(self.block_map)} blocks)"
            )
        return self.block_map[logical]

    def physical_runs(self, start_logical: int, nblocks: int) -> List[Tuple[int, int, int]]:
        """Split a logical range into physically contiguous runs.

        Returns a list of ``(logical_start, physical_start, run_length)``
        triples covering ``[start_logical, start_logical + nblocks)``.
        """
        if nblocks <= 0:
            raise ValueError("need at least one block")
        if start_logical < 0 or start_logical + nblocks > len(self.block_map):
            raise IndexError(
                f"range [{start_logical}, {start_logical + nblocks}) outside "
                f"file of {len(self.block_map)} blocks"
            )
        runs: List[Tuple[int, int, int]] = []
        run_logical = start_logical
        run_physical = self.block_map[start_logical]
        run_len = 1
        for logical in range(start_logical + 1, start_logical + nblocks):
            physical = self.block_map[logical]
            if physical == run_physical + run_len:
                run_len += 1
            else:
                runs.append((run_logical, run_physical, run_len))
                run_logical, run_physical, run_len = logical, physical, 1
        runs.append((run_logical, run_physical, run_len))
        return runs

    def extents(self) -> List[Extent]:
        """All physical extents of the file (for freeing on unlink)."""
        if not self.block_map:
            return []
        out: List[Extent] = []
        for _logical, physical, length in self.physical_runs(0, len(self.block_map)):
            out.append(Extent(physical, length))
        return out
