"""Extent-based block allocator for the UFS.

Allocation strategy is first-fit over a sorted free list, preferring a
single extent when one is large enough.  A freshly created file on an
empty file system therefore gets (mostly) physically contiguous blocks,
which is what makes Fast Path block coalescing and the drives'
sequential-read detection effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class AllocationError(Exception):
    """Raised when the device has too few free blocks."""


@dataclass(frozen=True)
class Extent:
    """A run of physically contiguous blocks."""

    start: int
    length: int

    @property
    def end(self) -> int:
        """One past the last block."""
        return self.start + self.length

    def __post_init__(self) -> None:
        if self.start < 0 or self.length <= 0:
            raise ValueError(f"invalid extent ({self.start}, {self.length})")


class ExtentAllocator:
    """Tracks free block extents on one device."""

    def __init__(self, total_blocks: int) -> None:
        if total_blocks <= 0:
            raise ValueError("device needs at least one block")
        self.total_blocks = total_blocks
        self._free: List[Extent] = [Extent(0, total_blocks)]

    @property
    def free_blocks(self) -> int:
        return sum(e.length for e in self._free)

    @property
    def free_extents(self) -> List[Extent]:
        return list(self._free)

    @property
    def fragmentation(self) -> float:
        """0.0 when free space is one extent; approaches 1.0 as it shatters."""
        if not self._free or self.free_blocks == 0:
            return 0.0
        return 1.0 - max(e.length for e in self._free) / self.free_blocks

    def allocate(self, nblocks: int) -> List[Extent]:
        """Allocate *nblocks*, returning the extents granted.

        Prefers the first single free extent that fits; otherwise takes
        free extents in address order until satisfied.
        """
        if nblocks <= 0:
            raise ValueError("must allocate a positive number of blocks")
        if nblocks > self.free_blocks:
            raise AllocationError(f"requested {nblocks} blocks but only {self.free_blocks} free")

        # First fit: one extent that covers the whole request.
        for i, extent in enumerate(self._free):
            if extent.length >= nblocks:
                granted = Extent(extent.start, nblocks)
                if extent.length == nblocks:
                    self._free.pop(i)
                else:
                    self._free[i] = Extent(extent.start + nblocks, extent.length - nblocks)
                return [granted]

        # Fragmented: gather extents in address order.
        granted: List[Extent] = []
        remaining = nblocks
        while remaining > 0:
            extent = self._free[0]
            take = min(extent.length, remaining)
            granted.append(Extent(extent.start, take))
            if take == extent.length:
                self._free.pop(0)
            else:
                self._free[0] = Extent(extent.start + take, extent.length - take)
            remaining -= take
        return granted

    def free(self, extents: List[Extent]) -> None:
        """Return *extents* to the free list, merging neighbours."""
        for extent in extents:
            if extent.end > self.total_blocks:
                raise ValueError(f"extent {extent} beyond device end")
            self._insert(extent)

    def _insert(self, extent: Extent) -> None:
        # Find insertion point keeping the free list address-sorted.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].start < extent.start:
                lo = mid + 1
            else:
                hi = mid
        # Overlap checks against neighbours (double-free detection).
        if lo > 0 and self._free[lo - 1].end > extent.start:
            raise ValueError(f"freeing {extent} overlaps free space (double free?)")
        if lo < len(self._free) and extent.end > self._free[lo].start:
            raise ValueError(f"freeing {extent} overlaps free space (double free?)")
        self._free.insert(lo, extent)
        # Merge with the next extent.
        if lo + 1 < len(self._free) and self._free[lo].end == self._free[lo + 1].start:
            nxt = self._free.pop(lo + 1)
            self._free[lo] = Extent(self._free[lo].start, self._free[lo].length + nxt.length)
        # Merge with the previous extent.
        if lo > 0 and self._free[lo - 1].end == self._free[lo].start:
            current = self._free.pop(lo)
            prev = self._free[lo - 1]
            self._free[lo - 1] = Extent(prev.start, prev.length + current.length)

    def __repr__(self) -> str:
        return (
            f"<ExtentAllocator {self.free_blocks}/{self.total_blocks} free in "
            f"{len(self._free)} extents>"
        )
