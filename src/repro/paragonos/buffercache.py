"""I/O-node file-system buffer cache.

The Paragon OS server keeps a block cache per I/O node; PFS mounts can
enable or disable it ("Currently supported buffering strategies allow
data buffering on the I/O nodes to be enabled or disabled").  When
buffering is disabled, Fast Path I/O bypasses this cache entirely and
reads stream from the disks straight into the user's buffer.

The cache is an LRU over fixed-size file-system blocks keyed by
``(file_id, block_index)``.  Concurrent misses on the same block are
collapsed: the second requester waits for the first fetch instead of
issuing a duplicate disk read (read-once semantics).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generator, Optional, Tuple

from repro.obs.telemetry import get_telemetry
from repro.sim import Environment, Event
from repro.obs.monitor import Monitor

BlockKey = Tuple[int, int]  # (file_id, block_index)


class CacheBlock:
    """One cached file-system block."""

    __slots__ = ("key", "data", "dirty")

    def __init__(self, key: BlockKey, data: bytes, dirty: bool = False) -> None:
        self.key = key
        self.data = data
        self.dirty = dirty


class BufferCache:
    """LRU block cache with miss collapsing and write-back dirty blocks."""

    def __init__(
        self,
        env: Environment,
        capacity_blocks: int,
        block_size: int,
        name: str = "bcache",
        monitor: Optional[Monitor] = None,
    ) -> None:
        if capacity_blocks <= 0:
            raise ValueError("cache needs at least one block")
        if block_size <= 0:
            raise ValueError("block size must be positive")
        self.env = env
        self.capacity_blocks = capacity_blocks
        self.block_size = block_size
        self.name = name
        self.monitor = monitor
        self._blocks: "OrderedDict[BlockKey, CacheBlock]" = OrderedDict()
        #: In-flight fetches: key -> event fired with the block when loaded.
        self._inflight: Dict[BlockKey, Event] = {}
        #: Called with (key, data) to persist a dirty block (wired to the
        #: UFS by the PFS server; used by flush and the sync daemon).
        self.writeback: Optional[Callable[[BlockKey, bytes], Generator]] = None
        #: Events to trigger the next time a block becomes dirty (lets
        #: the sync daemon sleep instead of polling an empty cache).
        self._dirty_waiters: list = []
        #: Always-on event tallies (hits, misses, ...) -- the source the
        #: telemetry probes read, independent of the monitor.
        self.counts: Dict[str, int] = {}
        telemetry = get_telemetry(monitor)
        label = {"cache": name}
        telemetry.register_probe(
            "bcache_occupancy_blocks",
            lambda: float(len(self._blocks)),
            labels=label,
            help="Blocks resident in the cache",
        )
        telemetry.register_probe(
            "bcache_dirty_blocks",
            lambda: float(self.dirty_count),
            labels=label,
            help="Resident blocks awaiting write-back",
        )
        telemetry.register_probe(
            "bcache_hits_total",
            lambda: float(self.counts.get("hits", 0)),
            labels=label,
            help="Block lookups served from the cache",
            kind="counter",
        )
        telemetry.register_probe(
            "bcache_misses_total",
            lambda: float(self.counts.get("misses", 0) + self.counts.get("collapsed_misses", 0)),
            labels=label,
            help="Block lookups that missed (incl. collapsed)",
            kind="counter",
        )

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._blocks

    def peek(self, key: BlockKey) -> Optional[bytes]:
        """Return cached data without touching LRU order (tests/debug)."""
        block = self._blocks.get(key)
        return block.data if block is not None else None

    @property
    def dirty_keys(self):
        return [k for k, b in self._blocks.items() if b.dirty]

    # -- core operations ----------------------------------------------------------

    def read_block(self, key: BlockKey, fetch: Callable[[], Generator]):
        """Generator: return the block's data, fetching on a miss.

        *fetch* is a generator function performing the actual disk read
        and returning the block bytes; it is only invoked on a miss, and
        only once per concurrently-missed block.
        """
        block = self._blocks.get(key)
        if block is not None:
            self._blocks.move_to_end(key)
            self._count("hits")
            return block.data

        pending = self._inflight.get(key)
        if pending is not None:
            # Someone else is already fetching this block.
            self._count("collapsed_misses")
            data = yield pending
            return data

        self._count("misses")
        event = self.env.event()
        self._inflight[key] = event
        try:
            data = yield from fetch()
        except Exception as exc:
            del self._inflight[key]
            event.defused = True
            event.fail(exc)
            raise
        del self._inflight[key]
        self._insert(CacheBlock(key, data))
        event.succeed(data)
        return data

    def write_block(self, key: BlockKey, data: bytes) -> None:
        """Install *data* for *key* as dirty (write-back caching)."""
        block = self._blocks.get(key)
        if block is not None:
            block.data = data
            block.dirty = True
            self._blocks.move_to_end(key)
        else:
            self._insert(CacheBlock(key, data, dirty=True))
        self._count("writes")
        waiters, self._dirty_waiters = self._dirty_waiters, []
        for event in waiters:
            event.succeed()

    def wait_for_dirty(self) -> Event:
        """Event that fires the next time a block becomes dirty (fires
        immediately if one already is)."""
        event = Event(self.env)
        if self.dirty_keys:
            event.succeed()
        else:
            self._dirty_waiters.append(event)
        return event

    def invalidate(self, key: BlockKey) -> None:
        self._blocks.pop(key, None)

    def invalidate_file(self, file_id: int) -> None:
        for key in [k for k in self._blocks if k[0] == file_id]:
            del self._blocks[key]

    def flush(self):
        """Generator: write back every dirty block via :attr:`writeback`."""
        for key in list(self._blocks):
            block = self._blocks.get(key)
            if block is not None and block.dirty:
                if self.writeback is not None:
                    yield from self.writeback(key, block.data)
                block.dirty = False
                self._count("writebacks")
        # Shed any dirty-pressure overflow now that blocks are clean.
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)
            self._count("evictions")
        return None

    # -- internals ---------------------------------------------------------------

    def _insert(self, block: CacheBlock) -> None:
        self._blocks[block.key] = block
        self._blocks.move_to_end(block.key)
        # Evict least-recently-used CLEAN blocks.  Dirty blocks are never
        # dropped synchronously (their data exists nowhere else); if the
        # cache is all dirty it transiently overflows until the sync
        # daemon (or a flush) cleans blocks -- real kernels throttle
        # writers here, we surface it via ``overflow_blocks``.
        while len(self._blocks) > self.capacity_blocks:
            victim_key = None
            # sim-ok: R003v2 -- OrderedDict iterates in LRU (move_to_end) order, deterministic simulation state; sorting would break LRU victim choice
            for key, candidate in self._blocks.items():
                if not candidate.dirty:
                    victim_key = key
                    break
            if victim_key is None:
                self._count("dirty_overflow")
                break
            del self._blocks[victim_key]
            self._count("evictions")

    @property
    def dirty_count(self) -> int:
        return sum(1 for b in self._blocks.values() if b.dirty)

    @property
    def overflow_blocks(self) -> int:
        """Blocks held beyond capacity (only dirty pressure causes this)."""
        return max(0, len(self._blocks) - self.capacity_blocks)

    def _count(self, what: str) -> None:
        self.counts[what] = self.counts.get(what, 0) + 1
        if self.monitor is not None:
            self.monitor.counter(f"{self.name}.{what}").add(1)

    def __repr__(self) -> str:
        return (
            f"<BufferCache {self.name} {len(self._blocks)}/{self.capacity_blocks} "
            f"blocks of {self.block_size}B>"
        )
