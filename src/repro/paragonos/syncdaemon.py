"""Periodic dirty-block write-back (the I/O node's update daemon).

With write-back caching enabled, dirty blocks accumulate in the
I/O-node buffer cache; this daemon -- the Unix ``update``/``bdflush``
analogue -- flushes them to the UFS on a fixed interval so a crash (or
an unmount) never loses more than one interval's writes, and so dirty
pressure cannot permanently overflow the cache.
"""

from __future__ import annotations

from typing import Optional

from repro.paragonos.buffercache import BufferCache
from repro.sim import Environment
from repro.obs.monitor import Monitor


class SyncDaemon:
    """Flushes one buffer cache every *interval_s* simulated seconds."""

    def __init__(
        self,
        env: Environment,
        cache: BufferCache,
        interval_s: float = 30.0,
        name: str = "syncd",
        monitor: Optional[Monitor] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.cache = cache
        self.interval_s = interval_s
        self.name = name
        self.monitor = monitor
        self.flushes = 0
        self._process = env.process(self._loop(), name=name)

    def _loop(self):
        while True:
            # Sleep until something is dirty (keeps the event queue empty
            # on an idle machine), then flush one interval later.
            yield self.cache.wait_for_dirty()
            yield self.env.timeout(self.interval_s)
            if self.cache.dirty_keys:
                yield from self.cache.flush()
                self.flushes += 1
                if self.monitor is not None:
                    self.monitor.counter(f"{self.name}.flushes").add(1)

    def __repr__(self) -> str:
        return f"<SyncDaemon {self.name} every {self.interval_s}s>"
