"""Typed messages exchanged between compute-node clients and I/O-node
servers.

Message *sizes* matter: the request header crosses the mesh, and the
reply carries the data bytes back, so large reads spend (negligible but
modelled) time on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Size of a request/areply header on the wire.
HEADER_BYTES = 128

_msg_ids = itertools.count(1)


def next_message_id() -> int:
    return next(_msg_ids)


@dataclass
class RPCMessage:
    """Base class for all RPC payloads."""

    msg_id: int = field(default_factory=next_message_id, init=False)
    #: Trace context of the causing span (set post-construction by the
    #: sender; init=False keeps subclass field ordering legal).
    ctx: Optional[Any] = field(default=None, init=False, repr=False, compare=False)

    @property
    def wire_bytes(self) -> int:
        """Bytes this message occupies on the mesh."""
        return HEADER_BYTES


@dataclass
class ReadRequest(RPCMessage):
    """Ask an I/O node to read a byte range of one of its UFS stripe files."""

    file_id: int
    ufs_offset: int
    nbytes: int
    #: True if buffering is disabled and the server should use Fast Path.
    fastpath: bool = True
    #: Tag for statistics: "demand" or "prefetch".
    cause: str = "demand"


@dataclass
class ReadReply(RPCMessage):
    """Data coming back from an I/O node."""

    file_id: int
    ufs_offset: int
    data: bytes
    #: True if the block was served from the I/O-node buffer cache.
    cache_hit: bool = False

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + len(self.data)


@dataclass
class WriteRequest(RPCMessage):
    """Write a byte range to one of an I/O node's UFS stripe files."""

    file_id: int
    ufs_offset: int
    data: bytes
    fastpath: bool = True

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + len(self.data)


@dataclass
class WriteReply(RPCMessage):
    """Acknowledgement of a completed write."""

    file_id: int
    ufs_offset: int
    nbytes: int


@dataclass
class ControlRequest(RPCMessage):
    """Metadata operation (create/truncate/stat) on an I/O node."""

    op: str
    file_id: int
    arg: Any = None


@dataclass
class ControlReply(RPCMessage):
    """Reply to a metadata operation."""

    op: str
    file_id: int
    result: Any = None
    error: Optional[str] = None
