"""Paragon OS layer.

Models the operating-system services the PFS prototype is built on
(paper sections 2 and 3):

- :mod:`repro.paragonos.messages` -- typed request/reply messages.
- :mod:`repro.paragonos.rpc` -- RPC endpoints between compute and I/O
  nodes over the mesh.
- :mod:`repro.paragonos.art` -- Asynchronous Request Threads: the FIFO
  active list and setup/posting phases that asynchronous PFS reads (and
  therefore prefetch requests) go through.
- :mod:`repro.paragonos.buffercache` -- the I/O-node file-system buffer
  cache that Fast Path I/O bypasses.
"""

from repro.paragonos.art import AsyncRequest, AsyncRequestManager
from repro.paragonos.buffercache import BufferCache
from repro.paragonos.syncdaemon import SyncDaemon
from repro.paragonos.messages import (
    ReadReply,
    ReadRequest,
    RPCMessage,
    WriteReply,
    WriteRequest,
)
from repro.paragonos.rpc import RPCEndpoint, RPCError

__all__ = [
    "AsyncRequest",
    "AsyncRequestManager",
    "BufferCache",
    "RPCEndpoint",
    "RPCError",
    "RPCMessage",
    "ReadReply",
    "ReadRequest",
    "SyncDaemon",
    "WriteReply",
    "WriteRequest",
]
