"""Asynchronous Request Threads (ARTs).

Paper section 3:

    "During the setup phase, the incoming request for read is allocated
    an internal structure for tracking the state of request during the
    asynchronous processing.  A pointer to this structure then resides
    in the list of pointers maintained for active asynchronous requests
    issued by the user.  Associated with each request structure is an
    asynchronous request thread (ART). [...] Once the ART is
    initialized, it begins processing asynchronous requests that are
    queued in a FIFO manner on the active list."

We model a pool of ART workers per compute node draining a FIFO active
list.  Submitting a request charges the setup/posting overhead on the
node's CPU; the ART then runs the request's *operation* (a generator --
in practice the Fast Path read) and triggers the request's completion
event.  Prefetch requests ride this exact machinery, as in the paper.
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator, List, Optional

from repro.hardware.node import Node
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import TraceContext, get_tracer
from repro.sim import ArbitratedStore, Environment
from repro.obs.monitor import Monitor

_request_ids = itertools.count(1)


class AsyncRequest:
    """Tracking structure for one asynchronous I/O request."""

    __slots__ = (
        "request_id",
        "operation",
        "tag",
        "event",
        "issued_at",
        "started_at",
        "completed_at",
        "result",
        "cancelled",
        "ctx",
    )

    def __init__(
        self,
        env: Environment,
        operation: Callable[[], Generator],
        tag: str,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        self.request_id = next(_request_ids)
        self.operation = operation
        self.tag = tag
        #: Fires with the operation's return value when the ART finishes.
        self.event = env.event()
        self.issued_at = env.now
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.result = None
        self.cancelled = False
        #: Trace context of the submitting span (None when untraced).
        self.ctx = ctx

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def in_flight(self) -> bool:
        return self.started_at is not None and self.completed_at is None

    def __repr__(self) -> str:
        state = "done" if self.done else ("in-flight" if self.in_flight else "queued")
        return f"<AsyncRequest {self.request_id} {self.tag} {state}>"


class AsyncRequestManager:
    """Per-node pool of ARTs draining a FIFO active list."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        max_threads: int = 4,
        monitor: Optional[Monitor] = None,
    ) -> None:
        if max_threads <= 0:
            raise ValueError("need at least one ART")
        self.env = env
        self.node = node
        self.max_threads = max_threads
        self.monitor = monitor
        self.tracer = get_tracer(monitor)
        #: The active list: FIFO queue of pending AsyncRequests.
        #: Same-timestamp submissions are admitted in canonical key
        #: order (ArbitratedStore), so concurrent prefetch bursts queue
        #: identically under either tie-break.
        self._active_list: ArbitratedStore = ArbitratedStore(env)
        self._outstanding: List[AsyncRequest] = []
        self._workers = [
            env.process(self._art_loop(i), name=f"art-{node.node_id}-{i}")
            for i in range(max_threads)
        ]
        telemetry = get_telemetry(monitor)
        label = {"node": str(node.node_id)}
        telemetry.register_probe(
            "art_outstanding_requests",
            lambda: float(len(self.outstanding)),
            labels=label,
            help="Async requests submitted but not yet completed",
        )
        telemetry.register_probe(
            "art_active_list_depth",
            lambda: float(len(self._active_list.items)),
            labels=label,
            help="Requests queued on the FIFO active list awaiting an ART",
        )

    @property
    def outstanding(self) -> List[AsyncRequest]:
        """Requests submitted but not yet completed."""
        return [r for r in self._outstanding if not r.done]

    def submit(
        self,
        operation: Callable[[], Generator],
        tag: str = "async",
        ctx: Optional[TraceContext] = None,
    ):
        """Generator: set up an async request and enqueue it.

        Charges the setup/posting overhead on the node CPU (the paper's
        "request setup and posting phase"), then returns the
        :class:`AsyncRequest`; the caller waits on ``request.event`` for
        completion (or never does -- prefetches are fire-and-forget).
        """
        request = AsyncRequest(self.env, operation, tag, ctx=ctx)
        span = self.tracer.begin(
            "art_setup",
            ctx=ctx,
            node_id=self.node.node_id,
            tag=tag,
            request_id=request.request_id,
        )
        yield from self.node.busy(self.node.params.async_setup_overhead_s)
        self._outstanding.append(request)
        yield self._active_list.put(request)
        self.tracer.end(span)
        if self.monitor is not None:
            self.monitor.counter(f"art.submitted.{tag}").add(1)
        return request

    def cancel_pending(self, predicate: Callable[[AsyncRequest], bool]) -> int:
        """Mark queued (not yet started) requests matching *predicate* as
        cancelled.  The ART discards them without running the operation.
        Returns the number cancelled."""
        n = 0
        for request in self._active_list.items:
            if not request.cancelled and predicate(request):
                request.cancelled = True
                n += 1
        return n

    def _art_loop(self, worker_index: int):
        while True:
            request = yield self._active_list.get()
            if request.cancelled:
                request.completed_at = self.env.now
                request.event.succeed(None)
                self._outstanding.remove(request)
                continue
            request.started_at = self.env.now
            span = self.tracer.begin(
                "art_io",
                ctx=request.ctx,
                node_id=self.node.node_id,
                tag=request.tag,
                request_id=request.request_id,
                worker=worker_index,
            )
            try:
                result = yield from request.operation()
            except Exception as exc:
                request.completed_at = self.env.now
                self.tracer.end(span, failed=True)
                self._outstanding.remove(request)
                request.event.fail(exc)
                continue
            request.result = result
            request.completed_at = self.env.now
            self.tracer.end(span)
            self._outstanding.remove(request)
            request.event.succeed(result)
            if self.monitor is not None:
                self.monitor.counter(f"art.completed.{request.tag}").add(1)
                self.monitor.series("art.service_time").record(
                    request.completed_at - request.issued_at
                )

    def __repr__(self) -> str:
        return (
            f"<AsyncRequestManager node={self.node.node_id} "
            f"threads={self.max_threads} outstanding={len(self.outstanding)}>"
        )
