"""RPC endpoints between nodes over the mesh.

Every node owns an :class:`RPCEndpoint`.  A client calls
``yield from endpoint.call(server_endpoint, request)``; the request
message crosses the mesh, the server's dispatcher runs the registered
handler (a generator, so it can perform disk I/O), and the reply crosses
the mesh back.  Handlers run one process per request -- the Paragon OS
server is multithreaded, so requests from different clients are serviced
concurrently, contending only on real resources (CPU, disks, bus).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Type

from repro.hardware.mesh import Mesh, MeshMessage
from repro.hardware.node import Node
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import get_tracer
from repro.paragonos.messages import RPCMessage
from repro.sim import Environment, Store
from repro.obs.monitor import Monitor


class RPCError(Exception):
    """Raised when a handler fails or no handler is registered."""


class _Envelope:
    """Internal wrapper pairing a request with its reply event."""

    __slots__ = ("request", "reply_event", "source")

    def __init__(self, request: RPCMessage, reply_event, source: "RPCEndpoint") -> None:
        self.request = request
        self.reply_event = reply_event
        self.source = source


class RPCEndpoint:
    """Message endpoint bound to one node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        mesh: Mesh,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.mesh = mesh
        self.monitor = monitor
        self.tracer = get_tracer(monitor)
        self._inbox: Store = Store(env)
        self._handlers: Dict[Type[RPCMessage], Callable[..., Generator]] = {}
        self._dispatcher = env.process(
            self._dispatch_loop(), name=f"rpc-dispatch-{node.node_id}"
        )
        get_telemetry(monitor).register_probe(
            "rpc_inbox_depth",
            lambda: float(len(self._inbox.items)),
            labels={"node": str(node.node_id)},
            help="Requests delivered but not yet picked up by the dispatcher",
        )

    def register(
        self, request_type: Type[RPCMessage], handler: Callable[..., Generator]
    ) -> None:
        """Register *handler* (a generator function) for *request_type*.

        The handler is called as ``handler(request)`` and must return the
        reply message.
        """
        self._handlers[request_type] = handler

    # -- client side -----------------------------------------------------------

    def call(self, target: "RPCEndpoint", request: RPCMessage):
        """Generator: send *request* to *target*, wait for and return the reply."""
        span = self.tracer.begin(
            "rpc_call",
            ctx=request.ctx,
            node_id=self.node.node_id,
            msg=type(request).__name__,
            target=target.node.node_id,
        )
        if span.ctx is not None:
            # Downstream work (server handler, disk) parents under the call.
            request.ctx = span.ctx
        reply_event = self.env.event()
        envelope = _Envelope(request, reply_event, self)
        yield from self.mesh.send(
            MeshMessage(
                src=self.node.position,
                dst=target.node.position,
                size_bytes=request.wire_bytes,
                payload=envelope,
                ctx=request.ctx,
            )
        )
        yield target._inbox.put(envelope)
        reply = yield reply_event
        self.tracer.end(span)
        if self.monitor is not None:
            self.monitor.counter("rpc.calls").add(1)
        return reply

    # -- server side -------------------------------------------------------------

    def _dispatch_loop(self):
        while True:
            envelope = yield self._inbox.get()
            self.env.process(
                self._serve(envelope),
                name=f"rpc-serve-{self.node.node_id}-{envelope.request.msg_id}",
            )

    def _serve(self, envelope: _Envelope):
        request = envelope.request
        handler = self._handlers.get(type(request))
        if handler is None:
            envelope.reply_event.fail(
                RPCError(
                    f"node {self.node.node_id} has no handler for "
                    f"{type(request).__name__}"
                )
            )
            return
        try:
            reply = yield from handler(request)
        except Exception as exc:  # propagate handler failure to the caller
            envelope.reply_event.fail(RPCError(str(exc)))
            return
        # Ship the reply back across the mesh before waking the caller.
        yield from self.mesh.send(
            MeshMessage(
                src=self.node.position,
                dst=envelope.source.node.position,
                size_bytes=reply.wire_bytes if reply is not None else 0,
                payload=reply,
                ctx=request.ctx,
            )
        )
        envelope.reply_event.succeed(reply)
        if self.monitor is not None:
            self.monitor.counter("rpc.served").add(1)

    def __repr__(self) -> str:
        return f"<RPCEndpoint node={self.node.node_id}>"
