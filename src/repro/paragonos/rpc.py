"""RPC endpoints between nodes over the mesh.

Every node owns an :class:`RPCEndpoint`.  A client calls
``yield from endpoint.call(server_endpoint, request)``; the request
message crosses the mesh, the server's dispatcher runs the registered
handler (a generator, so it can perform disk I/O), and the reply crosses
the mesh back.  Handlers run one process per request -- the Paragon OS
server is multithreaded, so requests from different clients are serviced
concurrently, contending only on real resources (CPU, disks, bus).

Fault tolerance (active only when the machine runs with a
:class:`~repro.faults.plan.FaultPlan`): calls carry a per-request reply
timeout with bounded exponential backoff; on timeout the *same* request
object -- hence the same idempotent ``msg_id`` -- is retransmitted.  The
server deduplicates by ``(source node, msg_id)``: a retransmit of an
in-flight request coalesces onto the running handler, and a retransmit
of a completed one replays the cached reply without re-executing the
handler (so side-effectful work is applied at most once).  A call whose
budget is exhausted raises
:class:`~repro.faults.plan.FaultBudgetExceeded` carrying the trace span
chain.  Handler *errors* are not retried -- they are deterministic
outcomes, not lost messages -- preserving the fault-free semantics.

The inbox is an :class:`~repro.sim.ArbitratedStore`: same-timestamp
request arrivals (natural under retry storms) are admitted in canonical
key order, keeping faulty runs bit-identical under either tie-break.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional, Tuple, Type

from repro.hardware.mesh import Mesh, MeshMessage
from repro.hardware.node import Node
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import get_tracer
from repro.paragonos.messages import RPCMessage
from repro.sim import ArbitratedStore, Environment
from repro.obs.monitor import Monitor

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector


class RPCError(Exception):
    """Raised when a handler fails or no handler is registered."""


class _Envelope:
    """Internal wrapper pairing a request with its reply event."""

    __slots__ = ("request", "reply_event", "source")

    def __init__(self, request: RPCMessage, reply_event, source: "RPCEndpoint") -> None:
        self.request = request
        self.reply_event = reply_event
        self.source = source


def _defuse_late_failure(event) -> None:
    """Keep an abandoned reply event's late failure from crashing the sim.

    A timed-out attempt's reply event may still be failed by the server
    afterwards; nobody waits on it any more, so mark it defused.  Added
    at creation time, this callback runs before any later-constructed
    condition's check -- and defusing does not stop a *pending* AnyOf
    from failing, so handler errors raised before the timeout still
    propagate to the caller.
    """
    if not event._ok:
        event.defused = True


class RPCEndpoint:
    """Message endpoint bound to one node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        mesh: Mesh,
        monitor: Optional[Monitor] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.mesh = mesh
        self.monitor = monitor
        self.faults = faults
        self.tracer = get_tracer(monitor)
        self._inbox: ArbitratedStore = ArbitratedStore(env)
        self._handlers: Dict[Type[RPCMessage], Callable[..., Generator]] = {}
        #: Idempotency log: (source node, msg_id) -> state.  Only
        #: populated when a fault plan is active (no cost otherwise).
        self._request_log: Dict[Tuple[int, int], Dict] = {}
        #: Optional ``() -> bool`` predicate: True while this endpoint's
        #: node is crashed.  Checked in the retry loop so a dead node's
        #: in-flight calls raise :class:`NodeCrashed` instead of
        #: retrying, and late replies to a dead node are ignored.
        self.halted_fn: Optional[Callable[[], bool]] = None
        self._dispatcher = env.process(self._dispatch_loop(), name=f"rpc-dispatch-{node.node_id}")
        get_telemetry(monitor).register_probe(
            "rpc_inbox_depth",
            lambda: float(len(self._inbox.items)),
            labels={"node": str(node.node_id)},
            help="Requests delivered but not yet picked up by the dispatcher",
        )

    def register(self, request_type: Type[RPCMessage], handler: Callable[..., Generator]) -> None:
        """Register *handler* (a generator function) for *request_type*.

        The handler is called as ``handler(request)`` and must return the
        reply message.
        """
        self._handlers[request_type] = handler

    # -- client side -----------------------------------------------------------

    def call(self, target: "RPCEndpoint", request: RPCMessage):
        """Generator: send *request* to *target*, wait for and return the reply."""
        span = self.tracer.begin(
            "rpc_call",
            ctx=request.ctx,
            node_id=self.node.node_id,
            msg=type(request).__name__,
            target=target.node.node_id,
        )
        if span.ctx is not None:
            # Downstream work (server handler, disk) parents under the call.
            request.ctx = span.ctx
        if self.faults is None:
            reply = yield from self._call_once(target, request)
            self.tracer.end(span)
        else:
            reply = yield from self._call_with_retries(target, request, span)
        if self.monitor is not None:
            self.monitor.counter("rpc.calls").add(1)
        return reply

    # fast-path -- single attempt with no retry timer; only legal when no fault plan can stall or drop the call
    def _call_once(self, target: "RPCEndpoint", request: RPCMessage):
        """Fault-free fast path: single attempt, wait forever."""
        reply_event = self.env.event()
        envelope = _Envelope(request, reply_event, self)
        yield from self._transmit(target, request, envelope)
        reply = yield reply_event
        return reply

    def _call_with_retries(self, target: "RPCEndpoint", request: RPCMessage, span):
        """Timeout + bounded exponential backoff with idempotent msg_id."""
        policy = self.faults.plan.retry
        timeouts: List[float] = []
        for attempt in range(policy.max_attempts):
            if self.halted_fn is not None and self.halted_fn():
                self.tracer.end(span, attempts=attempt, outcome="node_crashed")
                raise self._node_crashed(request)
            attempt_span = self.tracer.begin(
                "rpc_attempt",
                ctx=span.ctx,
                node_id=self.node.node_id,
                msg=type(request).__name__,
                attempt=attempt,
            )
            reply_event = self.env.event()
            # The server may fail this event after we have timed out and
            # moved on; defuse such late failures (see helper docstring).
            reply_event.callbacks.append(_defuse_late_failure)
            envelope = _Envelope(request, reply_event, self)
            yield from self._transmit(target, request, envelope)
            limit = policy.timeout_for(attempt)
            timeouts.append(limit)
            timeout_event = self.env.timeout(limit)
            outcome = yield self.env.any_of([reply_event, timeout_event])
            if reply_event in outcome:
                if self.halted_fn is not None and self.halted_fn():
                    # The reply arrived while the node was down: a dead
                    # node cannot consume it.  The server's idempotency
                    # log replays it when the restarted node re-asks.
                    self.tracer.end(attempt_span, outcome="node_crashed")
                    self.tracer.end(span, attempts=attempt + 1, outcome="node_crashed")
                    raise self._node_crashed(request)
                reply = outcome[reply_event]
                self.tracer.end(attempt_span, outcome="reply")
                self.tracer.end(span, attempts=attempt + 1)
                return reply
            self.tracer.end(attempt_span, outcome="timeout")
            if self.monitor is not None:
                self.monitor.counter("rpc.retries").add(1)
        self.tracer.end(span, attempts=policy.max_attempts, outcome="budget_exceeded")
        from repro.faults.plan import FaultBudgetExceeded
        from repro.obs.trace import NOOP_SPAN

        chain = [] if span is NOOP_SPAN else [span] + self.tracer.ancestors(span)
        raise FaultBudgetExceeded(
            f"RPC {type(request).__name__} msg_id={request.msg_id} from node "
            f"{self.node.node_id} to node {target.node.node_id} got no reply "
            f"after {policy.max_attempts} attempts (timeouts: {timeouts})",
            span_chain=chain,
            attempts=timeouts,
        )

    def _node_crashed(self, request: RPCMessage):
        from repro.faults.plan import NodeCrashed

        return NodeCrashed(
            f"node {self.node.node_id} crashed with RPC "
            f"{type(request).__name__} msg_id={request.msg_id} in flight"
        )

    def _transmit(self, target: "RPCEndpoint", request: RPCMessage, envelope):
        """Carry one attempt across the mesh and into the target inbox."""
        message = MeshMessage(
            src=self.node.position,
            dst=target.node.position,
            size_bytes=request.wire_bytes,
            payload=envelope,
            ctx=request.ctx,
        )
        yield from self.mesh.send(message)
        if message.dropped:
            # Lost after occupying its route; the retry timeout recovers.
            return
        if self.faults is None:
            # Admission into an unbounded inbox cannot block and nothing
            # can drop or duplicate the message: fire and forget (the
            # put still settles in canonical key order).
            target._inbox.put(envelope)
            return
        yield target._inbox.put(envelope)
        if message.duplicated:
            yield target._inbox.put(envelope)

    # -- server side -------------------------------------------------------------

    def _dispatch_loop(self):
        while True:
            envelope = yield self._inbox.get()
            self.env.process(
                self._serve(envelope),
                name=f"rpc-serve-{self.node.node_id}-{envelope.request.msg_id}",
            )

    def _serve(self, envelope: _Envelope):
        request = envelope.request
        handler = self._handlers.get(type(request))
        if handler is None:
            envelope.reply_event.fail(
                RPCError(
                    f"node {self.node.node_id} has no handler for "
                    f"{type(request).__name__}"
                )
            )
            return
        entry = None
        if self.faults is not None:
            key = (envelope.source.node.node_id, request.msg_id)
            entry = self._request_log.get(key)
            if entry is not None:
                if entry["state"] == "in-flight":
                    # Retransmit (or duplicate) of a running request:
                    # coalesce onto the in-flight handler's reply.
                    if envelope not in entry["envelopes"]:
                        entry["envelopes"].append(envelope)
                    if self.monitor is not None:
                        self.monitor.counter("rpc.duplicates_coalesced").add(1)
                    return
                # Completed: replay the cached reply, never re-execute.
                if self.monitor is not None:
                    self.monitor.counter("rpc.replays").add(1)
                yield from self._send_reply(envelope, entry["reply"])
                return
            entry = {"state": "in-flight", "envelopes": [envelope], "reply": None}
            self._request_log[key] = entry
            stall = self.faults.decide("rpc_stall", f"node{self.node.node_id}")
            if stall is not None:
                if self.monitor is not None:
                    self.monitor.counter("rpc.stalls").add(1)
                yield self.env.timeout(stall.duration_s)
        try:
            reply = yield from handler(request)
        except Exception as exc:  # propagate handler failure to the caller
            if entry is not None:
                # A handler error is a deterministic outcome, not a lost
                # message: drop the log entry so a retransmit re-raises.
                del self._request_log[(envelope.source.node.node_id, request.msg_id)]
                for env_ in entry["envelopes"]:
                    if not env_.reply_event.triggered:
                        env_.reply_event.fail(RPCError(str(exc)))
            else:
                envelope.reply_event.fail(RPCError(str(exc)))
            return
        if entry is not None:
            entry["state"] = "done"
            entry["reply"] = reply
            for env_ in entry["envelopes"]:
                yield from self._send_reply(env_, reply)
        else:
            yield from self._send_reply(envelope, reply)
        if self.monitor is not None:
            self.monitor.counter("rpc.served").add(1)

    def _send_reply(self, envelope: _Envelope, reply):
        """Ship the reply back across the mesh before waking the caller."""
        message = MeshMessage(
            src=self.node.position,
            dst=envelope.source.node.position,
            size_bytes=reply.wire_bytes if reply is not None else 0,
            payload=reply,
            ctx=envelope.request.ctx,
        )
        yield from self.mesh.send(message)
        if message.dropped:
            # Reply lost in the mesh; the caller times out and the
            # retransmit is answered from the idempotency log.
            return
        if not envelope.reply_event.triggered:
            envelope.reply_event.succeed(reply)

    def __repr__(self) -> str:
        return f"<RPCEndpoint node={self.node.node_id}>"
