"""Configuration dataclasses for building simulated machines.

The defaults describe the paper's testbed: 8 compute nodes, 8 I/O nodes
(one SCSI-8 RAID-3 array each), 64KB file-system blocks, default stripe
factor 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.plan import FaultPlan
from repro.hardware.params import HardwareParams

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class MachineConfig:
    """Shape and constants of one simulated Paragon."""

    #: Number of compute nodes running the application.
    n_compute: int = 8
    #: Number of I/O nodes, each with one RAID-3 array.
    n_io: int = 8
    #: PFS file-system block size ("The default block size was 64KB").
    block_size: int = 64 * KB
    #: I/O-node buffer cache capacity in blocks (used only by buffered
    #: mounts; Fast Path bypasses it).
    cache_blocks: int = 128
    #: ART pool size per compute node.
    art_threads: int = 4
    #: Coalesce contiguous file-system blocks into single disk requests
    #: on the UFS read/write paths ("contiguous file-system blocks are
    #: coalesced").  False issues one disk request per block -- the
    #: ablation observatory's handle on this mechanism.
    ufs_coalesce: bool = True
    #: LOOK elevator scheduling on the RAID-3 arrays.  False falls back
    #: to FIFO dispatch in arrival order -- the ablation observatory's
    #: handle on the disk scheduler.
    disk_elevator: bool = True
    #: Server-side readahead depth in blocks (0 = off).  Applies only to
    #: buffered mounts; the I/O-node alternative to client prefetching.
    server_readahead_blocks: int = 0
    #: Write-back caching on buffered mounts: writes return once the data
    #: is in the I/O-node cache; the disk write is deferred to the sync
    #: daemon / flush.  False = write-through (safer, slower).
    write_back: bool = False
    #: Sync-daemon flush interval (only started when write_back is on).
    sync_interval_s: float = 30.0
    #: Record request-scoped spans on ``machine.obs.tracer``.  Off by
    #: default; tracing never schedules events, so enabling it does not
    #: change simulated time (results stay bit-identical).
    trace: bool = False
    #: Sample per-resource time-series metrics on ``machine.obs.telemetry``.
    #: Off by default; the sampler observes the event loop via a tick hook
    #: and never schedules events, so results stay bit-identical.
    telemetry: bool = False
    #: Telemetry sampler cadence in simulated seconds.
    telemetry_interval_s: float = 0.05
    #: Client prefetch policy built by :meth:`Machine.build_prefetcher`
    #: for workload prefetchers: "one-ahead" (the paper's prototype),
    #: "none", "depth-k", "strided", or "adaptive" (per-file depth
    #: controller).  The default keeps runs bit-identical to the seed.
    prefetch_policy: str = "one-ahead"
    #: Pipeline depth for depth-aware policies (initial depth for
    #: "adaptive"; 1 = the paper's one-request-ahead).
    prefetch_depth: int = 1
    #: Cap on outstanding prefetch bytes per handle (None = bounded only
    #: by compute-node memory).
    prefetch_quota_bytes: Optional[int] = None
    #: Attach a per-handle stride detector to depth-aware policies so
    #: lseek-strided M_ASYNC streams are predicted from the observed
    #: access history instead of the (wrong) mode arithmetic.
    prefetch_stride_detect: bool = True
    #: Online tuner (:mod:`repro.core.tuner`): retunes prefetch depth /
    #: buffer quota / request size at simulated-time intervals.  Off by
    #: default; the tuner schedules no events and installs no hooks, so
    #: tuner-off runs are bit-identical to a build without it.
    tuner: bool = False
    #: Tuner evaluation cadence in simulated seconds.
    tuner_interval_s: float = 0.05
    #: Tie-break order among same-timestamp events ("fifo" or "lifo").
    #: Results must be identical under either -- the tie-order race
    #: sanitizer (:func:`repro.analysis.sanitizers.check_tie_order`) runs
    #: an experiment under both and diffs the reports.
    tie_break: str = "fifo"
    #: Deterministic fault plan (:mod:`repro.faults`).  None (default)
    #: means the fault plane is entirely inert -- no extra events, no
    #: retry bookkeeping -- and results are bit-identical to a build
    #: without it (locked by the golden fingerprint regression test).
    faults: Optional[FaultPlan] = None
    #: Hardware constants.
    hardware: HardwareParams = field(default_factory=HardwareParams)

    def __post_init__(self) -> None:
        if self.n_compute <= 0:
            raise ValueError("need at least one compute node")
        if self.n_io <= 0:
            raise ValueError("need at least one I/O node")
        if self.block_size <= 0:
            raise ValueError("block size must be positive")
        if self.telemetry_interval_s <= 0:
            raise ValueError("telemetry interval must be positive")
        from repro.core.policies import POLICY_NAMES

        if self.prefetch_policy not in POLICY_NAMES:
            raise ValueError(
                f"prefetch_policy must be one of {POLICY_NAMES}, got {self.prefetch_policy!r}"
            )
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative")
        if self.prefetch_quota_bytes is not None and self.prefetch_quota_bytes <= 0:
            raise ValueError("prefetch_quota_bytes must be positive (or None)")
        if self.tuner_interval_s <= 0:
            raise ValueError("tuner interval must be positive")
        if self.tie_break not in ("fifo", "lifo"):
            raise ValueError("tie_break must be 'fifo' or 'lifo'")
        if self.faults is not None:
            self._validate_fault_targets()

    @classmethod
    def sized(cls, total_nodes: int, **overrides) -> "MachineConfig":
        """A config for a *total_nodes*-node machine, split half compute /
        half I/O (the paper's 8+8 shape, scaled to the 16..2048-node
        meshes the multi-tenant scenarios sweep).  ``total_nodes`` counts
        compute + I/O nodes; the service node rides along for free.
        Explicit ``n_compute``/``n_io`` overrides win.
        """
        if total_nodes < 2:
            raise ValueError("need at least 2 nodes (1 compute + 1 I/O)")
        n_io = total_nodes // 2
        overrides.setdefault("n_compute", total_nodes - n_io)
        overrides.setdefault("n_io", n_io)
        return cls(**overrides)

    def _validate_fault_targets(self) -> None:
        """Concrete fault targets must fit this machine's shape.

        Catches raid/node indices past the configured counts at config
        time rather than as silently-never-firing specs ("*" targets and
        mesh links are exempt -- the mesh is sized from the node counts).
        Raises :class:`~repro.faults.plan.FaultError`, the same error the
        runtime raises for unknown targets it catches later.
        """
        from repro.faults.plan import (
            NODE_LIFECYCLE_KINDS,
            SCHEDULED_KINDS,
            FaultError,
        )

        for spec in self.faults.specs:
            target = spec.target
            for kinds, prefix, limit, what in (
                (SCHEDULED_KINDS, "raid", self.n_io, "I/O"),
                (NODE_LIFECYCLE_KINDS, "node", self.n_compute, "compute"),
            ):
                if spec.kind not in kinds:
                    continue
                suffix = target[len(prefix):]
                if (target.startswith(prefix) and suffix.isdigit() and int(suffix) >= limit):
                    raise FaultError(
                        f"{spec.kind} targets {target!r} but the machine has "
                        f"only {limit} {what} nodes"
                    )


@dataclass(frozen=True)
class PFSConfig:
    """Per-mount PFS configuration."""

    #: Stripe unit in bytes (default equals the FS block size).
    stripe_unit: int = 64 * KB
    #: Stripe factor; None means "all I/O nodes".
    stripe_factor: int = 0
    #: True routes transfers through the I/O-node buffer cache; False is
    #: Fast Path I/O (the configuration the paper measures).
    buffered: bool = False

    def __post_init__(self) -> None:
        if self.stripe_unit <= 0:
            raise ValueError("stripe unit must be positive")
        if self.stripe_factor < 0:
            raise ValueError("stripe factor must be non-negative (0 = all)")
