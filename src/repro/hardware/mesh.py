"""2D wormhole-routed mesh interconnect.

The Paragon backplane is a 2D mesh with XY (dimension-ordered) routing.
We model each directed link as a unit-capacity resource.  A message
reserves the links along its XY route one at a time in path order (the
way a worm's header flit advances), then holds the whole path while the
body streams through at link bandwidth.  Dimension-ordered acquisition
keeps the model deadlock-free, exactly as it does for the hardware.

On the real machine the mesh (175 MB/s links) is never the I/O
bottleneck -- the disks are three orders of magnitude slower -- but
modelling it keeps scaling studies honest and charges the per-message
software overhead that makes many small requests expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.hardware.params import MeshParams

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import get_tracer
from repro.sim import ArbitratedResource, Environment
from repro.sim.events import Event, Timeout
from repro.obs.monitor import Monitor

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


@dataclass(slots=True)
class MeshMessage:
    """A message in flight on the mesh."""

    src: Coord
    dst: Coord
    size_bytes: int
    payload: Any = None
    enqueued_at: float = 0.0
    delivered_at: float = field(default=0.0)
    #: Trace context of the causing span (None when untraced).
    ctx: Any = None
    #: Set by fault injection: the message occupied its route but was
    #: lost (the sender must not act on it having arrived).
    dropped: bool = False
    #: Set by fault injection: the message was delivered twice.
    duplicated: bool = False


# fast-path: requires=faults,tracer,telemetry -- callback worm skips per-hop generator resumes; legal only when nothing observes the interior
class _FastWorm:
    """Event-callback worm: one mesh transmission without a generator.

    The stepped/merged ``Mesh.send`` body resumes the *caller's whole
    generator chain* once per hop grant just to request the next link.
    When nothing can observe the interior of a transmission (no fault
    plan, no trace span, no telemetry probe), this state machine drives
    the identical event sequence -- same software-overhead timeout, same
    per-hop merged grants at the same times with the same queue ids --
    through flat callbacks, and wakes the caller exactly once.

    The caller waits on ``proxy``, an event that is never scheduled: the
    final grant's pop runs :meth:`advance` -> :meth:`_finish`, which
    invokes the proxy's callbacks synchronously on that same pop --
    exactly when the generator version would have resumed the caller.
    """

    __slots__ = (
        "mesh",
        "message",
        "pairs",
        "route_key",
        "per_hop",
        "body_time",
        "idx",
        "requests",
        "granted",
        "requested_at",
        "body_waited",
        "proxy",
    )

    def __init__(self, mesh: "Mesh", message: MeshMessage, proxy: Event) -> None:
        self.mesh = mesh
        self.message = message
        self.proxy = proxy
        p = mesh.params
        self.pairs = mesh._route_pairs(message.src, message.dst)
        self.route_key = (message.src, message.dst)
        self.per_hop = p.per_hop_s
        self.body_time = message.size_bytes / p.link_bandwidth_bps
        self.idx = -1
        self.requests: list = []
        self.granted: list = []
        self.requested_at = 0.0
        self.body_waited = False
        # Software send overhead: the same Timeout the generator path
        # yields first, with the worm itself as the continuation.
        sw = Timeout(mesh.env, p.sw_overhead_s)
        sw.callbacks.append(self.advance)

    def advance(self, event: Event) -> None:
        """Continuation run by each hop's merged grant (and the sw timeout)."""
        mesh = self.mesh
        env = mesh.env
        idx = self.idx
        if idx < 0:
            mesh._in_flight += 1
        else:
            granted_at = event._value
            if granted_at is None:
                granted_at = env._now
            mesh.wait_s += granted_at - self.requested_at
            self.granted.append(granted_at)
        pairs = self.pairs
        nxt = idx + 1
        self.idx = nxt
        last = len(pairs) - 1
        if nxt <= last:
            res = pairs[nxt][1]
            delay = (self.per_hop, self.body_time) if nxt == last else self.per_hop
            self.requested_at = env._now
            req = res.request(  # sim-ok: R005 -- every hold is released in _finish, which runs on the final grant of this same worm
                key=self.route_key, resume_delay=delay
            )
            self.requests.append(req)
            req.callbacks.append(self.advance)
            return
        if last < 0 and self.body_time > 0 and not self.body_waited:
            # Zero-hop message: stream the body with a plain timeout.
            self.body_waited = True
            body = Timeout(env, self.body_time)
            body.callbacks.append(self.advance)
            return
        self._finish(env)

    def _finish(self, env: Environment) -> None:
        mesh = self.mesh
        pairs = self.pairs
        released_at = env._now
        requests = self.requests
        for i in range(len(pairs)):
            pairs[i][1].release(requests[i])
        busy = mesh._link_busy_s
        granted = self.granted
        for i in range(len(pairs)):
            link = pairs[i][0]
            busy[link] = busy.get(link, 0.0) + (released_at - granted[i])
        mesh._in_flight -= 1
        message = self.message
        message.delivered_at = released_at
        if mesh._c_messages is not None:
            mesh._c_messages.add(1)
            mesh._c_bytes.add(message.size_bytes)
            mesh._s_latency.record(released_at - message.enqueued_at)
        # Wake the caller on this same event pop (no extra event), just
        # as the generator version's single resume would have.
        proxy = self.proxy
        proxy._ok = True
        proxy._value = message
        callbacks = proxy.callbacks
        proxy.callbacks = None
        for callback in callbacks:
            callback(proxy)


class Mesh:
    """A ``width`` x ``height`` 2D mesh of nodes."""

    def __init__(
        self,
        env: Environment,
        width: int,
        height: int,
        params: Optional[MeshParams] = None,
        monitor: Optional[Monitor] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("mesh dimensions must be positive")
        self.env = env
        self.width = width
        self.height = height
        self.params = params or MeshParams()
        self.monitor = monitor
        self.faults = faults
        self.tracer = get_tracer(monitor)
        self._links: Dict[Link, ArbitratedResource] = {}
        #: (src, dst) -> [(link, link resource), ...] -- XY routes are
        #: static, so each pair's route is computed and resolved once.
        self._route_cache: Dict[Tuple[Coord, Coord], List[Tuple[Link, ArbitratedResource]]] = {}
        #: Per-directed-link seconds held by a streaming worm.
        self._link_busy_s: Dict[Link, float] = {}
        #: Total seconds senders spent blocked on link acquisition
        #: (contention: zero on an idle mesh by construction).
        self.wait_s = 0.0
        self._in_flight = 0
        # Hot-path monitor objects, resolved once instead of per message.
        if monitor is not None:
            self._c_messages = monitor.counter("mesh.messages")
            self._c_bytes = monitor.counter("mesh.bytes")
            self._s_latency = monitor.series("mesh.latency")
        else:
            self._c_messages = None
        self.telemetry = get_telemetry(monitor)
        #: Merged per-hop grants collapse each link's grant + hold
        #: timeout into one scheduled event.  Timing-identical, but the
        #: sender's ``wait_s`` bookkeeping then lands at the end of the
        #: hold instead of at the grant -- observable only by a telemetry
        #: sampler, so the merge is disabled when telemetry is on (the
        #: ISSUE's "probe overlaps the batch" fallback).
        self._merge_grants = not self.telemetry.enabled
        #: Callback-worm transmissions (see :class:`_FastWorm`): same
        #: event sequence as the merged path but without per-hop
        #: generator resumes.  Requires that nothing can observe or
        #: perturb a transmission's interior: fault plans decide
        #: drop/duplicate at delivery and trace spans record hop
        #: interiors, so both fall back to the generator paths.
        self._fast_sends = faults is None and not self.tracer.enabled and self._merge_grants
        self.telemetry.register_probe(
            "mesh_wait_seconds",
            lambda: self.wait_s,
            help="Cumulative seconds senders blocked on busy links (contention)",
            kind="counter",
        )
        self.telemetry.register_probe(
            "mesh_messages_in_flight",
            lambda: float(self._in_flight),
            help="Messages currently crossing the mesh",
        )

    # -- topology ---------------------------------------------------------

    def contains(self, coord: Coord) -> bool:
        x, y = coord
        return 0 <= x < self.width and 0 <= y < self.height

    def route(self, src: Coord, dst: Coord) -> List[Link]:
        """XY (dimension-ordered) route: X first, then Y."""
        if not self.contains(src):
            raise ValueError(f"source {src} outside {self.width}x{self.height} mesh")
        if not self.contains(dst):
            raise ValueError(f"destination {dst} outside {self.width}x{self.height} mesh")
        links: List[Link] = []
        x, y = src
        dx = 1 if dst[0] > x else -1
        while x != dst[0]:
            nxt = (x + dx, y)
            links.append(((x, y), nxt))
            x += dx
        dy = 1 if dst[1] > y else -1
        while y != dst[1]:
            nxt = (x, y + dy)
            links.append(((x, y), nxt))
            y += dy
        return links

    def hops(self, src: Coord, dst: Coord) -> int:
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    def _link(self, link: Link) -> ArbitratedResource:
        res = self._links.get(link)
        if res is None:
            # Arbitrated: two worms requesting the same link at the same
            # simulated time are ordered by (src, dst), not by event
            # insertion order -- port arbitration must not be a race.
            res = self._links[link] = ArbitratedResource(self.env, capacity=1)
            (ax, ay), (bx, by) = link
            self.telemetry.register_probe(
                "mesh_link_busy_seconds",
                lambda lk=link: self._link_busy_s.get(lk, 0.0),
                labels={"link": f"{ax},{ay}->{bx},{by}"},
                help="Seconds this directed link was held by a worm",
                kind="counter",
            )
        return res

    def _route_pairs(self, src: Coord, dst: Coord) -> List[Tuple[Link, ArbitratedResource]]:
        """Cached [(link, resource), ...] along the XY route."""
        key = (src, dst)
        pairs = self._route_cache.get(key)
        if pairs is None:
            pairs = [(link, self._link(link)) for link in self.route(src, dst)]
            self._route_cache[key] = pairs
        return pairs

    # -- transmission -------------------------------------------------------

    def transfer_time(self, src: Coord, dst: Coord, size_bytes: int) -> float:
        """Uncontended latency of a message."""
        p = self.params
        return (
            p.sw_overhead_s + self.hops(src, dst) * p.per_hop_s + size_bytes / p.link_bandwidth_bps
        )

    def send(self, message: MeshMessage):
        """Generator: transmit *message*; completes when delivered.

        Reserves the XY route link-by-link (header flit), then streams the
        body while holding the path, then releases every link.
        """
        env = self.env
        message.enqueued_at = env.now
        if message.size_bytes < 0:
            raise ValueError("message size must be non-negative")
        if self._fast_sends:
            proxy = Event(env)
            _FastWorm(self, message, proxy)
            return (yield proxy)
        p = self.params
        tracer = self.tracer
        traced = tracer.enabled
        span = None
        if traced:
            span = tracer.begin(
                "mesh_xfer",
                ctx=message.ctx,
                bytes=message.size_bytes,
                src=message.src,
                dst=message.dst,
            )

        # Software send overhead (charged regardless of distance).
        yield env.timeout(p.sw_overhead_s)

        pairs = self._route_pairs(message.src, message.dst)
        route_key = (message.src, message.dst)
        per_hop = p.per_hop_s
        body_time = message.size_bytes / p.link_bandwidth_bps
        requests = []
        acquired = []
        self._in_flight += 1
        try:
            if self._merge_grants:
                # Fast path: each link's grant + hold timeout is one
                # scheduled event (the last link also absorbs the body
                # streaming time).  Grant instants, hold windows and
                # release times are identical to the stepped path.
                last = len(pairs) - 1
                for i, (link, res) in enumerate(pairs):
                    # The tuple makes the resume time's float arithmetic
                    # identical to the stepped per-hop + body timeouts.
                    delay = (per_hop, body_time) if i == last else per_hop
                    requested_at = env.now
                    req = res.request(key=route_key, resume_delay=delay)
                    requests.append((link, res, req))
                    granted_at = yield req
                    if granted_at is None:
                        granted_at = env.now
                    self.wait_s += granted_at - requested_at
                    acquired.append((link, granted_at))
                if not pairs and body_time > 0:
                    yield env.timeout(body_time)
            else:
                for link, res in pairs:
                    req = res.request(key=route_key)
                    requests.append((link, res, req))
                    requested_at = env.now
                    yield req
                    self.wait_s += env.now - requested_at
                    acquired.append((link, env.now))
                    if per_hop > 0:
                        yield env.timeout(per_hop)
                # Path reserved end-to-end; stream the body.
                if body_time > 0:
                    yield env.timeout(body_time)
        finally:
            released_at = env.now
            for _link, res, req in requests:
                res.release(req)
            busy = self._link_busy_s
            for link, granted_at in acquired:
                busy[link] = busy.get(link, 0.0) + (released_at - granted_at)
            self._in_flight -= 1

        message.delivered_at = env.now
        if self.faults is not None:
            # Window-triggered only (see repro.faults.plan): same-time
            # sends have no canonical global order, so drop/dup decisions
            # depend on sim time alone and are tie-break-invariant.  The
            # worm still paid full route occupancy + streaming time.
            pair = f"{message.src[0]},{message.src[1]}->" f"{message.dst[0]},{message.dst[1]}"
            if self.faults.decide("mesh_drop", pair) is not None:
                message.dropped = True
            elif self.faults.decide("mesh_dup", pair) is not None:
                message.duplicated = True
            if traced:
                tracer.end(span, dropped=message.dropped, duplicated=message.duplicated)
        elif traced:
            tracer.end(span)
        if self._c_messages is not None:
            self._c_messages.add(1)
            self._c_bytes.add(message.size_bytes)
            self._s_latency.record(message.delivered_at - message.enqueued_at)
        return message

    def __repr__(self) -> str:
        return f"<Mesh {self.width}x{self.height}>"
