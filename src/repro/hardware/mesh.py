"""2D wormhole-routed mesh interconnect.

The Paragon backplane is a 2D mesh with XY (dimension-ordered) routing.
We model each directed link as a unit-capacity resource.  A message
reserves the links along its XY route one at a time in path order (the
way a worm's header flit advances), then holds the whole path while the
body streams through at link bandwidth.  Dimension-ordered acquisition
keeps the model deadlock-free, exactly as it does for the hardware.

On the real machine the mesh (175 MB/s links) is never the I/O
bottleneck -- the disks are three orders of magnitude slower -- but
modelling it keeps scaling studies honest and charges the per-message
software overhead that makes many small requests expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.hardware.params import MeshParams

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import get_tracer
from repro.sim import ArbitratedResource, Environment
from repro.obs.monitor import Monitor

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


@dataclass
class MeshMessage:
    """A message in flight on the mesh."""

    src: Coord
    dst: Coord
    size_bytes: int
    payload: Any = None
    enqueued_at: float = 0.0
    delivered_at: float = field(default=0.0)
    #: Trace context of the causing span (None when untraced).
    ctx: Any = None
    #: Set by fault injection: the message occupied its route but was
    #: lost (the sender must not act on it having arrived).
    dropped: bool = False
    #: Set by fault injection: the message was delivered twice.
    duplicated: bool = False


class Mesh:
    """A ``width`` x ``height`` 2D mesh of nodes."""

    def __init__(
        self,
        env: Environment,
        width: int,
        height: int,
        params: Optional[MeshParams] = None,
        monitor: Optional[Monitor] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("mesh dimensions must be positive")
        self.env = env
        self.width = width
        self.height = height
        self.params = params or MeshParams()
        self.monitor = monitor
        self.faults = faults
        self.tracer = get_tracer(monitor)
        self._links: Dict[Link, ArbitratedResource] = {}
        #: Per-directed-link seconds held by a streaming worm.
        self._link_busy_s: Dict[Link, float] = {}
        #: Total seconds senders spent blocked on link acquisition
        #: (contention: zero on an idle mesh by construction).
        self.wait_s = 0.0
        self._in_flight = 0
        self.telemetry = get_telemetry(monitor)
        self.telemetry.register_probe(
            "mesh_wait_seconds", lambda: self.wait_s,
            help="Cumulative seconds senders blocked on busy links (contention)",
            kind="counter",
        )
        self.telemetry.register_probe(
            "mesh_messages_in_flight", lambda: float(self._in_flight),
            help="Messages currently crossing the mesh",
        )

    # -- topology ---------------------------------------------------------

    def contains(self, coord: Coord) -> bool:
        x, y = coord
        return 0 <= x < self.width and 0 <= y < self.height

    def route(self, src: Coord, dst: Coord) -> List[Link]:
        """XY (dimension-ordered) route: X first, then Y."""
        if not self.contains(src):
            raise ValueError(f"source {src} outside {self.width}x{self.height} mesh")
        if not self.contains(dst):
            raise ValueError(f"destination {dst} outside {self.width}x{self.height} mesh")
        links: List[Link] = []
        x, y = src
        dx = 1 if dst[0] > x else -1
        while x != dst[0]:
            nxt = (x + dx, y)
            links.append(((x, y), nxt))
            x += dx
        dy = 1 if dst[1] > y else -1
        while y != dst[1]:
            nxt = (x, y + dy)
            links.append(((x, y), nxt))
            y += dy
        return links

    def hops(self, src: Coord, dst: Coord) -> int:
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    def _link(self, link: Link) -> ArbitratedResource:
        res = self._links.get(link)
        if res is None:
            # Arbitrated: two worms requesting the same link at the same
            # simulated time are ordered by (src, dst), not by event
            # insertion order -- port arbitration must not be a race.
            res = self._links[link] = ArbitratedResource(self.env, capacity=1)
            (ax, ay), (bx, by) = link
            self.telemetry.register_probe(
                "mesh_link_busy_seconds",
                lambda lk=link: self._link_busy_s.get(lk, 0.0),
                labels={"link": f"{ax},{ay}->{bx},{by}"},
                help="Seconds this directed link was held by a worm",
                kind="counter",
            )
        return res

    # -- transmission -------------------------------------------------------

    def transfer_time(self, src: Coord, dst: Coord, size_bytes: int) -> float:
        """Uncontended latency of a message."""
        p = self.params
        return (
            p.sw_overhead_s
            + self.hops(src, dst) * p.per_hop_s
            + size_bytes / p.link_bandwidth_bps
        )

    def send(self, message: MeshMessage):
        """Generator: transmit *message*; completes when delivered.

        Reserves the XY route link-by-link (header flit), then streams the
        body while holding the path, then releases every link.
        """
        env = self.env
        message.enqueued_at = env.now
        if message.size_bytes < 0:
            raise ValueError("message size must be non-negative")
        p = self.params
        span = self.tracer.begin(
            "mesh_xfer",
            ctx=message.ctx,
            bytes=message.size_bytes,
            src=message.src,
            dst=message.dst,
        )

        # Software send overhead (charged regardless of distance).
        yield env.timeout(p.sw_overhead_s)

        links = self.route(message.src, message.dst)
        requests = []
        acquired = []
        self._in_flight += 1
        try:
            for link in links:
                req = self._link(link).request(key=(message.src, message.dst))
                requests.append((link, req))
                requested_at = env.now
                yield req
                self.wait_s += env.now - requested_at
                acquired.append((link, env.now))
                if p.per_hop_s > 0:
                    yield env.timeout(p.per_hop_s)
            # Path reserved end-to-end; stream the body.
            body_time = message.size_bytes / p.link_bandwidth_bps
            if body_time > 0:
                yield env.timeout(body_time)
        finally:
            released_at = env.now
            for link, req in requests:
                self._link(link).release(req)
            for link, granted_at in acquired:
                self._link_busy_s[link] = (
                    self._link_busy_s.get(link, 0.0) + (released_at - granted_at)
                )
            self._in_flight -= 1

        message.delivered_at = env.now
        if self.faults is not None:
            # Window-triggered only (see repro.faults.plan): same-time
            # sends have no canonical global order, so drop/dup decisions
            # depend on sim time alone and are tie-break-invariant.  The
            # worm still paid full route occupancy + streaming time.
            pair = (
                f"{message.src[0]},{message.src[1]}->"
                f"{message.dst[0]},{message.dst[1]}"
            )
            if self.faults.decide("mesh_drop", pair) is not None:
                message.dropped = True
            elif self.faults.decide("mesh_dup", pair) is not None:
                message.duplicated = True
            self.tracer.end(
                span, dropped=message.dropped, duplicated=message.duplicated
            )
        else:
            self.tracer.end(span)
        if self.monitor is not None:
            self.monitor.counter("mesh.messages").add(1)
            self.monitor.counter("mesh.bytes").add(message.size_bytes)
            self.monitor.series("mesh.latency").record(
                message.delivered_at - message.enqueued_at
            )
        return message

    def __repr__(self) -> str:
        return f"<Mesh {self.width}x{self.height}>"
