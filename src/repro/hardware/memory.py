"""Per-node memory accounting.

A :class:`MemoryRegion` tracks allocations against a fixed capacity.  The
prefetch prototype allocates its prefetch buffers from the compute node's
memory (paper section 3: "Memory for the prefetch buffers is allocated in
the compute node"), so runaway prefetching is bounded by real capacity.

Allocation is modelled as instantaneous bookkeeping (the allocation *time*
cost is charged separately via NodeParams.buffer_alloc_overhead_s); only
capacity is enforced here.
"""

from __future__ import annotations

from typing import Dict


class OutOfMemoryError(MemoryError):
    """Raised when an allocation would exceed the region's capacity."""


class MemoryRegion:
    """Fixed-capacity memory with named allocation classes."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._by_class: Dict[str, int] = {}
        self._peak = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    @property
    def peak_bytes(self) -> int:
        return self._peak

    def used_by(self, alloc_class: str) -> int:
        """Bytes currently allocated under *alloc_class*."""
        return self._by_class.get(alloc_class, 0)

    def allocate(self, nbytes: int, alloc_class: str = "anon") -> None:
        """Allocate *nbytes*; raises :class:`OutOfMemoryError` if over."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        if self._used + nbytes > self.capacity_bytes:
            raise OutOfMemoryError(
                f"allocation of {nbytes} bytes ({alloc_class}) exceeds "
                f"capacity: {self._used}/{self.capacity_bytes} in use"
            )
        self._used += nbytes
        self._by_class[alloc_class] = self._by_class.get(alloc_class, 0) + nbytes
        if self._used > self._peak:
            self._peak = self._used

    def free(self, nbytes: int, alloc_class: str = "anon") -> None:
        """Return *nbytes* previously allocated under *alloc_class*."""
        if nbytes < 0:
            raise ValueError("cannot free a negative size")
        held = self._by_class.get(alloc_class, 0)
        if nbytes > held:
            raise ValueError(
                f"freeing {nbytes} bytes from {alloc_class!r} but only " f"{held} allocated"
            )
        self._by_class[alloc_class] = held - nbytes
        self._used -= nbytes

    def can_allocate(self, nbytes: int) -> bool:
        return self._used + nbytes <= self.capacity_bytes

    def __repr__(self) -> str:
        return f"<MemoryRegion {self._used}/{self.capacity_bytes} bytes " f"(peak {self._peak})>"
