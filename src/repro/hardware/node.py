"""Paragon node model.

A node bundles a CPU (a unit-capacity resource used to charge software
path and memory-copy time), a :class:`~repro.hardware.memory.MemoryRegion`,
and a mesh position.  Compute nodes additionally host the PFS client and
the prefetch buffer lists; I/O nodes host the PFS server, buffer cache,
UFS and disk hardware.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Tuple

from repro.hardware.memory import MemoryRegion
from repro.hardware.params import NodeParams
from repro.sim import ArbitratedResource, Environment

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event


class NodeKind(enum.Enum):
    """Functional classification of Paragon nodes (paper section 2)."""

    COMPUTE = "compute"
    IO = "io"
    SERVICE = "service"


class Node:
    """One Paragon node.

    Parameters
    ----------
    env:
        Simulation environment.
    node_id:
        Globally unique integer id.
    kind:
        Functional classification.
    position:
        (x, y) coordinates in the mesh.
    params:
        Hardware constants for the node.
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        kind: NodeKind,
        position: Tuple[int, int],
        params: Optional[NodeParams] = None,
    ) -> None:
        self.env = env
        self.node_id = int(node_id)
        self.kind = kind
        self.position = position
        self.params = params or NodeParams()
        #: The CPU(s): software path costs and memory copies serialise
        #: here (SMP nodes have capacity > 1).  Arbitrated so that two
        #: same-timestamp contenders are ordered by their causal process
        #: keys, not by event insertion order.
        self.cpu = ArbitratedResource(env, capacity=self.params.cpu_count)
        #: The message co-processor (the Paragon's second i860): incoming
        #: mesh data is landed into destination buffers here, *without*
        #: occupying the application CPU -- which is what lets a prefetch
        #: land while the application computes.
        self.msgproc = ArbitratedResource(env, capacity=1)
        self.memory = MemoryRegion(self.params.memory_bytes)
        #: Accumulated busy time (utilisation accounting).
        self.cpu_busy_s = 0.0
        self.msgproc_busy_s = 0.0

    # -- CPU time helpers (generators to be yielded from processes) ------

    def busy(self, seconds: float):
        """Occupy the CPU for *seconds* (software path, bookkeeping).

        Uses a merged grant (``resume_delay``): the CPU is held for the
        same window as a grant-then-timeout pair, with one scheduled
        event instead of two.
        """
        with self.cpu.request(resume_delay=seconds) as req:
            yield req
            if seconds > 0:
                self.cpu_busy_s += seconds

    def memcpy(self, nbytes: int):
        """Copy *nbytes* through the CPU at the calibrated memcpy rate.

        This is the cost the prefetch prototype pays on every hit: the
        prefetched block sits in a prefetch buffer and must be copied into
        the user's buffer (paper section 4.1).
        """
        if nbytes < 0:
            raise ValueError("cannot copy a negative size")
        seconds = nbytes / self.params.memcpy_bps
        yield from self.busy(seconds)

    def compute(self, seconds: float):
        """Model application computation occupying the CPU."""
        yield from self.busy(seconds)

    def receive(self, nbytes: int):
        """Land *nbytes* of incoming mesh data via the message
        co-processor (serialises with other receptions on this node, but
        not with application compute)."""
        if nbytes < 0:
            raise ValueError("cannot receive a negative size")
        seconds = nbytes / self.params.receive_bps
        with self.msgproc.request(resume_delay=seconds) as req:
            yield req
            if seconds > 0:
                self.msgproc_busy_s += seconds

    def landing_copy(self, nbytes: int):
        """Copy received data into a staging buffer (e.g. a prefetch
        buffer) on the message co-processor at memcpy speed."""
        if nbytes < 0:
            raise ValueError("cannot copy a negative size")
        seconds = nbytes / self.params.memcpy_bps
        with self.msgproc.request(resume_delay=seconds) as req:
            yield req
            if seconds > 0:
                self.msgproc_busy_s += seconds

    def __repr__(self) -> str:
        return f"<Node {self.node_id} {self.kind.value} at {self.position}>"
