"""SCSI bus model.

The bus connecting an I/O node to its RAID array.  On the calibrated
machine this is the streaming bottleneck (~3.5 MB/s effective, SCSI-8),
matching the paper's note that SCSI-16 hardware "effectively quadruples
the bandwidth available on each I/O node".

The bus is a unit-capacity resource; each transfer pays an arbitration
overhead plus size / bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.params import SCSIParams
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import TraceContext, get_tracer
from repro.sim import ArbitratedResource, Environment
from repro.obs.monitor import Monitor


class SCSIBus:
    """A shared SCSI bus."""

    def __init__(
        self,
        env: Environment,
        name: str = "scsi",
        params: Optional[SCSIParams] = None,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.params = params or SCSIParams()
        self.monitor = monitor
        self.tracer = get_tracer(monitor)
        # Arbitrated: simultaneous transfer requests are granted in
        # canonical (causal process key) order, not event-pop order.
        self._bus = ArbitratedResource(env, capacity=1)
        #: Accumulated time the bus spent transferring (utilisation).
        self.busy_s = 0.0
        #: Devices attached via :meth:`attach_client`.  The RAID
        #: closed-form fast path requires being the sole client: only
        #: then is a transfer during the arm hold provably uncontended.
        self.clients = 0
        # Hot-path counter objects, resolved once instead of per transfer.
        if monitor is not None:
            self._c_transfers = monitor.counter(f"{name}.transfers")
            self._c_bytes = monitor.counter(f"{name}.bytes")
        else:
            self._c_transfers = None
            self._c_bytes = None
        self._cause_counters = {}
        telemetry = get_telemetry(monitor)
        label = {"bus": name}
        telemetry.register_probe(
            "scsi_busy_seconds",
            lambda: self.busy_s,
            labels=label,
            help="Seconds the bus spent streaming (busy fraction = value / elapsed)",
            kind="counter",
        )
        telemetry.register_probe(
            "scsi_queue_depth",
            lambda: float(len(self._bus.queue)),
            labels=label,
            help="Transfers waiting for bus arbitration",
        )

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended time to move *nbytes* across the bus."""
        return self.params.arbitration_s + nbytes / self.params.bandwidth_bps

    def transfer(
        self,
        nbytes: int,
        stream_rate_bps: Optional[float] = None,
        ctx: Optional[TraceContext] = None,
        cause: str = "io",
    ):
        """Generator: hold the bus while *nbytes* stream across it.

        If *stream_rate_bps* is given (the media rate of the device
        feeding the bus), the transfer proceeds at the slower of the two
        rates -- the device and the bus stream concurrently, so the time
        is governed by the bottleneck, not the sum.

        *cause* labels what the transfer served (``io`` for demand /
        prefetch traffic, ``rebuild`` for RAID copy-back passes); the
        non-default causes get their own counters so rebuild competition
        for the bus is visible in telemetry.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        rate = self.params.bandwidth_bps
        if stream_rate_bps is not None:
            rate = min(rate, stream_rate_bps)
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            span = tracer.begin("scsi_xfer", ctx=ctx, bus=self.name, bytes=nbytes)
        duration = self.params.arbitration_s + nbytes / rate
        # Merged grant: the bus is held for [grant, grant + duration]
        # exactly as with a grant-then-timeout pair, in one event.
        with self._bus.request(resume_delay=duration) as req:
            yield req
            self.busy_s += duration
        if traced:
            tracer.end(span)
        if self._c_transfers is not None:
            self._c_transfers.add(1)
            self._c_bytes.add(nbytes)
            if cause != "io":
                counters = self._cause_counters.get(cause)
                if counters is None:
                    counters = (
                        self.monitor.counter(f"{self.name}.{cause}_transfers"),
                        self.monitor.counter(f"{self.name}.{cause}_bytes"),
                    )
                    self._cause_counters[cause] = counters
                counters[0].add(1)
                counters[1].add(nbytes)
        return nbytes

    def attach_client(self) -> int:
        """Register a device on this bus; returns the new client count."""
        self.clients += 1
        return self.clients

    # fast-path: requires=faults,tracer,telemetry -- bookkeeping-only transfer; grant must be provably uncontended and unobserved
    def account_bypass(self, nbytes: int, duration: float) -> None:
        """Book an exclusive transfer of known *duration* without events.

        Used by the RAID closed-form fast path: when the array is the
        bus's only client (``clients == 1``; rebuild traffic exists only
        under fault plans, which disable the fast path) and no trace
        span or telemetry probe can observe the interval, the grant is
        provably uncontended and the transfer's accounting can be
        applied directly.  Counter and ``busy_s`` totals come out
        identical to :meth:`transfer`.
        """
        self.busy_s += duration
        if self._c_transfers is not None:
            self._c_transfers.add(1)
            self._c_bytes.add(nbytes)

    @property
    def queue_depth(self) -> int:
        return len(self._bus.queue)

    def __repr__(self) -> str:
        return f"<SCSIBus {self.name} bw={self.params.bandwidth_bps / 2**20:.1f}MB/s>"
