"""SCSI bus model.

The bus connecting an I/O node to its RAID array.  On the calibrated
machine this is the streaming bottleneck (~3.5 MB/s effective, SCSI-8),
matching the paper's note that SCSI-16 hardware "effectively quadruples
the bandwidth available on each I/O node".

The bus is a unit-capacity resource; each transfer pays an arbitration
overhead plus size / bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.params import SCSIParams
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import TraceContext, get_tracer
from repro.sim import ArbitratedResource, Environment
from repro.obs.monitor import Monitor


class SCSIBus:
    """A shared SCSI bus."""

    def __init__(
        self,
        env: Environment,
        name: str = "scsi",
        params: Optional[SCSIParams] = None,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.params = params or SCSIParams()
        self.monitor = monitor
        self.tracer = get_tracer(monitor)
        # Arbitrated: simultaneous transfer requests are granted in
        # canonical (causal process key) order, not event-pop order.
        self._bus = ArbitratedResource(env, capacity=1)
        #: Accumulated time the bus spent transferring (utilisation).
        self.busy_s = 0.0
        telemetry = get_telemetry(monitor)
        label = {"bus": name}
        telemetry.register_probe(
            "scsi_busy_seconds", lambda: self.busy_s, labels=label,
            help="Seconds the bus spent streaming (busy fraction = value / elapsed)",
            kind="counter",
        )
        telemetry.register_probe(
            "scsi_queue_depth", lambda: float(len(self._bus.queue)), labels=label,
            help="Transfers waiting for bus arbitration",
        )

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended time to move *nbytes* across the bus."""
        return self.params.arbitration_s + nbytes / self.params.bandwidth_bps

    def transfer(
        self,
        nbytes: int,
        stream_rate_bps: Optional[float] = None,
        ctx: Optional[TraceContext] = None,
        cause: str = "io",
    ):
        """Generator: hold the bus while *nbytes* stream across it.

        If *stream_rate_bps* is given (the media rate of the device
        feeding the bus), the transfer proceeds at the slower of the two
        rates -- the device and the bus stream concurrently, so the time
        is governed by the bottleneck, not the sum.

        *cause* labels what the transfer served (``io`` for demand /
        prefetch traffic, ``rebuild`` for RAID copy-back passes); the
        non-default causes get their own counters so rebuild competition
        for the bus is visible in telemetry.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        rate = self.params.bandwidth_bps
        if stream_rate_bps is not None:
            rate = min(rate, stream_rate_bps)
        span = self.tracer.begin("scsi_xfer", ctx=ctx, bus=self.name, bytes=nbytes)
        with self._bus.request() as req:
            yield req
            duration = self.params.arbitration_s + nbytes / rate
            yield self.env.timeout(duration)
            self.busy_s += duration
        self.tracer.end(span)
        if self.monitor is not None:
            self.monitor.counter(f"{self.name}.transfers").add(1)
            self.monitor.counter(f"{self.name}.bytes").add(nbytes)
            if cause != "io":
                self.monitor.counter(f"{self.name}.{cause}_transfers").add(1)
                self.monitor.counter(f"{self.name}.{cause}_bytes").add(nbytes)
        return nbytes

    @property
    def queue_depth(self) -> int:
        return len(self._bus.queue)

    def __repr__(self) -> str:
        return f"<SCSIBus {self.name} bw={self.params.bandwidth_bps / 2**20:.1f}MB/s>"
