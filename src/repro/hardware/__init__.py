"""Hardware models for the simulated Intel Paragon.

Subpackages model the machine bottom-up:

- :mod:`repro.hardware.params` -- calibrated hardware constants.
- :mod:`repro.hardware.node` -- compute / I/O / service node model.
- :mod:`repro.hardware.mesh` -- 2D wormhole-routed mesh interconnect.
- :mod:`repro.hardware.disk` -- single-spindle disk model.
- :mod:`repro.hardware.raid` -- RAID-3 array of disks.
- :mod:`repro.hardware.scsi` -- SCSI bus shared by array and controller.
- :mod:`repro.hardware.memory` -- per-node memory accounting.
"""

from repro.hardware.disk import Disk
from repro.hardware.memory import MemoryRegion, OutOfMemoryError
from repro.hardware.mesh import Mesh, MeshMessage
from repro.hardware.node import Node, NodeKind
from repro.hardware.params import (
    DiskParams,
    MeshParams,
    NodeParams,
    RAIDParams,
    SCSIParams,
)
from repro.hardware.raid import RAID3Array
from repro.hardware.scsi import SCSIBus

__all__ = [
    "Disk",
    "DiskParams",
    "MemoryRegion",
    "Mesh",
    "MeshMessage",
    "MeshParams",
    "Node",
    "NodeKind",
    "NodeParams",
    "OutOfMemoryError",
    "RAID3Array",
    "RAIDParams",
    "SCSIBus",
    "SCSIParams",
]
