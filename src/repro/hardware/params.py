"""Calibrated hardware constants for the simulated Paragon.

All times are in seconds, sizes in bytes, rates in bytes/second.

The values are chosen so the simulated machine lands the paper's anchor
measurements (DESIGN.md section 3):

- a 1024KB-per-node collective read on 8 compute / 8 I/O nodes with 64KB
  stripe units completes in about 0.4 s (paper Table 2);
- the streaming bottleneck per I/O node is the SCSI-8 bus (~3.5 MB/s
  effective), consistent with the paper's remark that SCSI-16 hardware
  "effectively quadruples the bandwidth available on each I/O node";
- the mesh (175 MB/s links) is never the bottleneck, as on the real
  machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class DiskParams:
    """A single spindle of the RAID-3 array behind each I/O node."""

    #: Average seek time for a random access.
    avg_seek_s: float = 0.012
    #: Full-stroke seek time (seek scales with LBA distance up to this).
    full_seek_s: float = 0.025
    #: Minimum (track-to-track) seek time.
    min_seek_s: float = 0.002
    #: Spindle speed; one revolution = 60/rpm seconds.
    rpm: float = 4500.0
    #: Media (internal) transfer rate of one spindle.
    media_rate_bps: float = 1.1 * MB
    #: Capacity of the spindle.
    capacity_bytes: int = 1024 * MB
    #: Per-request controller/firmware overhead.
    controller_overhead_s: float = 0.001
    #: Size of the on-drive track cache used for sequential-read detection.
    track_cache_bytes: int = 64 * KB

    @property
    def rotation_s(self) -> float:
        """Time of one full revolution."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        """Average rotational latency (half a revolution)."""
        return 0.5 * self.rotation_s


@dataclass(frozen=True)
class RAIDParams:
    """RAID-3 array configuration (byte-interleaved, dedicated parity)."""

    #: Number of data spindles (parity spindle is extra).
    data_disks: int = 4
    #: Per-array request overhead in the RAID controller.
    controller_overhead_s: float = 0.0008
    #: Parity reconstruction XOR throughput of the array controller.
    #: Governs the extra compute cost of degraded-mode reads (and of
    #: recovering a transient media error from parity); calibrated well
    #: above the media rate so reconstruction is transfer-dominated,
    #: as on the real hardware.
    xor_rate_bps: float = 20.0 * MB


@dataclass(frozen=True)
class SCSIParams:
    """SCSI bus between the RAID array and the I/O node."""

    #: Effective bus bandwidth.  SCSI-8 era, including file-system and
    #: controller inefficiencies: ~2.2 MB/s sustained.  Calibrated so a
    #: 1024KB-per-node collective read takes ~0.4 s (paper Table 2).
    #: The paper notes SCSI-16 "effectively quadruples" this.
    bandwidth_bps: float = 2.2 * MB
    #: Bus arbitration + command overhead per transfer.
    arbitration_s: float = 0.0004


@dataclass(frozen=True)
class MeshParams:
    """2D mesh interconnect (Paragon backplane)."""

    #: Per-link bandwidth (Paragon: 175 MB/s full duplex).
    link_bandwidth_bps: float = 175.0 * MB
    #: Software send/receive overhead per message (NX message layer).
    sw_overhead_s: float = 30e-6
    #: Per-hop router latency.
    per_hop_s: float = 1e-7


@dataclass(frozen=True)
class NodeParams:
    """A Paragon node (i860 XP class)."""

    #: Application processors per node ("SMP nodes are available with
    #: three i860 processors"): capacity of the node's CPU resource.
    cpu_count: int = 1
    #: Sustained memory-copy bandwidth (source of prefetch copy overhead).
    memcpy_bps: float = 45.0 * MB
    #: Message-reception data path: rate at which incoming mesh data is
    #: landed into a destination buffer by the node's message
    #: co-processor (the Paragon's second i860).  Calibrated against the
    #: paper's Table-2 floor (a 1024KB read call takes ~0.4 s): the
    #: per-call path moves data at only a few MB/s even though the mesh
    #: links run at 175 MB/s.
    receive_bps: float = 2.8 * MB
    #: Node memory size (paper: 16-32 MB per node; I/O nodes had 32 MB).
    memory_bytes: int = 32 * MB
    #: Client-side software path for one PFS read/write call (syscall,
    #: request marshalling; the Paragon OSF/1 path was millisecond-scale).
    client_call_overhead_s: float = 0.002
    #: Server-side software path for one PFS request.
    server_request_overhead_s: float = 0.001
    #: Cost of setting up an asynchronous request structure + ART dispatch
    #: (the paper's "setup and posting phase").
    async_setup_overhead_s: float = 0.0004
    #: Cost of allocating a prefetch buffer on the compute node.
    buffer_alloc_overhead_s: float = 0.0002


@dataclass(frozen=True)
class HardwareParams:
    """Bundle of all hardware constants for one machine."""

    disk: DiskParams = field(default_factory=DiskParams)
    raid: RAIDParams = field(default_factory=RAIDParams)
    scsi: SCSIParams = field(default_factory=SCSIParams)
    mesh: MeshParams = field(default_factory=MeshParams)
    node: NodeParams = field(default_factory=NodeParams)

    @property
    def io_node_stream_rate_bps(self) -> float:
        """Back-of-envelope streaming rate of one I/O node.

        The bottleneck is min(total media rate of the data spindles, SCSI
        bus bandwidth); on the default calibration it is the SCSI bus.
        """
        media = self.raid.data_disks * self.disk.media_rate_bps
        return min(media, self.scsi.bandwidth_bps)


DEFAULT_HARDWARE = HardwareParams()
