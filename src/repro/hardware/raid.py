"""RAID-3 array model.

RAID-3 byte-interleaves data across N spindle-synchronised data disks
with one dedicated parity disk.  Because the spindles are synchronised
and dedicated to the array, they position and stream in lockstep: the
array behaves like a single mechanism with N times the media rate of one
spindle.  Reads engage the data disks; writes engage data + parity
(which streams concurrently, adding no time).

The array streams onto a :class:`~repro.hardware.scsi.SCSIBus`; media
read and bus transfer are pipelined, so a transfer is governed by the
*slower* of total media rate and bus bandwidth (the bus, on the default
calibration).
"""

from __future__ import annotations

import math
import zlib
from typing import TYPE_CHECKING, Optional, Set

from repro.hardware.params import DiskParams, RAIDParams

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
from repro.hardware.scsi import SCSIBus
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import TraceContext, get_tracer
from repro.sim import Environment
from repro.obs.monitor import Monitor


class RAIDError(Exception):
    """Raised for invalid array requests."""


class RAID3Array:
    """A RAID-3 array of spindle-synchronised disks behind one SCSI bus.

    Two pieces of drive/controller realism matter for parallel
    workloads:

    - **Elevator scheduling** (default on): queued requests are served
      nearest-LBA-first, so interleaved arrivals from many compute nodes
      at consecutive offsets still stream near-sequentially.
    - **Track cache**: a request falling entirely inside the most
      recently transferred region is served from the drive buffer with
      no positioning cost (several clients reading the *same* region --
      e.g. M_ASYNC with all private pointers at the same offset -- only
      pay the disk once).
    """

    def __init__(
        self,
        env: Environment,
        bus: SCSIBus,
        name: str = "raid",
        disk_params: Optional[DiskParams] = None,
        raid_params: Optional[RAIDParams] = None,
        elevator: bool = True,
        monitor: Optional[Monitor] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.env = env
        self.bus = bus
        self.name = name
        self.disk_params = disk_params or DiskParams()
        self.raid_params = raid_params or RAIDParams()
        self.monitor = monitor
        self.faults = faults
        self.tracer = get_tracer(monitor)
        self.elevator = elevator
        if self.raid_params.data_disks <= 0:
            raise ValueError("a RAID-3 array needs at least one data disk")
        #: Pending requests waiting for the (ganged) arm: list of
        #: (lba, causal key, grant_event) entries; dispatch picks
        #: nearest-to-head, tie-broken by (lba, key) so same-timestamp
        #: arrival order never decides the winner.
        self._pending: list = []
        self._busy = False
        #: Arbiter-settlement hook (see Environment._mark_arbiter_dirty):
        #: grants are issued when the clock is about to advance, after all
        #: same-timestamp arrivals are queued.
        self._settle_queued = False
        self._sweep_up = True
        self._head_lba = 0
        #: Seeded LCG for rotational-latency jitter: real positioning is
        #: uniform over a revolution, which keeps multiple synchronous
        #: clients from phase-locking into artificial perfect schedules.
        #: (zlib.crc32, not hash(): runs must be reproducible across
        #: processes regardless of PYTHONHASHSEED.)
        self._rng_state = (zlib.crc32(name.encode()) & 0xFFFFFFFF) | 1
        self._last_end_lba: Optional[int] = None
        #: The most recently transferred region (drive track cache).
        self._cached_start = 0
        self._cached_end = 0
        #: Fault injection: number of upcoming accesses that will fail.
        self._fail_next = 0
        #: Spindle indices currently failed (0..data_disks-1 are data,
        #: index ``data_disks`` is the parity spindle).  RAID-3 survives
        #: any single failure; a second concurrent failure loses data.
        self._failed_disks: Set[int] = set()
        #: Latched when redundancy was exceeded; all later accesses fail.
        self._data_lost = False
        #: Copy-back rebuild state.  While a rebuild runs, the stripe
        #: region below ``_rebuild_frontier`` has been copied onto the
        #: replacement spindle and reads there are served at full speed;
        #: reads above it still pay degraded reconstruction.
        self._rebuilding = False
        self._rebuild_frontier = 0
        self._rebuild_target = 0
        self._rebuild_index = 0
        self._rebuild_rate = 1.0
        #: Bytes written onto the replacement spindle (the failed
        #: spindle's share of the live stripe region).
        self.rebuild_copied_bytes = 0
        #: Completed rebuild count (telemetry; also the completion flag
        #: tests assert on).
        self.rebuilds_completed = 0
        #: Live-region oracle wired by the Machine (bytes of allocated
        #: stripe content on this array); the rebuild only copies this
        #: region.  Falls back to the access high-water mark.
        self.live_bytes_fn = None
        self._high_water = 0
        #: Accumulated time the arm was held (utilisation).
        self.busy_s = 0.0
        telemetry = get_telemetry(monitor)
        label = {"device": name}
        telemetry.register_probe(
            "disk_rebuild_frontier_bytes",
            lambda: float(self._rebuild_frontier if self._rebuilding else 0),
            labels=label,
            help="Stripe bytes already copied back during an active rebuild",
        )
        telemetry.register_probe(
            "disk_rebuild_copied_bytes",
            lambda: float(self.rebuild_copied_bytes),
            labels=label,
            help="Bytes written onto replacement spindles by copy-back rebuilds",
            kind="counter",
        )
        telemetry.register_probe(
            "disk_busy_seconds",
            lambda: self.busy_s,
            labels=label,
            help="Seconds the array arm was held (busy fraction = value / elapsed)",
            kind="counter",
        )
        telemetry.register_probe(
            "disk_queue_depth",
            lambda: float(len(self._pending)),
            labels=label,
            help="Requests waiting for the array arm",
        )
        self._service_hist = telemetry.histogram(
            "disk_service_seconds",
            labels=label,
            help="Queue + positioning + transfer time per request",
        )
        #: Closed-form fast path: when no fault plan, trace span, or
        #: telemetry probe can observe the interior of an access, the
        #: whole service (controller overhead, positioning, pipelined
        #: bus stream) is computed at the arm grant and the requester is
        #: resumed once, at the completion time -- one scheduled event
        #: instead of the stepped timeout/bus chain.  Exact by
        #: construction: the arm hold serialises every reader/writer of
        #: the head, track-cache and RNG state, and the completion time
        #: is built with the same successive float additions the stepped
        #: path performs.
        self._fast_mode = faults is None and not self.tracer.enabled and not telemetry.enabled
        bus.attach_client()
        # Hot-path monitor objects, resolved once instead of per access.
        if monitor is not None:
            self._c_reads = monitor.counter(f"{name}.reads")
            self._c_writes = monitor.counter(f"{name}.writes")
            self._c_bytes_read = monitor.counter(f"{name}.bytes_read")
            self._c_bytes_write = monitor.counter(f"{name}.bytes_write")
            self._c_sequential = monitor.counter(f"{name}.sequential_hits")
            self._c_cache_hits = monitor.counter(f"{name}.track_cache_hits")
            self._s_latency = monitor.series(f"{name}.latency")
        else:
            self._c_reads = None

    # -- geometry ------------------------------------------------------------

    @property
    def data_disks(self) -> int:
        return self.raid_params.data_disks

    @property
    def capacity_bytes(self) -> int:
        """Logical capacity (data disks only; parity is not addressable)."""
        return self.disk_params.capacity_bytes * self.data_disks

    @property
    def media_rate_bps(self) -> float:
        """Aggregate media rate of the synchronised data spindles."""
        return self.disk_params.media_rate_bps * self.data_disks

    # -- service-time model ---------------------------------------------------

    def seek_time(self, from_lba: int, to_lba: int) -> float:
        """Ganged seek: all spindles cover 1/N of the logical distance."""
        p = self.disk_params
        distance = abs(to_lba - from_lba) / self.data_disks
        if distance == 0:
            return 0.0
        frac = min(1.0, distance / p.capacity_bytes)
        return p.min_seek_s + (p.full_seek_s - p.min_seek_s) * math.sqrt(frac)

    def cached(self, lba: int, nbytes: int) -> bool:
        """True if the range is inside the most recent transfer (track cache)."""
        return self._cached_start <= lba and lba + nbytes <= self._cached_end

    def _rotational_latency(self) -> float:
        """Jittered rotational latency: uniform over one revolution."""
        self._rng_state = (self._rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        frac = self._rng_state / 0x7FFFFFFF
        return frac * self.disk_params.rotation_s

    def positioning_time(self, lba: int, sequential: bool) -> float:
        if sequential:
            return 0.0
        return self.seek_time(self._head_lba, lba) + self._rotational_latency()

    def estimate_service_time(self, lba: int, nbytes: int) -> float:
        """Uncontended estimate for planning/tests (non-sequential)."""
        stream = nbytes / min(self.media_rate_bps, self.bus.params.bandwidth_bps)
        return (
            self.raid_params.controller_overhead_s
            + self.positioning_time(lba, sequential=False)
            + self.bus.params.arbitration_s
            + stream
        )

    # -- operations ------------------------------------------------------------

    def _validate(self, lba: int, nbytes: int) -> None:
        if nbytes < 0:
            raise RAIDError(f"negative transfer size {nbytes}")
        if lba < 0 or lba + nbytes > self.capacity_bytes:
            raise RAIDError(
                f"request [{lba}, {lba + nbytes}) outside array capacity " f"{self.capacity_bytes}"
            )

    def _grant_next(self) -> None:
        """Dispatch the next pending request.

        Elevator mode is a proper LOOK sweep: serve the nearest request
        *in the current direction*, reversing only when none remain
        ahead.  (Greedy nearest-first -- SSTF -- starves distant
        requests under saturation.)
        """
        pending = self._pending
        if self._busy or not pending:
            return
        if len(pending) == 1:
            # Sole entry always wins; only the LOOK sweep-direction flip
            # (which steers future multi-entry picks) must still happen.
            if self.elevator:
                lba0 = pending[0][0]
                head = self._head_lba
                if not (lba0 >= head if self._sweep_up else lba0 <= head):
                    self._sweep_up = not self._sweep_up
            best = 0
        elif self.elevator:
            head = self._head_lba
            ahead = [
                i
                for i, entry in enumerate(pending)
                if (entry[0] >= head if self._sweep_up else entry[0] <= head)
            ]
            if not ahead:
                self._sweep_up = not self._sweep_up
                ahead = list(range(len(pending)))
            best = min(
                ahead,
                key=lambda i: (
                    abs(pending[i][0] - head),
                    pending[i][0],
                    pending[i][1],
                ),
            )
        else:
            best = min(
                range(len(pending)),
                key=lambda i: (pending[i][1], i),
            )
        lba, _key, grant, fast = pending.pop(best)
        self._busy = True
        if fast is not None and not (
            self._fail_next or self._failed_disks or self._data_lost or self._rebuilding
        ):
            # Closed-form service: the arm is held for the whole interval
            # and nothing observable happens inside it, so the completion
            # time is computed here and the requester resumed once.  Every
            # addition below mirrors a timeout the stepped path would have
            # taken, in the same order, so the resulting float is
            # bit-identical (successive addition, never summed deltas).
            nbytes, kind = fast
            env = self.env
            now = env.now
            when = now + self.raid_params.controller_overhead_s
            bus_params = self.bus.params
            bandwidth = bus_params.bandwidth_bps
            sequential = False
            if kind == "read" and self._cached_start <= lba \
                    and lba + nbytes <= self._cached_end:
                cache_hit = True
                duration = bus_params.arbitration_s + nbytes / bandwidth
            else:
                cache_hit = False
                end = lba + nbytes
                sequential = self._last_end_lba == lba
                if not sequential:
                    # Same single-expression sum (and same RNG draw
                    # order) as positioning_time in the stepped path.
                    positioning = self.seek_time(self._head_lba, lba) + self._rotational_latency()
                    when += positioning
                media = self.disk_params.media_rate_bps * self.raid_params.data_disks
                if media < bandwidth:
                    bandwidth = media
                duration = bus_params.arbitration_s + nbytes / bandwidth
                # Head / track-cache updates land at completion in the
                # stepped path, but the arm hold makes them unreadable
                # until then -- eager update is unobservable.
                self._head_lba = end
                self._last_end_lba = end
                if kind == "read":
                    window = self.disk_params.track_cache_bytes * self.data_disks
                    self._cached_start = max(lba, end - window)
                    self._cached_end = end
            grant._ok = True
            grant._value = (now, duration, sequential, cache_hit)
            # sim-ok: R006 -- fast payloads are attached in _access only under the _fast_mode gate (faults/tracer/telemetry all off)
            env.schedule_at(grant, when + duration)
            return
        grant.succeed()

    def _settle(self) -> None:
        """End-of-timestep arbitration hook (called by the Environment)."""
        self._grant_next()

    def _degraded_range(self, lba: int, nbytes: int) -> bool:
        """Does an access to ``[lba, lba + nbytes)`` pay reconstruction?

        During a copy-back rebuild the replacement spindle already holds
        everything below the rebuild frontier, so accesses entirely
        inside the rebuilt region run at full speed; anything touching
        the un-rebuilt tail still reconstructs from parity.
        """
        if not self.degraded:
            return False
        if self._rebuilding and lba + nbytes <= self._rebuild_frontier:
            return False
        return True

    def _access(self, lba: int, nbytes: int, kind: str, ctx: Optional[TraceContext] = None):
        self._validate(lba, nbytes)
        if lba + nbytes > self._high_water:
            self._high_water = lba + nbytes
        if self.faults is not None:
            self.faults.tick()
        env = self.env
        queued_at = env.now
        sequential = False
        cache_hit = False
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            # The disk_service span covers queueing + positioning +
            # transfer: the full time the request spent at the storage
            # layer.
            span = tracer.begin(
                "disk_service",
                ctx=ctx,
                device=self.name,
                op=kind,
                lba=lba,
                bytes=nbytes,
            )
            span_ctx = span.ctx if span.ctx is not None else ctx
        else:
            span = None
            span_ctx = ctx
        grant = env.event()
        proc = env._active_process
        key = proc.order_key if proc is not None else ()
        fast = (
            self._fast_mode
            and self.bus.clients == 1
            and not self._fail_next
            and not self._failed_disks
            and not self._data_lost
            and not self._rebuilding
        )
        self._pending.append((lba, key, grant, (nbytes, kind) if fast else None))
        env._mark_arbiter_dirty(self)
        granted = False
        if fast:
            done = yield grant
            if done is not None:
                # Closed-form completion (see _grant_next): everything
                # between grant and now was computed there; book the
                # accounting the stepped path would have accrued.
                started_at, duration, sequential, cache_hit = done
                now = env.now
                self.bus.account_bypass(nbytes, duration)
                self.busy_s += now - started_at
                self._busy = False
                if self._pending:
                    env._mark_arbiter_dirty(self)
                if self._c_reads is not None:
                    if kind == "read":
                        self._c_reads.add(1)
                        self._c_bytes_read.add(nbytes)
                    else:
                        self._c_writes.add(1)
                        self._c_bytes_write.add(nbytes)
                    if sequential:
                        self._c_sequential.add(1)
                    if cache_hit:
                        self._c_cache_hits.add(1)
                    self._s_latency.record(now - queued_at)
                return nbytes
            # State changed while queued; the grant fell back to the
            # stepped path (already held -- do not yield again).
            granted = True
        started_at = None
        try:
            if not granted:
                yield grant
            started_at = self.env.now
            yield self.env.timeout(self.raid_params.controller_overhead_s)
            if self.faults is not None:
                # Re-check the schedule: the failure may be due between
                # queueing and the arm grant.
                self.faults.tick()
            if self._fail_next > 0:
                self._fail_next -= 1
                if self.monitor is not None:
                    self.monitor.counter(f"{self.name}.injected_errors").add(1)
                raise RAIDError(f"injected media error on {self.name} at lba {lba}")
            if self._data_lost:
                raise RAIDError(
                    f"data lost on {self.name}: more than one spindle failed "
                    "(RAID-3 redundancy exceeded)"
                )
            media_error = None
            if self.faults is not None:
                media_error = self.faults.decide("media_error", self.name)
                slow = self.faults.decide("slow_sector", self.name)
                if slow is not None:
                    # Marginal sector: positioning retries before the
                    # transfer succeeds.
                    if self.monitor is not None:
                        self.monitor.counter(f"{self.name}.slow_sectors").add(1)
                    yield self.env.timeout(slow.duration_s)
            if media_error is not None and self.degraded:
                # The bad sector's spindle has no redundancy left behind
                # it -- this access is unrecoverable at the array layer.
                raise RAIDError(
                    f"unrecoverable media error on degraded {self.name} " f"at lba {lba}"
                )
            # A transient media error forces a platter re-read plus
            # parity reconstruction, so it bypasses the track cache.
            cache_hit = kind == "read" and media_error is None and self.cached(lba, nbytes)
            degraded_now = self._degraded_range(lba, nbytes)
            if cache_hit:
                # Served from the drive buffer: bus transfer only.
                yield from self.bus.transfer(nbytes, ctx=span_ctx)
            else:
                sequential = self._last_end_lba == lba
                positioning = self.positioning_time(lba, sequential)
                if positioning > 0:
                    yield self.env.timeout(positioning)
                # Stream through the bus while the spindles feed it.
                yield from self.bus.transfer(
                    nbytes, stream_rate_bps=self.media_rate_bps, ctx=span_ctx
                )
                reconstruct = kind == "read" and (degraded_now or media_error)
                if reconstruct and nbytes > 0:
                    # Parity reconstruction: the parity spindle's share
                    # crosses the SCSI bus as an extra transfer (it is
                    # not part of the data stream in normal mode), then
                    # the controller XORs the missing spindle back.
                    share = -(-nbytes // self.data_disks)
                    yield from self.bus.transfer(
                        share,
                        stream_rate_bps=self.disk_params.media_rate_bps,
                        ctx=span_ctx,
                    )
                    yield self.env.timeout(nbytes / self.raid_params.xor_rate_bps)
                    if self.monitor is not None:
                        self.monitor.counter(f"{self.name}.reconstructed_bytes").add(nbytes)
                        if degraded_now:
                            self.monitor.counter(f"{self.name}.degraded_reads").add(1)
                        if media_error is not None:
                            self.monitor.counter(f"{self.name}.media_errors_recovered").add(1)
                elif kind == "write" and degraded_now and nbytes > 0:
                    # Degraded write: parity must absorb the missing
                    # spindle's contribution (XOR only; the parity
                    # stream itself is concurrent as in normal mode).
                    yield self.env.timeout(nbytes / self.raid_params.xor_rate_bps)
                    if self.monitor is not None:
                        self.monitor.counter(f"{self.name}.degraded_writes").add(1)
                self._head_lba = lba + nbytes
                self._last_end_lba = lba + nbytes
                if kind == "read":
                    window = self.disk_params.track_cache_bytes * self.data_disks
                    self._cached_start = max(lba, lba + nbytes - window)
                    self._cached_end = lba + nbytes
        finally:
            if started_at is not None:
                self.busy_s += self.env.now - started_at
            self._busy = False
            if self._pending:
                self.env._mark_arbiter_dirty(self)
        if traced:
            if self.faults is not None or degraded_now:
                tracer.end(
                    span,
                    sequential=sequential,
                    track_cache_hit=cache_hit,
                    degraded=degraded_now,
                )
            else:
                tracer.end(span, sequential=sequential, track_cache_hit=cache_hit)
        self._service_hist.observe(self.env.now - queued_at)
        if self._c_reads is not None:
            if kind == "read":
                self._c_reads.add(1)
                self._c_bytes_read.add(nbytes)
            else:
                self._c_writes.add(1)
                self._c_bytes_write.add(nbytes)
            if sequential:
                self._c_sequential.add(1)
            if cache_hit:
                self._c_cache_hits.add(1)
            self._s_latency.record(self.env.now - queued_at)
        return nbytes

    def read(self, lba: int, nbytes: int, ctx: Optional[TraceContext] = None):
        """Generator: read *nbytes* at logical *lba*; all data spindles engage."""
        return (yield from self._access(lba, nbytes, "read", ctx=ctx))

    def write(self, lba: int, nbytes: int, ctx: Optional[TraceContext] = None):
        """Generator: write *nbytes*; parity spindle streams concurrently."""
        return (yield from self._access(lba, nbytes, "write", ctx=ctx))

    def inject_failures(self, count: int = 1) -> None:
        """Fault injection: make the next *count* accesses fail with
        :class:`RAIDError` (failure-path testing)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._fail_next += count

    # -- degraded mode ---------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while at least one spindle is failed (parity covers it)."""
        return bool(self._failed_disks)

    def fail_disk(self, index: int = 0) -> None:
        """A spindle dies.  One failure degrades the array (every access
        from now on pays parity reconstruction); a second concurrent
        failure exceeds RAID-3 redundancy and loses data."""
        if index < 0 or index > self.data_disks:
            raise RAIDError(
                f"disk index {index} outside array (0..{self.data_disks}, "
                f"where {self.data_disks} is the parity spindle)"
            )
        if index in self._failed_disks:
            return
        if self._failed_disks:
            self._data_lost = True
        self._failed_disks.add(index)
        if self.monitor is not None:
            self.monitor.counter(f"{self.name}.disk_failures").add(1)

    def repair_disk(self, index: int = 0, rebuild_rate: float = 1.0) -> None:
        """The spindle is replaced; a copy-back rebuild starts.

        The replacement is reconstructed stripe-chunk by stripe-chunk
        over the *live* region of the array: each chunk queues in the
        same LOOK elevator as demand/prefetch requests, reads the
        surviving spindles plus the parity share across the SCSI bus,
        pays the controller XOR pass, and writes the failed spindle's
        share onto the replacement.  The array stays degraded (for the
        un-rebuilt tail) until the frontier reaches the live high-water
        mark, so foreground bandwidth dips while rebuild traffic
        competes for the arm and bus.

        ``rebuild_rate`` throttles the copy-back: after each chunk the
        rebuilder idles ``hold * (1 - rate) / rate``, leaving that
        fraction of arm time to foreground I/O.
        """
        if not (0.0 < rebuild_rate <= 1.0):
            raise RAIDError(f"rebuild_rate must be in (0, 1], got {rebuild_rate}")
        if index not in self._failed_disks:
            return
        if self._data_lost or self._rebuilding:
            # Nothing a single replacement can recover / one at a time.
            return
        if self.live_bytes_fn is not None:
            target = int(self.live_bytes_fn())
        else:
            target = self._high_water
        self._rebuilding = True
        self._rebuild_index = index
        self._rebuild_frontier = 0
        self._rebuild_target = min(target, self.capacity_bytes)
        self._rebuild_rate = rebuild_rate
        # The spawner is whichever access happened to notice the repair
        # time had passed -- a tie-order-dependent identity.  An explicit
        # canonical order key keeps every downstream arbitration (arm
        # grants, SCSI bus) independent of which leg spawned us, and
        # leaves the accidental parent's child counter untouched.
        self.env.process(
            self._rebuild_process(),
            name=f"rebuild-{self.name}",
            order_key=(-1, zlib.crc32(self.name.encode()) & 0xFFFFFFFF),
        )
        if self.monitor is not None:
            self.monitor.counter(f"{self.name}.rebuilds_started").add(1)

    def _rebuild_process(self):
        """Background copy-back: drain the live region chunk by chunk."""
        chunk_bytes = self.disk_params.track_cache_bytes * self.data_disks
        chunk_seq = 0
        try:
            while self._rebuild_frontier < self._rebuild_target:
                if self._data_lost:
                    return  # a second failure killed the rebuild source
                lba = self._rebuild_frontier
                nbytes = min(chunk_bytes, self._rebuild_target - lba)
                chunk_seq += 1
                hold_s = yield from self._rebuild_chunk(lba, nbytes, chunk_seq)
                self._rebuild_frontier = lba + nbytes
                if self._rebuild_rate < 1.0 and hold_s > 0:
                    # Throttle: idle so the rebuild consumes only
                    # rebuild_rate of the arm's time.
                    yield self.env.timeout(hold_s * (1.0 - self._rebuild_rate) / self._rebuild_rate)
            self._failed_disks.discard(self._rebuild_index)
            self.rebuilds_completed += 1
            if self.monitor is not None:
                self.monitor.counter(f"{self.name}.rebuilds_completed").add(1)
        finally:
            self._rebuilding = False

    def _rebuild_chunk(self, lba: int, nbytes: int, chunk_seq: int):
        """One copy-back pass through the LOOK queue; returns arm hold time.

        Mirrors ``_access``'s arm discipline (queue entry, canonical
        grant, controller overhead, positioning, pipelined bus streams)
        but never consults ``faults.decide`` (rebuild traffic must not
        advance count-trigger spec counters -- those count *foreground*
        operations) and never updates the track cache (the drive buffer
        serves host reads, not copy-back internals).
        """
        grant = self.env.event()
        # (-1, seq): sorts before every causal process key, so an exact
        # (distance, lba) tie goes to the rebuild deterministically.
        self._pending.append((lba, (-1, chunk_seq), grant, None))
        self.env._mark_arbiter_dirty(self)
        started_at = None
        try:
            yield grant
            started_at = self.env.now
            yield self.env.timeout(self.raid_params.controller_overhead_s)
            sequential = self._last_end_lba == lba
            positioning = self.positioning_time(lba, sequential)
            if positioning > 0:
                yield self.env.timeout(positioning)
            # Surviving spindles stream their shares across the bus...
            yield from self.bus.transfer(
                nbytes, stream_rate_bps=self.media_rate_bps, cause="rebuild"
            )
            # ... plus the parity spindle's share, then the controller
            # XORs the missing spindle's content and writes it back.
            share = -(-nbytes // self.data_disks)
            yield from self.bus.transfer(
                share,
                stream_rate_bps=self.disk_params.media_rate_bps,
                cause="rebuild",
            )
            yield self.env.timeout(nbytes / self.raid_params.xor_rate_bps)
            self._head_lba = lba + nbytes
            self._last_end_lba = lba + nbytes
            self.rebuild_copied_bytes += share
            if self.monitor is not None:
                self.monitor.counter(f"{self.name}.rebuild_copied_bytes").add(share)
            return self.env.now - started_at
        finally:
            if started_at is not None:
                self.busy_s += self.env.now - started_at
            self._busy = False
            if self._pending:
                self.env._mark_arbiter_dirty(self)

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"<RAID3Array {self.name} {self.data_disks}+1 disks, "
            f"{self.capacity_bytes / 2**20:.0f}MB>"
        )
