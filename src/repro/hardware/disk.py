"""Single-spindle disk model.

Service time of a request = controller overhead + seek + rotational
latency + media transfer.  Sequential accesses (starting exactly where
the previous request ended) hit the drive's track cache / read-ahead and
skip both seek and rotational latency, which is what makes the PFS's
block coalescing and contiguous UFS allocation pay off.  A re-read
falling entirely inside the most recently transferred region is served
from the track cache with no positioning at all.

Rotational latency is jittered uniformly over one revolution by default
(a seeded LCG keeps runs reproducible); pass ``jitter=False`` for the
constant-average model.

Requests are served strictly in arrival order (FIFO); an optional
elevator (LOOK) policy can be enabled to study scheduling effects.
Both policies dispatch through arbitrated grants settled at the end of
each timestep: FIFO orders same-timestamp arrivals by causal process
key, and the elevator breaks exact distance ties by ``(lba, key)`` --
never by event-pop order -- so runs are bit-identical under either
kernel tie-break.
"""

from __future__ import annotations

import math
import zlib
from typing import TYPE_CHECKING, Optional

from repro.hardware.params import DiskParams

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import TraceContext, get_tracer
from repro.sim import Environment
from repro.obs.monitor import Monitor


class DiskError(Exception):
    """Raised for invalid disk requests (out-of-range, negative size)."""


class Disk:
    """One spindle.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Identifier used in statistics.
    params:
        Mechanical/electrical constants.
    elevator:
        If True, pending requests are served in LOOK order (by LBA
        distance direction) instead of FIFO.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "disk",
        params: Optional[DiskParams] = None,
        elevator: bool = False,
        jitter: bool = True,
        monitor: Optional[Monitor] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.params = params or DiskParams()
        self.monitor = monitor
        self.faults = faults
        self.tracer = get_tracer(monitor)
        self.elevator = elevator
        self.jitter = jitter
        #: Pending requests waiting for the arm: list of
        #: (arrived_at, lba, causal key, seq, grant_event) entries.
        #: FIFO dispatches by (arrival, key, seq); the elevator runs a
        #: LOOK sweep with exact distance ties broken by (lba, key, seq).
        self._pending: list = []
        self._busy = False
        #: Arbiter-settlement hook (see Environment._mark_arbiter_dirty):
        #: grants are issued when the clock is about to advance, after
        #: all same-timestamp arrivals are queued.
        self._settle_queued = False
        self._sweep_up = True
        self._seq = 0
        #: Head position (LBA) after the last completed request.
        self._head_lba = 0
        #: End LBA of the last completed transfer, for sequential detection.
        self._last_end_lba: Optional[int] = None
        #: Most recently read region (track cache window).
        self._cached_start = 0
        self._cached_end = 0
        self._rng_state = (zlib.crc32(name.encode()) & 0xFFFFFFFF) | 1
        #: Accumulated time the arm was held (utilisation).
        self.busy_s = 0.0
        telemetry = get_telemetry(monitor)
        label = {"device": name}
        telemetry.register_probe(
            "disk_busy_seconds",
            lambda: self.busy_s,
            labels=label,
            help="Seconds the arm was held (busy fraction = value / elapsed)",
            kind="counter",
        )
        telemetry.register_probe(
            "disk_queue_depth",
            lambda: float(self.queue_depth),
            labels=label,
            help="Requests waiting for the arm",
        )
        self._service_hist = telemetry.histogram(
            "disk_service_seconds",
            labels=label,
            help="Queue + positioning + transfer time per request",
        )

    # -- service-time model -------------------------------------------------

    def seek_time(self, from_lba: int, to_lba: int) -> float:
        """Seek time as a concave function of LBA distance."""
        p = self.params
        distance = abs(to_lba - from_lba)
        if distance == 0:
            return 0.0
        frac = min(1.0, distance / p.capacity_bytes)
        return p.min_seek_s + (p.full_seek_s - p.min_seek_s) * math.sqrt(frac)

    def _rotational_latency(self) -> float:
        if not self.jitter:
            return self.params.avg_rotational_latency_s
        self._rng_state = (self._rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        return (self._rng_state / 0x7FFFFFFF) * self.params.rotation_s

    def cached(self, lba: int, nbytes: int) -> bool:
        """True if the range sits inside the track cache window."""
        return self._cached_start <= lba and lba + nbytes <= self._cached_end

    def service_time(self, lba: int, nbytes: int, sequential: bool) -> float:
        """Uncontended service time for one request."""
        p = self.params
        transfer = nbytes / p.media_rate_bps
        if sequential:
            # Track cache streaming: no positioning cost.
            return p.controller_overhead_s + transfer
        positioning = self.seek_time(self._head_lba, lba) + self._rotational_latency()
        return p.controller_overhead_s + positioning + transfer

    # -- arm arbitration -----------------------------------------------------

    def _grant_next(self) -> None:
        """Dispatch the next pending request.

        Elevator mode is a proper LOOK sweep: serve the nearest request
        *in the current direction*, reversing only when none remain
        ahead (greedy nearest-first -- SSTF -- starves distant requests
        under saturation).  FIFO mode serves in arrival order, with
        same-timestamp arrivals ordered by causal process key.
        """
        if self._busy or not self._pending:
            return
        if self.elevator:
            head = self._head_lba
            ahead = [
                i
                for i, (_a, lba, _k, _s, _g) in enumerate(self._pending)
                if (lba >= head if self._sweep_up else lba <= head)
            ]
            if not ahead:
                self._sweep_up = not self._sweep_up
                ahead = list(range(len(self._pending)))
            best = min(
                ahead,
                key=lambda i: (
                    abs(self._pending[i][1] - head),
                    self._pending[i][1],
                    self._pending[i][2],
                    self._pending[i][3],
                ),
            )
        else:
            best = min(
                range(len(self._pending)),
                key=lambda i: (
                    self._pending[i][0],
                    self._pending[i][2],
                    self._pending[i][3],
                ),
            )
        *_rest, grant = self._pending.pop(best)
        self._busy = True
        grant.succeed()

    def _settle(self) -> None:
        """End-of-timestep arbitration hook (called by the Environment)."""
        self._grant_next()

    # -- operations ----------------------------------------------------------

    def _validate(self, lba: int, nbytes: int) -> None:
        if nbytes < 0:
            raise DiskError(f"negative transfer size {nbytes}")
        if lba < 0 or lba + nbytes > self.params.capacity_bytes:
            raise DiskError(
                f"request [{lba}, {lba + nbytes}) outside disk capacity "
                f"{self.params.capacity_bytes}"
            )

    def _access(self, lba: int, nbytes: int, kind: str, ctx: Optional[TraceContext] = None):
        self._validate(lba, nbytes)
        span = self.tracer.begin(
            "disk_service",
            ctx=ctx,
            device=self.name,
            op=kind,
            lba=lba,
            bytes=nbytes,
        )
        grant = self.env.event()
        proc = self.env.active_process
        key = proc.order_key if proc is not None else ()
        self._seq += 1
        self._pending.append((self.env.now, lba, key, self._seq, grant))
        self.env._mark_arbiter_dirty(self)
        queued_at = self.env.now
        sequential = False
        cache_hit = False
        started_at = None
        try:
            yield grant
            started_at = self.env.now
            if self.faults is not None:
                media_error = self.faults.decide("media_error", self.name)
                slow = self.faults.decide("slow_sector", self.name)
                if slow is not None:
                    if self.monitor is not None:
                        self.monitor.counter(f"{self.name}.slow_sectors").add(1)
                    yield self.env.timeout(slow.duration_s)
                if media_error is not None:
                    # A lone spindle has no parity to reconstruct from:
                    # the error surfaces to the caller (transient -- a
                    # retry re-reads the sector successfully).
                    if self.monitor is not None:
                        self.monitor.counter(f"{self.name}.media_errors").add(1)
                    raise DiskError(f"media error on {self.name} at lba {lba} (transient)")
            cache_hit = kind == "read" and self.cached(lba, nbytes)
            if cache_hit:
                # Served from the drive buffer: controller time only.
                yield self.env.timeout(self.params.controller_overhead_s)
            else:
                sequential = self._last_end_lba == lba
                service = self.service_time(lba, nbytes, sequential)
                yield self.env.timeout(service)
                self._head_lba = lba + nbytes
                self._last_end_lba = lba + nbytes
                if kind == "read":
                    self._cached_start = max(lba, lba + nbytes - self.params.track_cache_bytes)
                    self._cached_end = lba + nbytes
        finally:
            if started_at is not None:
                self.busy_s += self.env.now - started_at
                self._busy = False
                if self._pending:
                    self.env._mark_arbiter_dirty(self)
        self.tracer.end(span, sequential=sequential, track_cache_hit=cache_hit)
        self._service_hist.observe(self.env.now - queued_at)
        if self.monitor is not None:
            self.monitor.counter(f"{self.name}.{kind}s").add(1)
            self.monitor.counter(f"{self.name}.bytes_{kind}").add(nbytes)
            if sequential:
                self.monitor.counter(f"{self.name}.sequential_hits").add(1)
            if cache_hit:
                self.monitor.counter(f"{self.name}.track_cache_hits").add(1)
            self.monitor.series(f"{self.name}.latency").record(self.env.now - queued_at)
        return nbytes

    def read(self, lba: int, nbytes: int, ctx: Optional[TraceContext] = None):
        """Generator: read *nbytes* starting at *lba*."""
        return (yield from self._access(lba, nbytes, "read", ctx=ctx))

    def write(self, lba: int, nbytes: int, ctx: Optional[TraceContext] = None):
        """Generator: write *nbytes* starting at *lba*."""
        return (yield from self._access(lba, nbytes, "write", ctx=ctx))

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the arm (excluding the one in service)."""
        return len(self._pending)

    def __repr__(self) -> str:
        return f"<Disk {self.name} head={self._head_lba}>"
