"""The paper's synthetic workloads.

Section 4: "The workload programs opened files in the M_RECORD mode.
Delays were introduced between I/O accesses in this synthetic workload
to simulate the computation phases of a program.  To measure the
performance of our prefetching prototype, the workload performed
extensive I/O on large files."

- :class:`CollectiveReadWorkload` with ``compute_delay=0`` is the
  I/O-bound workload of section 4.1; with a positive delay it is the
  "balanced" workload of section 4.2.
- :class:`SeparateFilesWorkload` is Figure 2's "Separate Files" case:
  "each compute node accesses a unique file rather than opening a
  shared file."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.prefetcher import Prefetcher
from repro.faults.plan import NodeCrashed
from repro.machine import Machine
from repro.metrics import BandwidthReport, report_from_handles
from repro.pfs.client import PFSFileHandle
from repro.pfs.modes import IOMode
from repro.pfs.mount import PFSMount

#: Factory called per rank to build that handle's prefetcher (or None).
PrefetcherFactory = Callable[[int], Optional[Prefetcher]]


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    report: BandwidthReport
    handles: List[PFSFileHandle] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def elapsed_s(self) -> float:
        return self.finished_at - self.started_at


class CollectiveReadWorkload:
    """All compute nodes read one shared file in a given I/O mode.

    Parameters
    ----------
    machine, mount, filename:
        Where to read.
    request_size:
        Bytes per read call ("Request size per node").
    compute_delay:
        Seconds of simulated computation between consecutive reads
        (0 = I/O bound; > 0 = balanced).
    iomode:
        PFS I/O mode (the paper's prototype runs in M_RECORD).
    rounds:
        Number of read calls per node; None reads until EOF.
    nprocs:
        How many compute nodes participate (default: all).
    prefetcher_factory:
        Called with each rank to build its prefetcher; None disables
        prefetching.
    async_partition:
        For M_ASYNC: seek each rank to its own 1/nprocs slice of the
        file first (a fair throughput comparison); otherwise every rank
        starts at offset 0.
    """

    def __init__(
        self,
        machine: Machine,
        mount: PFSMount,
        filename: str,
        request_size: int,
        compute_delay: float = 0.0,
        iomode: IOMode = IOMode.M_RECORD,
        rounds: Optional[int] = None,
        nprocs: Optional[int] = None,
        prefetcher_factory: Optional[PrefetcherFactory] = None,
        async_partition: bool = True,
    ) -> None:
        if request_size <= 0:
            raise ValueError("request size must be positive")
        if compute_delay < 0:
            raise ValueError("compute delay must be non-negative")
        self.machine = machine
        self.mount = mount
        self.filename = filename
        self.request_size = request_size
        self.compute_delay = compute_delay
        self.iomode = iomode
        self.rounds = rounds
        self.nprocs = nprocs or len(machine.clients)
        if self.nprocs > len(machine.clients):
            raise ValueError(
                f"{self.nprocs} processes but only " f"{len(machine.clients)} compute nodes"
            )
        self.prefetcher_factory = prefetcher_factory
        self.async_partition = async_partition

    # -- execution ----------------------------------------------------------

    def run(self) -> WorkloadResult:
        """Open, read to completion on every node, close; returns metrics."""
        machine = self.machine
        handles: List[Optional[PFSFileHandle]] = [None] * self.nprocs
        result = WorkloadResult(report=None)  # type: ignore[arg-type]

        # Open from every node (simulated time: open overheads).
        def opener(rank: int):
            prefetcher = self.prefetcher_factory(rank) if self.prefetcher_factory else None
            if prefetcher is not None and prefetcher.monitor is None:
                # Factory-built prefetchers inherit the machine's handle so
                # their counters and telemetry probes register.
                prefetcher.monitor = machine.monitor
            handle = yield from machine.clients[rank].open(
                self.mount,
                self.filename,
                self.iomode,
                rank=rank,
                nprocs=self.nprocs,
                prefetcher=prefetcher,
            )
            handles[rank] = handle

        for rank in range(self.nprocs):
            machine.spawn(opener(rank), name=f"open-{rank}")
        machine.run()
        ready: List[PFSFileHandle] = [h for h in handles if h is not None]
        assert len(ready) == self.nprocs

        rounds = self.rounds
        if rounds is None:
            pfs_file = self.mount.lookup(self.filename)
            per_round = self.request_size * self.nprocs
            rounds = max(1, pfs_file.size_bytes // per_round)

        result.started_at = machine.env.now

        def reader(handle: PFSFileHandle):
            if (self.iomode is IOMode.M_ASYNC and self.async_partition and self.nprocs > 1):
                slice_bytes = handle.file.size_bytes // self.nprocs
                yield from handle.lseek(handle.rank * slice_bytes)
            first = True
            for _ in range(rounds):
                if not first and self.compute_delay > 0:
                    yield from handle.node.compute(self.compute_delay)
                first = False
                while True:
                    try:
                        yield from handle.read(self.request_size)
                        break
                    except NodeCrashed:
                        # The node died mid-call (node_crash fault): wait
                        # out the crash window, then re-issue the same
                        # read; the client's restart replay guarantees
                        # exactly-once delivery of each record.
                        yield from handle.client.wait_restarted()

        for handle in ready:
            machine.spawn(reader(handle), name=f"reader-{handle.rank}")
        machine.run()
        result.finished_at = machine.env.now

        def closer(handle: PFSFileHandle):
            yield from handle.close()

        for handle in ready:
            machine.spawn(closer(handle), name=f"close-{handle.rank}")
        machine.run()

        result.handles = ready
        result.report = report_from_handles(ready, result.elapsed_s)
        return result


class CollectiveWriteWorkload:
    """All compute nodes write records to one shared file.

    Each node writes *rounds* records of *request_size* bytes under the
    given I/O mode (M_RECORD by default: rank-slotted records with no
    coordination).  Record content is deterministic
    (``SyntheticData(rank * 1_000_000 + round)``) so tests can verify
    placement byte-for-byte.
    """

    def __init__(
        self,
        machine: Machine,
        mount: PFSMount,
        filename: str,
        request_size: int,
        rounds: int,
        compute_delay: float = 0.0,
        iomode: IOMode = IOMode.M_RECORD,
        nprocs: Optional[int] = None,
    ) -> None:
        if request_size <= 0:
            raise ValueError("request size must be positive")
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        if compute_delay < 0:
            raise ValueError("compute delay must be non-negative")
        self.machine = machine
        self.mount = mount
        self.filename = filename
        self.request_size = request_size
        self.rounds = rounds
        self.compute_delay = compute_delay
        self.iomode = iomode
        self.nprocs = nprocs or len(machine.clients)
        if self.nprocs > len(machine.clients):
            raise ValueError("more processes than compute nodes")

    @staticmethod
    def record_content(rank: int, round_index: int, nbytes: int):
        from repro.ufs.data import SyntheticData

        return SyntheticData(rank * 1_000_000 + round_index, 0, nbytes)

    def run(self) -> WorkloadResult:
        machine = self.machine
        handles: List[Optional[PFSFileHandle]] = [None] * self.nprocs
        result = WorkloadResult(report=None)  # type: ignore[arg-type]

        def opener(rank: int):
            handles[rank] = yield from machine.clients[rank].open(
                self.mount,
                self.filename,
                self.iomode,
                rank=rank,
                nprocs=self.nprocs,
            )

        for rank in range(self.nprocs):
            machine.spawn(opener(rank))
        machine.run()
        ready: List[PFSFileHandle] = [h for h in handles if h is not None]

        result.started_at = machine.env.now
        done = machine.env.event()
        finished = {"n": 0}

        def writer(handle: PFSFileHandle):
            first = True
            for k in range(self.rounds):
                if not first and self.compute_delay > 0:
                    yield from handle.node.compute(self.compute_delay)
                first = False
                payload = self.record_content(handle.rank, k, self.request_size)
                while True:
                    try:
                        yield from handle.write(payload)
                        break
                    except NodeCrashed:
                        # The node died mid-call (node_crash fault): wait
                        # out the crash window, then re-present the same
                        # record; the client's slot reservation / replay
                        # bookkeeping guarantees each record lands
                        # exactly once at exactly one offset.
                        yield from handle.client.wait_restarted()
            finished["n"] += 1
            if finished["n"] == self.nprocs:
                done.succeed()

        for handle in ready:
            machine.spawn(writer(handle), name=f"writer-{handle.rank}")
        # Run until the writes complete (not until the queue drains --
        # a write-back sync daemon may still be pending).
        machine.run(until=done)
        result.finished_at = machine.env.now

        closers = [machine.spawn(handle.close()) for handle in ready]
        machine.run(until=machine.env.all_of(closers))
        result.handles = ready

        report = BandwidthReport(
            total_bytes=sum(h.stats.bytes_written for h in ready),
            elapsed_s=result.elapsed_s,
        )
        for h in ready:
            report.read_call_time_by_rank[h.rank] = h.stats.write_call_time
            report.bytes_by_rank[h.rank] = h.stats.bytes_written
            report.calls_by_rank[h.rank] = h.stats.write_calls
        result.report = report
        return result


class StridedReadWorkload:
    """Non-unit-stride M_ASYNC readers over one shared file.

    Each rank walks its own 1/nprocs slice of the file with a fixed gap
    between consecutive requests: seek to ``pos``, read ``request_size``
    bytes, advance ``pos`` by ``stride`` (``stride > request_size``
    leaves unread holes).  The M_ASYNC mode arithmetic predicts the next
    read at the current private offset, so the paper's one-request-ahead
    policy prefetches hole bytes that are never read; a stride detector
    (:class:`repro.core.policies.StrideDetector`) recovers the real
    pattern from the observed offsets.  This is the workload family
    where depth-aware adaptive prefetching must beat the static
    prototype (see :mod:`repro.experiments.policy_bench`).
    """

    def __init__(
        self,
        machine: Machine,
        mount: PFSMount,
        filename: str,
        request_size: int,
        stride: Optional[int] = None,
        compute_delay: float = 0.0,
        rounds: Optional[int] = None,
        nprocs: Optional[int] = None,
        prefetcher_factory: Optional[PrefetcherFactory] = None,
    ) -> None:
        if request_size <= 0:
            raise ValueError("request size must be positive")
        if compute_delay < 0:
            raise ValueError("compute delay must be non-negative")
        self.stride = stride if stride is not None else 2 * request_size
        if self.stride < request_size:
            raise ValueError("stride must be at least the request size")
        self.machine = machine
        self.mount = mount
        self.filename = filename
        self.request_size = request_size
        self.compute_delay = compute_delay
        self.rounds = rounds
        self.nprocs = nprocs or len(machine.clients)
        if self.nprocs > len(machine.clients):
            raise ValueError("more processes than compute nodes")
        self.prefetcher_factory = prefetcher_factory

    def run(self) -> WorkloadResult:
        machine = self.machine
        handles: List[Optional[PFSFileHandle]] = [None] * self.nprocs
        result = WorkloadResult(report=None)  # type: ignore[arg-type]

        def opener(rank: int):
            prefetcher = self.prefetcher_factory(rank) if self.prefetcher_factory else None
            if prefetcher is not None and prefetcher.monitor is None:
                prefetcher.monitor = machine.monitor
            handle = yield from machine.clients[rank].open(
                self.mount,
                self.filename,
                IOMode.M_ASYNC,
                rank=rank,
                nprocs=self.nprocs,
                prefetcher=prefetcher,
            )
            handles[rank] = handle

        for rank in range(self.nprocs):
            machine.spawn(opener(rank), name=f"open-{rank}")
        machine.run()
        ready: List[PFSFileHandle] = [h for h in handles if h is not None]
        assert len(ready) == self.nprocs

        pfs_file = self.mount.lookup(self.filename)
        slice_bytes = pfs_file.size_bytes // self.nprocs
        rounds = self.rounds
        if rounds is None:
            # With stride >= request_size this keeps every read inside
            # the rank's own slice (last read ends exactly at the slice
            # boundary in the stride == request_size case).
            rounds = max(1, slice_bytes // self.stride)

        result.started_at = machine.env.now

        def reader(handle: PFSFileHandle):
            pos = handle.rank * slice_bytes
            first = True
            for _ in range(rounds):
                if not first and self.compute_delay > 0:
                    yield from handle.node.compute(self.compute_delay)
                first = False
                while True:
                    try:
                        yield from handle.lseek(pos)
                        yield from handle.read(self.request_size)
                        break
                    except NodeCrashed:
                        # Re-seek and re-read after the crash window; the
                        # seek is idempotent so the retry is exactly-once.
                        yield from handle.client.wait_restarted()
                pos += self.stride

        for handle in ready:
            machine.spawn(reader(handle), name=f"reader-{handle.rank}")
        machine.run()
        result.finished_at = machine.env.now

        for handle in ready:
            machine.spawn(handle.close(), name=f"close-{handle.rank}")
        machine.run()

        result.handles = ready
        result.report = report_from_handles(ready, result.elapsed_s)
        return result


class SeparateFilesWorkload:
    """Each compute node reads its own PFS file (Figure 2's top curve).

    Files must already exist and be named ``f"{prefix}{rank}"``.
    """

    def __init__(
        self,
        machine: Machine,
        mount: PFSMount,
        prefix: str,
        request_size: int,
        compute_delay: float = 0.0,
        rounds: Optional[int] = None,
        nprocs: Optional[int] = None,
        prefetcher_factory: Optional[PrefetcherFactory] = None,
    ) -> None:
        if request_size <= 0:
            raise ValueError("request size must be positive")
        self.machine = machine
        self.mount = mount
        self.prefix = prefix
        self.request_size = request_size
        self.compute_delay = compute_delay
        self.rounds = rounds
        self.nprocs = nprocs or len(machine.clients)
        self.prefetcher_factory = prefetcher_factory

    def run(self) -> WorkloadResult:
        machine = self.machine
        handles: List[Optional[PFSFileHandle]] = [None] * self.nprocs
        result = WorkloadResult(report=None)  # type: ignore[arg-type]

        def opener(rank: int):
            prefetcher = self.prefetcher_factory(rank) if self.prefetcher_factory else None
            if prefetcher is not None and prefetcher.monitor is None:
                prefetcher.monitor = machine.monitor
            handle = yield from machine.clients[rank].open(
                self.mount,
                f"{self.prefix}{rank}",
                IOMode.M_ASYNC,
                rank=0,
                nprocs=1,
                prefetcher=prefetcher,
            )
            handles[rank] = handle

        for rank in range(self.nprocs):
            machine.spawn(opener(rank), name=f"open-{rank}")
        machine.run()
        ready: List[PFSFileHandle] = [h for h in handles if h is not None]

        result.started_at = machine.env.now

        def reader(index: int, handle: PFSFileHandle):
            rounds = self.rounds
            if rounds is None:
                rounds = max(1, handle.file.size_bytes // self.request_size)
            first = True
            for _ in range(rounds):
                if not first and self.compute_delay > 0:
                    yield from handle.node.compute(self.compute_delay)
                first = False
                while True:
                    try:
                        yield from handle.read(self.request_size)
                        break
                    except NodeCrashed:
                        yield from handle.client.wait_restarted()

        for index, handle in enumerate(ready):
            machine.spawn(reader(index, handle), name=f"reader-{index}")
        machine.run()
        result.finished_at = machine.env.now

        for handle in ready:
            machine.spawn(handle.close())
        machine.run()

        # Ranks here are all 0 (independent opens); report per index.
        report = BandwidthReport(
            total_bytes=sum(h.stats.bytes_read for h in ready),
            elapsed_s=result.elapsed_s,
        )
        prefetch_stats = None
        for index, h in enumerate(ready):
            report.read_call_time_by_rank[index] = h.stats.read_call_time
            report.bytes_by_rank[index] = h.stats.bytes_read
            report.calls_by_rank[index] = h.stats.read_calls
            if h.prefetcher is not None:
                prefetch_stats = (
                    h.prefetcher.stats
                    if prefetch_stats is None
                    else prefetch_stats.merge(h.prefetcher.stats)
                )
        report.prefetch = prefetch_stats
        result.handles = ready
        result.report = report
        return result


def merged_prefetch_stats(handles: List[PFSFileHandle]):
    """Aggregate prefetch stats across handles (None if no prefetchers)."""
    stats = None
    for h in handles:
        if h.prefetcher is not None:
            stats = h.prefetcher.stats if stats is None else stats.merge(h.prefetcher.stats)
    return stats
