"""I/O trace recording and replay.

Trace-driven runs let a measured access stream (or one generated once)
be replayed through *both* the prefetching and non-prefetching
configurations -- the reproduction band for this paper calls for
trace-driven simulation, and this is the machinery for it.

A trace is a list of :class:`TraceEvent` rows; the recorder wraps reads
on a live handle, the replayer re-issues them (optionally honouring the
recorded inter-arrival gaps as compute time).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.client import PFSFileHandle


@dataclass(frozen=True)
class TraceEvent:
    """One recorded I/O call."""

    rank: int
    op: str  # "read" | "lseek"
    offset: int  # pointer position when issued (read) or target (lseek)
    nbytes: int
    issued_at: float
    duration: float = 0.0

    def to_json(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        return cls(**json.loads(line))


class TraceRecorder:
    """Records the read stream of one handle."""

    def __init__(self, handle: "PFSFileHandle") -> None:
        self.handle = handle
        self.events: List[TraceEvent] = []

    def read(self, nbytes: int):
        """Generator: perform and record a read."""
        handle = self.handle
        env = handle.env
        offset_before = self._current_offset(nbytes)
        start = env.now
        data = yield from handle.read(nbytes)
        self.events.append(
            TraceEvent(
                rank=handle.rank,
                op="read",
                offset=offset_before,
                nbytes=len(data),
                issued_at=start,
                duration=env.now - start,
            )
        )
        return data

    def lseek(self, offset: int):
        """Generator: perform and record a seek."""
        handle = self.handle
        start = handle.env.now
        yield from handle.lseek(offset)
        self.events.append(
            TraceEvent(
                rank=handle.rank,
                op="lseek",
                offset=offset,
                nbytes=0,
                issued_at=start,
            )
        )
        return offset

    def _current_offset(self, nbytes: int) -> int:
        predicted = self.handle.next_read_offset(nbytes)
        return predicted if predicted is not None else -1

    def dump(self) -> List[str]:
        """Serialise to JSON lines."""
        return [event.to_json() for event in self.events]


class TraceReplayer:
    """Re-issues a recorded stream through a (fresh) handle."""

    def __init__(
        self,
        handle: "PFSFileHandle",
        events: Iterable[TraceEvent],
        honour_gaps: bool = False,
        compute_delay: Optional[float] = None,
    ) -> None:
        self.handle = handle
        self.events = [e for e in events if e.rank == handle.rank]
        #: Reproduce recorded inter-arrival gaps as computation.
        self.honour_gaps = honour_gaps
        #: Fixed computation between calls (overrides honour_gaps).
        self.compute_delay = compute_delay

    def replay(self):
        """Generator: run the trace to completion."""
        handle = self.handle
        previous_issue: Optional[float] = None
        previous_duration = 0.0
        for event in self.events:
            delay = 0.0
            if self.compute_delay is not None:
                delay = self.compute_delay if previous_issue is not None else 0.0
            elif self.honour_gaps and previous_issue is not None:
                recorded_gap = event.issued_at - previous_issue - previous_duration
                delay = max(0.0, recorded_gap)
            if delay > 0:
                yield from handle.node.compute(delay)
            if event.op == "read":
                yield from handle.read(event.nbytes)
            elif event.op == "lseek":
                yield from handle.lseek(event.offset)
            else:
                raise ValueError(f"unknown trace op {event.op!r}")
            previous_issue = event.issued_at
            previous_duration = event.duration
        return len(self.events)


def load_trace(lines: Iterable[str]) -> List[TraceEvent]:
    """Parse JSON-lines trace text."""
    return [TraceEvent.from_json(line) for line in lines if line.strip()]
