"""Workload generators and drivers.

- :mod:`repro.workloads.synthetic` -- the paper's synthetic workloads:
  I/O-bound readers (no computation between reads) and balanced readers
  (fixed computation delay between reads), plus the separate-files
  variant of Figure 2.
- :mod:`repro.workloads.patterns` -- offset-sequence generators
  (sequential, strided, random) for M_ASYNC studies.
- :mod:`repro.workloads.traces` -- I/O trace recording and replay for
  trace-driven runs.
- :mod:`repro.workloads.tenant` -- arrival-driven job cohorts for
  multi-tenant traffic (:mod:`repro.scale`).
"""

from repro.workloads.patterns import (
    RandomPattern,
    SequentialPattern,
    StridedPattern,
)
from repro.workloads.synthetic import (
    CollectiveReadWorkload,
    CollectiveWriteWorkload,
    SeparateFilesWorkload,
    StridedReadWorkload,
    WorkloadResult,
)
from repro.workloads.tenant import ArrivalDrivenJob
from repro.workloads.traces import TraceEvent, TraceRecorder, TraceReplayer

__all__ = [
    "ArrivalDrivenJob",
    "CollectiveReadWorkload",
    "CollectiveWriteWorkload",
    "RandomPattern",
    "SeparateFilesWorkload",
    "SequentialPattern",
    "StridedPattern",
    "StridedReadWorkload",
    "TraceEvent",
    "TraceRecorder",
    "TraceReplayer",
    "WorkloadResult",
]
