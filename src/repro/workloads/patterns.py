"""Offset-sequence generators for M_ASYNC workloads.

The shared-pointer modes compute their own offsets; M_ASYNC readers
walk the file explicitly via lseek, following one of these patterns.
All patterns are deterministic given their parameters (random uses a
seeded LCG so runs are reproducible without global RNG state).
"""

from __future__ import annotations

from typing import Iterator, Optional


class AccessPattern:
    """Yields (offset, nbytes) pairs."""

    def offsets(self) -> Iterator[tuple]:
        raise NotImplementedError


class SequentialPattern(AccessPattern):
    """Contiguous forward reads of *request_size* from *start*."""

    def __init__(
        self,
        request_size: int,
        start: int = 0,
        count: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> None:
        if request_size <= 0:
            raise ValueError("request size must be positive")
        self.request_size = request_size
        self.start = start
        self.count = count
        self.limit = limit

    def offsets(self) -> Iterator[tuple]:
        pos = self.start
        k = 0
        while self.count is None or k < self.count:
            if self.limit is not None and pos >= self.limit:
                return
            nbytes = self.request_size
            if self.limit is not None:
                nbytes = min(nbytes, self.limit - pos)
            yield pos, nbytes
            pos += nbytes
            k += 1


class StridedPattern(AccessPattern):
    """Reads of *request_size* every *stride* bytes (stride >= size)."""

    def __init__(
        self,
        request_size: int,
        stride: int,
        start: int = 0,
        count: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> None:
        if request_size <= 0:
            raise ValueError("request size must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.request_size = request_size
        self.stride = stride
        self.start = start
        self.count = count
        self.limit = limit

    def offsets(self) -> Iterator[tuple]:
        pos = self.start
        k = 0
        while self.count is None or k < self.count:
            if self.limit is not None and pos + self.request_size > self.limit:
                return
            yield pos, self.request_size
            pos += self.stride
            k += 1


class RandomPattern(AccessPattern):
    """Uniform random block-aligned reads (seeded, reproducible)."""

    _LCG_A = 6364136223846793005
    _LCG_C = 1442695040888963407
    _LCG_M = 2**64

    def __init__(
        self,
        request_size: int,
        file_size: int,
        count: int,
        seed: int = 1,
        align: Optional[int] = None,
    ) -> None:
        if request_size <= 0:
            raise ValueError("request size must be positive")
        if file_size < request_size:
            raise ValueError("file smaller than one request")
        if count <= 0:
            raise ValueError("count must be positive")
        self.request_size = request_size
        self.file_size = file_size
        self.count = count
        self.seed = seed
        self.align = align or request_size

    def offsets(self) -> Iterator[tuple]:
        state = self.seed or 1
        slots = (self.file_size - self.request_size) // self.align + 1
        for _ in range(self.count):
            state = (state * self._LCG_A + self._LCG_C) % self._LCG_M
            slot = (state >> 16) % slots
            yield slot * self.align, self.request_size
