"""Arrival-driven multi-tenant job cohorts.

The synthetic workloads in this package drive one collective at a time
and quiesce the machine between phases (``machine.run()`` as a global
barrier).  Multi-tenant traffic cannot do that -- jobs overlap -- so
:class:`ArrivalDrivenJob` packages one job's whole lifecycle as a set of
self-synchronising rank processes:

1. sleep until the job's arrival offset (simulated seconds),
2. open the job's file on every rank (cohort barrier: shared pointers
   and M_SYNC read barriers need all participants registered),
3. read ``rounds`` requests per rank, with the standard
   :class:`~repro.faults.plan.NodeCrashed` retry (wait out the restart,
   re-issue; the client replay keeps delivery exactly-once),
4. barrier again, close, move to the next file.

The machine runs once, to quiescence, with any number of these cohorts
live -- the regime :mod:`repro.scale.runner` measures.  Spawn order is
declaration order and every offset is a pure function of the scenario
seed, so results stay bit-identical under either tie-break.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.faults.plan import NodeCrashed
from repro.machine import Machine
from repro.pfs.client import PFSClient, PFSFileHandle
from repro.pfs.modes import IOMode
from repro.pfs.mount import PFSMount
from repro.workloads.synthetic import PrefetcherFactory


class ArrivalDrivenJob:
    """One job: a cohort of ``nprocs`` rank processes on given clients.

    Parameters
    ----------
    machine, mount:
        Where the job's files live.
    filenames:
        The job's own files, read sequentially (pre-created; no two
        concurrent jobs may share a file -- open() binds the cohort
        size to the file).
    iomode:
        PFS I/O mode for every open.
    request_size, rounds:
        Bytes per read call and calls per rank per file.
    clients:
        The compute-node client for each rank (``len(clients)`` ranks).
    arrival_s:
        Simulated start offset; every rank sleeps until then.
    compute_delay_s:
        Simulated computation between consecutive reads.
    prefetcher_factory:
        Called with the rank for each open (fresh prefetcher per
        handle); None disables prefetching.
    name:
        Process-name prefix (shows up in traces and leak reports).

    After the machine quiesces, ``handles`` holds every handle the job
    opened (stats survive close), ``opened_s`` is when the first file's
    cohort finished opening, and ``finished_s`` is when the last rank
    finished its reads (−1.0 if the job never completed).
    """

    def __init__(
        self,
        machine: Machine,
        mount: PFSMount,
        filenames: Sequence[str],
        iomode: IOMode,
        request_size: int,
        rounds: int,
        clients: Sequence[PFSClient],
        arrival_s: float = 0.0,
        compute_delay_s: float = 0.0,
        prefetcher_factory: Optional[PrefetcherFactory] = None,
        name: str = "job",
    ) -> None:
        if request_size <= 0:
            raise ValueError("request size must be positive")
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        if not filenames:
            raise ValueError("job needs at least one file")
        if not clients:
            raise ValueError("job needs at least one client")
        if arrival_s < 0 or compute_delay_s < 0:
            raise ValueError("arrival and compute delay must be non-negative")
        self.machine = machine
        self.mount = mount
        self.filenames = list(filenames)
        self.iomode = iomode
        self.request_size = request_size
        self.rounds = rounds
        self.clients = list(clients)
        self.arrival_s = arrival_s
        self.compute_delay_s = compute_delay_s
        self.prefetcher_factory = prefetcher_factory
        self.name = name
        self.handles: List[PFSFileHandle] = []
        self.opened_s: float = -1.0
        self.finished_s: float = -1.0

    @property
    def nprocs(self) -> int:
        return len(self.clients)

    def spawn(self) -> None:
        """Start the cohort's rank processes (returns immediately; the
        job runs whenever the caller next runs the machine)."""
        env = self.machine.env
        nprocs = self.nprocs
        # One barrier pair per file: all ranks open before any reads,
        # all ranks finish reading before any closes.
        opened = [env.event() for _ in self.filenames]
        read_done = [env.event() for _ in self.filenames]
        counters = [{"opened": 0, "read": 0} for _ in self.filenames]

        def rank_proc(rank: int):
            if self.arrival_s > 0:
                yield env.timeout(self.arrival_s)
            client = self.clients[rank]
            for index, filename in enumerate(self.filenames):
                prefetcher = (
                    self.prefetcher_factory(rank) if self.prefetcher_factory is not None else None
                )
                if prefetcher is not None and prefetcher.monitor is None:
                    prefetcher.monitor = self.machine.monitor
                handle = yield from client.open(
                    self.mount,
                    filename,
                    self.iomode,
                    rank=rank,
                    nprocs=nprocs,
                    prefetcher=prefetcher,
                )
                self.handles.append(handle)
                counters[index]["opened"] += 1
                if counters[index]["opened"] == nprocs:
                    if index == 0:
                        self.opened_s = env.now
                    opened[index].succeed()
                yield opened[index]
                if self.iomode is IOMode.M_ASYNC and nprocs > 1:
                    # Private pointers: partition the file into rank
                    # slices for a fair aggregate (mirrors
                    # CollectiveReadWorkload's async_partition).
                    yield from handle.lseek(rank * (handle.file.size_bytes // nprocs))
                first = True
                for _ in range(self.rounds):
                    if not first and self.compute_delay_s > 0:
                        yield from handle.node.compute(self.compute_delay_s)
                    first = False
                    while True:
                        try:
                            yield from handle.read(self.request_size)
                            break
                        except NodeCrashed:
                            yield from handle.client.wait_restarted()
                counters[index]["read"] += 1
                if counters[index]["read"] == nprocs:
                    self.finished_s = env.now
                    read_done[index].succeed()
                yield read_done[index]
                yield from handle.close()

        for rank in range(nprocs):
            self.machine.spawn(rank_proc(rank), name=f"{self.name}-r{rank}")

    @property
    def completed(self) -> bool:
        return self.finished_s >= 0.0

    @property
    def bytes_read(self) -> int:
        return sum(handle.stats.bytes_read for handle in self.handles)
