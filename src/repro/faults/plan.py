"""Deterministic fault plans.

A :class:`FaultPlan` is an immutable specification of *what goes wrong
when*: a tuple of :class:`FaultSpec` entries plus the
:class:`RetryPolicy` the recovery machinery uses.  The plan is pure
data -- the same plan object can drive two runs (e.g. the ``fifo`` and
``lifo`` legs of the tie-order sanitizer) without one perturbing the
other; all mutable trigger state lives in the per-machine
:class:`~repro.faults.injector.FaultInjector`.

Determinism contract
--------------------
Every trigger is a function of *simulated* time and canonically-ordered
operation counts, never of wall-clock time or unseeded randomness, so a
fault schedule is bit-identical under ``tie_break=fifo`` and ``lifo``:

- ``media_error`` / ``slow_sector`` / ``rpc_stall`` / ``server_stall``
  may count operations, because the operation streams they observe are
  settled by canonical arbitration (the RAID arm's LOOK queue, the
  :class:`~repro.sim.resources.ArbitratedStore` RPC inbox).
- ``mesh_drop`` / ``mesh_dup`` must use *time windows* (``at_s`` +
  ``window_s``): same-timestamp mesh sends on different links have no
  canonical global order, so "drop the 7th message" would be a
  tie-order race.  "Drop every matching message in [t, t+w)" is not.
- ``disk_failure`` / ``disk_repair`` fire at an absolute simulated time
  via the injector's driver process.
- ``node_crash`` / ``node_restart`` are pure *time predicates*: a client
  is "crashed" iff the simulated clock sits inside one of its plan's
  ``[crash_at, restart_at)`` windows.  No event ever fires -- both
  tie-break legs evaluate the same predicate on the same clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

#: Fault kinds and the layer that interprets them.
FAULT_KINDS = frozenset(
    {
        "media_error",  # disk/raid: bad sector; RAID-3 reconstructs from parity
        "slow_sector",  # disk/raid: positioning takes duration_s extra
        "disk_failure",  # raid: whole spindle dies at at_s (degraded mode)
        "disk_repair",  # raid: spindle replaced + rebuilt at at_s
        "mesh_drop",  # mesh: message lost after occupying its route
        "mesh_dup",  # mesh: message delivered twice
        "rpc_stall",  # rpc: dispatcher sleeps duration_s before the handler
        "server_stall",  # pfs server: read handler sleeps duration_s
        "node_crash",  # compute node: client dies at at_s (in-flight work lost)
        "node_restart",  # compute node: client returns at at_s and recovers
    }
)

#: Kinds whose triggers are time-scheduled by the injector's driver.
SCHEDULED_KINDS = frozenset({"disk_failure", "disk_repair"})

#: Kinds that must trigger by time window, never by count (no canonical
#: global operation order exists at the mesh layer).
WINDOW_ONLY_KINDS = frozenset({"mesh_drop", "mesh_dup"})

#: Compute-node lifecycle kinds; paired into ``[crash, restart)`` windows.
NODE_LIFECYCLE_KINDS = frozenset({"node_crash", "node_restart"})


class FaultError(Exception):
    """Base class for fault-plane errors (bad plans, unknown targets)."""


class NodeCrashed(FaultError):
    """The calling compute node is inside a crash window.

    Raised out of client-side paths (``PFSFileHandle.read``, the RPC
    retry loop) when the node's plan says it is down.  Workload drivers
    model the restarted application by catching this, waiting for the
    restart time, and re-issuing the interrupted call.
    """


class FaultBudgetExceeded(FaultError):
    """An RPC exhausted its retry budget without a reply.

    Carries the trace span chain of the failing call (empty when the
    run is untraced) and the per-attempt timeout history, so the
    failure names exactly which request died and what recovery tried.
    """

    def __init__(
        self,
        message: str,
        span_chain: Sequence = (),
        attempts: Sequence[float] = (),
    ) -> None:
        super().__init__(message)
        #: Innermost-first spans from the failing rpc_call to the root.
        self.span_chain = tuple(span_chain)
        #: Timeout used by each attempt, in order.
        self.attempts = tuple(attempts)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request timeout + bounded exponential backoff.

    Attempt *i* (0-based) waits ``min(timeout_s * backoff_factor**i,
    max_timeout_s)`` for a reply before retransmitting with the same
    idempotent ``msg_id``; after ``max_attempts`` attempts the call
    raises :class:`FaultBudgetExceeded`.
    """

    #: Reply timeout of the first attempt.
    timeout_s: float = 1.0
    #: Timeout growth per retry (bounded exponential backoff).
    backoff_factor: float = 2.0
    #: Ceiling on any single attempt's timeout.
    max_timeout_s: float = 8.0
    #: Total attempts (first try + retries).
    max_attempts: int = 4
    #: Times a failed *prefetch* transfer is re-issued before the buffer
    #: is marked failed (demand reads then fall back, as before).
    prefetch_retries: int = 2

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_timeout_s < self.timeout_s:
            raise ValueError("max_timeout_s must be >= timeout_s")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.prefetch_retries < 0:
            raise ValueError("prefetch_retries must be non-negative")

    def timeout_for(self, attempt: int) -> float:
        """Reply timeout of 0-based attempt *attempt*."""
        return min(self.timeout_s * self.backoff_factor**attempt, self.max_timeout_s)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, target selector, trigger, and magnitude.

    Targets are matched literally against the component's name
    (``raid0``, ``node9``, ``0,0->1,1`` for a directed mesh src->dst
    pair) with ``"*"`` matching everything.

    Trigger styles (validated in ``__post_init__``):

    - **count**: the spec skips its first ``after_n`` matching
      operations then fires on the next ``count`` of them (optionally
      gated to ``now >= at_s``).
    - **window** (``window_s > 0``): fires on *every* matching
      operation with ``at_s <= now < at_s + window_s``; ``count`` and
      ``after_n`` must stay at their defaults.  Required for mesh kinds.
    - **scheduled** (``disk_failure`` / ``disk_repair``): fires exactly
      at ``at_s`` via the injector's driver process.
    - **node lifecycle** (``node_crash`` / ``node_restart``): pure time
      predicates over ``at_s``; targets must name one concrete compute
      node (``nodeN``) and crash/restart specs for a node must pair up
      into alternating ``crash < restart`` windows.
    """

    kind: str
    target: str = "*"
    #: Simulated-time gate (count style), window start, or schedule time.
    at_s: Optional[float] = None
    #: Matching operations to skip before firing (count style).
    after_n: int = 0
    #: Operations affected once triggering starts (count style).
    count: int = 1
    #: Width of the active window (window style).
    window_s: float = 0.0
    #: Stall / latency-spike magnitude for the kinds that take one.
    duration_s: float = 0.0
    #: Which data spindle fails / is repaired (scheduled kinds).
    disk_index: int = 0
    #: Copy-back rebuild throttle for ``disk_repair``: fraction of the
    #: spindle's time the rebuild may consume (1.0 = rebuild at full
    #: media rate, 0.25 = sleep three chunk-times between chunks so
    #: foreground I/O keeps three quarters of the arm).
    rebuild_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; valid: {sorted(FAULT_KINDS)}")
        if self.after_n < 0 or self.count < 0:
            raise ValueError("after_n and count must be non-negative")
        if self.window_s < 0 or self.duration_s < 0:
            raise ValueError("window_s and duration_s must be non-negative")
        if self.kind in SCHEDULED_KINDS:
            if self.at_s is None:
                raise ValueError(f"{self.kind} requires at_s (a schedule time)")
            if self.disk_index < 0:
                raise ValueError("disk_index must be non-negative")
        if not (0.0 < self.rebuild_rate <= 1.0):
            raise ValueError("rebuild_rate must be in (0, 1]")
        if self.kind in NODE_LIFECYCLE_KINDS:
            if self.at_s is None:
                raise ValueError(f"{self.kind} requires at_s (a schedule time)")
            if self.target == "*" or not self.target.startswith("node"):
                raise ValueError(
                    f"{self.kind} must target one concrete compute node "
                    f"('nodeN'), got {self.target!r}"
                )
        if self.kind in WINDOW_ONLY_KINDS:
            # Count triggers at the mesh would be a tie-order race: there
            # is no canonical global order among same-timestamp sends.
            if self.window_s <= 0 or self.at_s is None:
                raise ValueError(
                    f"{self.kind} must use a time window (at_s + window_s): "
                    "mesh operations have no canonical count order"
                )
            if self.count != 1 or self.after_n != 0:
                raise ValueError(
                    f"{self.kind} windows affect every matching message; "
                    "count/after_n must be left at their defaults"
                )
        if self.window_s > 0 and self.at_s is None:
            raise ValueError("window_s requires at_s (the window start)")
        if self.kind in ("slow_sector", "rpc_stall", "server_stall"):
            if self.duration_s <= 0:
                raise ValueError(f"{self.kind} requires a positive duration_s")

    @property
    def windowed(self) -> bool:
        return self.window_s > 0

    def active_at(self, now: float) -> bool:
        """Window-style activity test (count gating is the injector's)."""
        if not self.windowed:
            return self.at_s is None or now >= self.at_s
        assert self.at_s is not None
        return self.at_s <= now < self.at_s + self.window_s


def mesh_pair(src: Tuple[int, int], dst: Tuple[int, int]) -> str:
    """Target string for a directed mesh (src -> dst) coordinate pair."""
    return f"{src[0]},{src[1]}->{dst[0]},{dst[1]}"


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seeded schedule of faults plus the recovery policy."""

    specs: Tuple[FaultSpec, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Seed recorded with the plan (used by the :meth:`scattered`
    #: generator; kept on the plan so artifacts name their provenance).
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any sequence of specs but store a tuple (hashable,
        # immutable -- plans are shared across sanitizer legs).
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"specs must be FaultSpec, got {spec!r}")
        for target in sorted({s.target for s in self.specs if s.kind in NODE_LIFECYCLE_KINDS}):
            self.crash_windows(target)  # raises on unpaired/overlapping specs

    def by_kind(self, kind: str) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == kind)

    def crash_windows(self, target: str) -> Tuple[Tuple[float, float], ...]:
        """Paired ``(crash_at, restart_at)`` windows for compute node
        *target*, sorted by crash time.

        Crash/restart specs for one node must pair into alternating,
        non-overlapping ``crash < restart`` windows; anything else (a
        crash with no restart, a restart with no preceding crash, two
        overlapping windows) raises :class:`FaultError` -- the predicate
        ``crashed(now)`` would otherwise be ambiguous.
        """
        crashes = sorted(
            s.at_s for s in self.specs if s.kind == "node_crash" and s.target == target
        )
        restarts = sorted(
            s.at_s for s in self.specs if s.kind == "node_restart" and s.target == target
        )
        if len(crashes) != len(restarts):
            raise FaultError(
                f"{target}: {len(crashes)} node_crash spec(s) but "
                f"{len(restarts)} node_restart spec(s); they must pair up"
            )
        windows = tuple(zip(crashes, restarts))
        last_restart = float("-inf")
        for crash_at, restart_at in windows:
            if not crash_at < restart_at:
                raise FaultError(
                    f"{target}: node_crash at {crash_at} has no later "
                    f"node_restart (next restart at {restart_at})"
                )
            if crash_at < last_restart:
                raise FaultError(
                    f"{target}: crash window starting at {crash_at} overlaps " "the previous one"
                )
            last_restart = restart_at
        return windows

    @property
    def scheduled(self) -> Tuple[FaultSpec, ...]:
        """Driver-fired specs, ordered by (time, plan position)."""
        indexed = [
            (spec.at_s, i, spec)
            for i, spec in enumerate(self.specs)
            if spec.kind in SCHEDULED_KINDS
        ]
        indexed.sort(key=lambda item: (item[0], item[1]))
        return tuple(spec for _at, _i, spec in indexed)

    # -- builders ----------------------------------------------------------

    @classmethod
    def single_disk_failure(
        cls,
        array: str = "raid0",
        at_s: float = 0.0,
        disk_index: int = 0,
        retry: Optional[RetryPolicy] = None,
    ) -> "FaultPlan":
        """One spindle of *array* dies at *at_s*: RAID-3 degraded mode."""
        return cls(
            specs=(
                FaultSpec(
                    kind="disk_failure",
                    target=array,
                    at_s=at_s,
                    disk_index=disk_index,
                ),
            ),
            retry=retry or RetryPolicy(),
        )

    @classmethod
    def crash_restart(
        cls,
        node: str = "node0",
        windows: Sequence[Tuple[float, float]] = ((0.05, 0.1),),
        retry: Optional[RetryPolicy] = None,
    ) -> "FaultPlan":
        """Compute node *node* crashes and restarts once per window."""
        specs = []
        for crash_at, restart_at in windows:
            specs.append(FaultSpec(kind="node_crash", target=node, at_s=crash_at))
            specs.append(FaultSpec(kind="node_restart", target=node, at_s=restart_at))
        return cls(specs=tuple(specs), retry=retry or RetryPolicy())

    @classmethod
    def scattered(
        cls,
        seed: int,
        horizon_s: float,
        n_faults: int = 4,
        raid_targets: Sequence[str] = ("raid0",),
        node_targets: Sequence[str] = ("*",),
        retry: Optional[RetryPolicy] = None,
        transient_only: bool = True,
    ) -> "FaultPlan":
        """Deterministic pseudo-random mix of transient faults.

        Draws from a seeded :class:`random.Random` (R002-clean), so the
        same ``(seed, horizon_s, ...)`` always yields the same plan.
        All generated faults are recoverable within the default retry
        budget: media errors reconstruct from parity, stalls are shorter
        than any attempt timeout, and mesh drop/dup windows are shorter
        than the first retry timeout.  With ``transient_only=False`` one
        mid-run single-disk failure is appended (still recoverable --
        RAID-3 survives one dead spindle).
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        rng = random.Random(seed)
        retry = retry or RetryPolicy()
        specs = []
        kinds = (
            "media_error",
            "slow_sector",
            "mesh_drop",
            "mesh_dup",
            "rpc_stall",
            "server_stall",
        )
        for _ in range(n_faults):
            kind = rng.choice(kinds)
            if kind in ("media_error", "slow_sector"):
                specs.append(
                    FaultSpec(
                        kind=kind,
                        target=rng.choice(list(raid_targets)),
                        after_n=rng.randrange(0, 8),
                        count=rng.randrange(1, 3),
                        duration_s=(
                            rng.uniform(0.005, 0.05) if kind == "slow_sector" else 0.0
                        ),
                    )
                )
            elif kind in ("mesh_drop", "mesh_dup"):
                start = rng.uniform(0.0, horizon_s)
                specs.append(
                    FaultSpec(
                        kind=kind,
                        target="*",
                        at_s=start,
                        # Shorter than the first attempt's timeout so a
                        # retransmit always escapes the window.
                        window_s=min(0.4 * retry.timeout_s, 0.2 * horizon_s),
                    )
                )
            else:  # stalls
                specs.append(
                    FaultSpec(
                        kind=kind,
                        target=rng.choice(list(node_targets)),
                        after_n=rng.randrange(0, 8),
                        count=rng.randrange(1, 3),
                        # Always below the attempt timeout: the stalled
                        # reply still lands within budget.
                        duration_s=rng.uniform(0.01, 0.5 * retry.timeout_s),
                    )
                )
        if not transient_only:
            specs.append(
                FaultSpec(
                    kind="disk_failure",
                    target=rng.choice(list(raid_targets)),
                    at_s=rng.uniform(0.0, horizon_s),
                    disk_index=rng.randrange(0, 4),
                )
            )
        return cls(specs=tuple(specs), retry=retry, seed=seed)
