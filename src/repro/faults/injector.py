"""Runtime fault injection: trigger matching, scheduled failures, audits.

One :class:`FaultInjector` is built per :class:`~repro.machine.Machine`
from the immutable :class:`~repro.faults.plan.FaultPlan`.  Components
call :meth:`FaultInjector.decide` at well-defined injection points
("should this operation be faulted?"); the injector owns all mutable
trigger state (per-spec operation counters), applies the time-scheduled
``disk_failure`` / ``disk_repair`` specs lazily via :meth:`tick`, and
keeps a delivery audit log that :meth:`Machine.verify` checks against
ground-truth file content.

Determinism: ``decide`` consults only ``env.now`` and per-spec counters
that advance with canonically-ordered operation streams; there is no
randomness here (plans are generated elsewhere, from seeds).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import SCHEDULED_KINDS, FaultError, FaultPlan, FaultSpec
from repro.sim import Environment, Monitor


def _matches(spec_target: str, target: str) -> bool:
    return spec_target == "*" or spec_target == target


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against a running machine."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.env = env
        self.plan = plan
        self.monitor = monitor
        #: Matching-operation count per count-style spec (by plan index).
        self._seen: Dict[int, int] = {}
        #: Fire count per spec (telemetry + ``fired`` report).
        self._fired: Dict[int, int] = {}
        #: Delivery audit log: ``(file_id, offset, nbytes, sha256
        #: hexdigest, kind, io_node)``.  ``kind`` is one of ``demand``
        #: (bytes handed to the application), ``prefetch`` (bytes landed
        #: in a client prefetch buffer) or ``readahead`` (blocks pulled
        #: into a server's buffer cache); demand/prefetch offsets are
        #: PFS-file-space (``io_node = -1``), readahead offsets are
        #: UFS-stripe-space on ``io_node``.
        self.deliveries: List[Tuple[int, int, int, str, str, int]] = []
        #: Scheduled specs not yet applied, in (at_s, plan) order.
        self._scheduled_pending: List[FaultSpec] = []
        self._arrays: Dict[str, Any] = {}

    # -- trigger evaluation ------------------------------------------------

    def decide(self, kind: str, target: str) -> Optional[FaultSpec]:
        """Return the first spec firing for this (kind, target) op, if any.

        Every matching count-style spec sees its operation counter
        advance (specs observe the full operation stream whether or not
        an earlier spec fires), so plans compose predictably.
        """
        now = self.env.now
        hit: Optional[Tuple[int, FaultSpec]] = None
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != kind or spec.kind in SCHEDULED_KINDS:
                continue
            if not _matches(spec.target, target):
                continue
            if spec.windowed:
                if spec.active_at(now) and hit is None:
                    hit = (index, spec)
                continue
            if spec.at_s is not None and now < spec.at_s:
                continue
            seen = self._seen.get(index, 0)
            self._seen[index] = seen + 1
            if spec.after_n <= seen < spec.after_n + spec.count and hit is None:
                hit = (index, spec)
        if hit is None:
            return None
        index, spec = hit
        self._fired[index] = self._fired.get(index, 0) + 1
        self._count(f"faults.injected.{kind}")
        return spec

    def fired(self, kind: Optional[str] = None) -> int:
        """Total fires, optionally restricted to one kind."""
        return sum(
            n
            for index, n in self._fired.items()
            if kind is None or self.plan.specs[index].kind == kind
        )

    # -- scheduled (disk failure/repair) application -----------------------

    def start(self, arrays: Dict[str, Any]) -> None:
        """Register *arrays* as the targets for time-scheduled specs.

        Scheduled failures are applied *lazily*: :meth:`tick` (called by
        the arrays at every access) applies every spec whose ``at_s`` has
        passed.  Disk state is only observable through accesses, so this
        is indistinguishable from an eager driver -- and it keeps the
        event queue free of fault timers, which would otherwise delay
        workload phases that run the simulation until quiescence.
        """
        scheduled = self.plan.scheduled
        if not scheduled:
            return
        for spec in scheduled:
            if spec.target not in arrays:
                raise FaultError(
                    f"{spec.kind} targets unknown array {spec.target!r}; "
                    f"known: {sorted(arrays)}"
                )
        self._arrays = arrays
        self._scheduled_pending = list(scheduled)

    def tick(self) -> None:
        """Apply every scheduled spec due at or before ``env.now``.

        Deterministic regardless of which array's access triggers it:
        the post-tick disk state is a pure function of ``env.now`` and
        the plan's ``(at_s, plan position)`` order.
        """
        while (self._scheduled_pending and self._scheduled_pending[0].at_s <= self.env.now):
            spec = self._scheduled_pending.pop(0)
            array = self._arrays[spec.target]
            if spec.kind == "disk_failure":
                array.fail_disk(spec.disk_index)
            else:
                array.repair_disk(spec.disk_index, rebuild_rate=spec.rebuild_rate)
            self._count(f"faults.injected.{spec.kind}")

    # -- delivery audit ----------------------------------------------------

    def record_delivery(
        self,
        file_id: int,
        offset: int,
        nbytes: int,
        data,
        kind: str = "demand",
        io_node: int = -1,
    ) -> None:
        """Log the digest of bytes delivered along one of the audited
        paths (demand read, prefetch landing, server readahead)."""
        digest = hashlib.sha256(data.to_bytes()).hexdigest()
        self.deliveries.append((file_id, offset, nbytes, digest, kind, io_node))
        self._count(f"faults.audited.{kind}")

    def _count(self, name: str, value: int = 1) -> None:
        if self.monitor is not None:
            self.monitor.counter(name).add(value)
