"""Deterministic fault-injection plane (``repro.faults``).

Splits cleanly in two:

- :mod:`repro.faults.plan` -- immutable, seeded fault *plans*
  (:class:`FaultPlan`, :class:`FaultSpec`, :class:`RetryPolicy`) plus
  the typed errors the recovery machinery raises.
- :mod:`repro.faults.injector` -- the per-machine runtime
  (:class:`FaultInjector`) that matches triggers, drives scheduled
  disk failures, and audits delivered bytes.

See ``docs/fault_injection.md`` for the taxonomy, the retry/backoff
semantics, and the degraded-mode cost model.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    FaultBudgetExceeded,
    FaultError,
    FaultPlan,
    FaultSpec,
    NodeCrashed,
    RetryPolicy,
    mesh_pair,
)

__all__ = [
    "FAULT_KINDS",
    "FaultBudgetExceeded",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NodeCrashed",
    "RetryPolicy",
    "mesh_pair",
]
