"""Setup shim.

Kept alongside pyproject.toml so `python setup.py develop` works on
environments without the `wheel` package (offline installs).
"""

from setuptools import setup

setup()
