#!/usr/bin/env python
"""Choosing a PFS I/O mode for an SPMD application.

Reproduces a compact version of the paper's Figure 2: eight compute
nodes read a shared file under each PFS I/O mode at three request
sizes, plus the separate-files configuration.  Prints the bandwidth
matrix and a recommendation.

The punchline is the paper's own: M_UNIX's atomicity serialises every
read and costs an order of magnitude; M_RECORD gives node-ordered
consistency at nearly M_ASYNC speed, which is why the prefetching
prototype (and most SPMD codes) use it.

Run:  python examples/io_mode_comparison.py
"""

from repro.experiments.figure2 import FIGURE2_MODES, run_figure2

KB = 1024


def main() -> None:
    print(__doc__)
    table = run_figure2(
        request_sizes_kb=(64, 256, 1024),
        rounds=12,
    )
    print(table.render())
    print()

    # Rank modes by their large-request bandwidth.
    big_row = table.rows[-1]
    by_mode = dict(zip(table.columns[1:], big_row[1:]))
    ranking = sorted(by_mode.items(), key=lambda kv: kv[1], reverse=True)
    print("At 1024KB requests, fastest to slowest:")
    for name, bw in ranking:
        print(f"  {name:>15}: {bw:6.2f} MB/s")
    print()

    unix_bw = by_mode["M_UNIX"]
    record_bw = by_mode["M_RECORD"]
    print(
        f"M_RECORD delivers {record_bw / unix_bw:.1f}x the bandwidth of "
        f"M_UNIX while keeping node-ordered consistency;\n"
        f"its offsets are computable locally, which is what makes it "
        f"prefetchable (modes: {[m.name for m in FIGURE2_MODES]})."
    )
    assert record_bw > unix_bw


if __name__ == "__main__":
    main()
