#!/usr/bin/env python
"""Where does a read call's time go?  Per-layer latency breakdown.

Re-runs Table 1's 256KB point (M_RECORD, I/O-bound: no computation
between reads) with request tracing enabled, once without and once with
the one-request-ahead prefetcher, and prints the per-layer critical-path
breakdown side by side.  The columns sum exactly to each run's measured
read-call time -- the breakdown is a partition, not a sample.

The I/O-bound shape of Table 1 is visible immediately.  Without
prefetching the time is where you expect: declustered transfers waiting
on ``disk_service`` and ``scsi_xfer``.  With prefetching nearly all of
it reappears as ``prefetch_wait`` -- every read is a *partial* hit that
sits waiting for its still-in-flight prefetch, because with no
computation between reads the prefetch gets no head start.  Same total,
different label: exactly why the paper measures no Table 1 benefit.

Run:  python examples/latency_breakdown.py
"""

from repro.experiments.common import run_collective, scaled_file_size
from repro.obs.export import KIND_ORDER

KB = 1024
REQUEST_SIZE = 256 * KB


def main() -> None:
    reports = {}
    for prefetch in (False, True):
        reports[prefetch] = run_collective(
            request_size=REQUEST_SIZE,
            file_size=scaled_file_size(REQUEST_SIZE),
            compute_delay=0.0,  # Table 1 is I/O-bound
            prefetch=prefetch,
            trace=True,
        )

    off, on = reports[False].breakdown, reports[True].breakdown
    total_off = sum(off.values())
    total_on = sum(on.values())

    title = f"Per-layer read-call time, Table 1 @ {REQUEST_SIZE // KB}KB"
    print(title)
    print("-" * len(title))
    header = f"{'layer':>18}  {'no-prefetch':>12}  {'%':>6}  {'prefetch':>12}  {'%':>6}"
    print(header)
    kinds = [k for k in KIND_ORDER if off.get(k, 0.0) or on.get(k, 0.0)]
    for kind in kinds:
        a, b = off.get(kind, 0.0), on.get(kind, 0.0)
        print(
            f"{kind:>18}  {a:>11.4f}s  {100 * a / total_off:>5.1f}%"
            f"  {b:>11.4f}s  {100 * b / total_on:>5.1f}%"
        )
    print(
        f"{'total':>18}  {total_off:>11.4f}s  {100.0:>5.1f}%"
        f"  {total_on:>11.4f}s  {100.0:>5.1f}%"
    )

    print()
    for prefetch, label in ((False, "without prefetching"), (True, "with prefetching")):
        r = reports[prefetch]
        print(
            f"{label:>22}: {r.collective_bandwidth_mbps:.2f} MB/s collective "
            f"({r.read_time_s:.3f}s of read calls)"
        )
    ratio = reports[True].collective_bandwidth_mbps / reports[False].collective_bandwidth_mbps
    print(
        f"\nratio = {ratio:.2f} -- the paper's Table 1 point: prefetching "
        "neither helps nor hurts much when the workload is I/O-bound."
    )


if __name__ == "__main__":
    main()
