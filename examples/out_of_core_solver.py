#!/usr/bin/env python
"""An out-of-core iterative solver -- the workload the paper's intro
motivates ("large scale scientific computations ... require processing
very large quantities of data").

The application sweeps a matrix too large for memory: each of the 8
compute nodes repeatedly reads its row-block of the current panel
(M_RECORD mode distributes panels across nodes), computes on it, and
moves to the next panel.  Per-panel compute time is proportional to the
panel size, so the I/O:compute balance -- and therefore the prefetching
benefit -- depends on the arithmetic intensity.

The example sweeps arithmetic intensity (seconds of compute per MB
read) and shows where prefetching starts paying: exactly when compute
per panel exceeds the panel read time, the paper's section 4.2 story.

Run:  python examples/out_of_core_solver.py
"""

from repro import (
    IOMode,
    Machine,
    MachineConfig,
    OneRequestAhead,
    PFSConfig,
    Prefetcher,
)
from repro.workloads import CollectiveReadWorkload

KB = 1024
MB = 1024 * 1024

MATRIX_BYTES = 64 * MB  # the out-of-core matrix (one sweep reads it all)
PANEL_BYTES = 128 * KB  # each node's row-block of one panel


def sweep(intensity_s_per_mb: float, prefetch: bool) -> tuple:
    """One full matrix sweep; returns (sweep_time_s, bandwidth_mbps)."""
    machine = Machine(MachineConfig(n_compute=8, n_io=8))
    mount = machine.mount("/pfs", PFSConfig(stripe_unit=64 * KB))
    machine.create_file(mount, "matrix", MATRIX_BYTES)

    compute_per_panel = intensity_s_per_mb * (PANEL_BYTES / MB)
    workload = CollectiveReadWorkload(
        machine,
        mount,
        "matrix",
        request_size=PANEL_BYTES,
        compute_delay=compute_per_panel,
        iomode=IOMode.M_RECORD,
        prefetcher_factory=((lambda rank: Prefetcher(OneRequestAhead())) if prefetch else None),
    )
    result = workload.run()
    return result.elapsed_s, result.report.collective_bandwidth_mbps


def main() -> None:
    print(__doc__)
    header = (
        f"{'compute (s/MB)':>15} {'sweep noPF (s)':>15} {'sweep PF (s)':>13} "
        f"{'saved':>7} {'read BW PF (MB/s)':>18}"
    )
    print(header)
    print("-" * len(header))
    crossover = None
    for intensity in (0.0, 0.1, 0.25, 0.5, 1.0, 2.0):
        t_base, _ = sweep(intensity, prefetch=False)
        t_pf, bw_pf = sweep(intensity, prefetch=True)
        saved = 1.0 - t_pf / t_base
        if crossover is None and saved > 0.10:
            crossover = intensity
        print(f"{intensity:>15.2f} {t_base:>15.2f} {t_pf:>13.2f} " f"{saved:>6.0%} {bw_pf:>18.2f}")
    print()
    if crossover is not None:
        print(
            f"Prefetching starts saving wall-clock once compute reaches "
            f"~{crossover} s/MB:\nthe panel read (~0.1 s) then hides "
            f"entirely behind the computation, so the solver\nbecomes "
            f"compute-bound instead of I/O-bound."
        )
    else:
        print("Prefetching never paid off -- the workload is I/O bound throughout.")


if __name__ == "__main__":
    main()
