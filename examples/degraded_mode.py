#!/usr/bin/env python
"""Degraded-mode bandwidth: what one dead spindle costs.

Each I/O node's RAID-3 array survives a single disk failure: reads of
the failed spindle's data are reconstructed on the fly from the
surviving disks plus parity, which costs an extra SCSI transfer of the
per-disk share and an XOR pass over the full request.  This example
runs the paper's collective read workload three times -- healthy, one
spindle failed from t=0, and one spindle failing mid-run -- and reports
the bandwidth each sustains.  Every byte delivered is still verified
against ground truth (``machine.verify()``), so "degraded" means
slower, never wrong.

Run:  PYTHONPATH=src python examples/degraded_mode.py
"""

from repro.experiments.common import KB, run_collective, scaled_file_size
from repro.faults import FaultPlan
from repro.pfs import IOMode

ROUNDS = 8
REQUEST = 256 * KB


def run(label: str, faults) -> float:
    report = run_collective(
        request_size=REQUEST,
        file_size=scaled_file_size(REQUEST, rounds=ROUNDS),
        iomode=IOMode.M_RECORD,
        prefetch=True,
        rounds=ROUNDS,
        faults=faults,
        keep_machine=True,
    )
    machine = report.machine
    problems = machine.verify()
    assert problems == [], problems
    degraded_reads = machine.monitor.counter_value("raid0.degraded_reads")
    print(
        f"  {label:<28} {report.collective_bandwidth_mbps:7.2f} MB/s"
        f"   (degraded reads on raid0: {int(degraded_reads)})"
    )
    return report.collective_bandwidth_mbps


def main() -> None:
    print(__doc__)
    healthy = run("healthy", None)
    full = run(
        "spindle dead from t=0",
        FaultPlan.single_disk_failure(array="raid0", at_s=0.0),
    )
    run(
        "spindle dies mid-run",
        FaultPlan.single_disk_failure(array="raid0", at_s=0.5),
    )
    print(
        f"\nOne failed spindle costs {100 * (1 - full / healthy):.0f}% of "
        "collective bandwidth here: every read touching the dead disk's\n"
        "array pays a parity-share SCSI transfer plus an XOR pass, and the\n"
        "failed array drags the whole declustered stripe behind it."
    )


if __name__ == "__main__":
    main()
