#!/usr/bin/env python
"""Tuning PFS stripe attributes for a workload (paper sections 4.3/4.4).

"Stripe attributes describe how the file is to be laid out via
parameters such as the stripe unit size ... and the stripe group."

This example takes one workload -- 8 nodes reading 256KB records with a
little computation between reads -- and measures it across a grid of
stripe units and stripe factors, printing the grid and the best cell.
It reproduces the paper's two findings at once: more I/O nodes in the
stripe group win (Table 4), and the stripe unit interacts with the
request size (Table 3).

Run:  python examples/stripe_tuning.py
"""

from repro.experiments.common import run_collective, scaled_file_size
from repro.pfs import IOMode

KB = 1024

REQUEST = 256 * KB
DELAY_S = 0.025
STRIPE_UNITS_KB = (16, 64, 256, 1024)
STRIPE_FACTORS = (1, 2, 4, 8)


def main() -> None:
    print(__doc__)
    file_size = scaled_file_size(REQUEST, 8, 16)
    print(
        f"Workload: 8 nodes x 256KB records, {DELAY_S * 1000:.0f}ms compute "
        f"between reads, prefetching on.\n"
    )
    label = "su / factor"
    header = f"{label:>12}" + "".join(f"{f:>10}" for f in STRIPE_FACTORS)
    print(header)
    print("-" * len(header))
    best = (0.0, None, None)
    for su_kb in STRIPE_UNITS_KB:
        cells = []
        for factor in STRIPE_FACTORS:
            report = run_collective(
                request_size=REQUEST,
                file_size=file_size,
                compute_delay=DELAY_S,
                iomode=IOMode.M_RECORD,
                prefetch=True,
                stripe_unit=su_kb * KB,
                stripe_factor=factor,
            )
            bw = report.collective_bandwidth_mbps
            cells.append(bw)
            if bw > best[0]:
                best = (bw, su_kb, factor)
        print(f"{su_kb:>10}KB" + "".join(f"{c:>10.2f}" for c in cells))
    print()
    bw, su_kb, factor = best
    print(
        f"Best: stripe unit {su_kb}KB across {factor} I/O nodes "
        f"({bw:.2f} MB/s).\n"
        f"Wider stripe groups win (paper Table 4); past that, match the\n"
        f"stripe unit to request_size/stripe_factor so every I/O node\n"
        f"contributes to every request (paper Table 3 / Figure 3)."
    )


if __name__ == "__main__":
    main()
