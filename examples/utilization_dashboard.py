#!/usr/bin/env python
"""Which resource fills up first?  A utilization dashboard for Table 1.

Re-runs Table 1 points around the paper's 160->224 KB crossover -- the
request size where prefetching flips from a slight loss to a clear win
-- with fleet telemetry enabled, and renders for each size:

- the prefetch on/off bandwidth ratio (the Table 1 cell),
- the bottleneck report (busiest resource and its busy fraction),
- a per-disk utilization timeline and heatmap over simulated time.

The charts tell the crossover's story: at every size the RAID disks are
the bottleneck (the mesh and CPUs idle), but below the crossover the
per-request stripe touches few disks per interval, so a prefetch stream
competes with demand reads for the same spindles and only adds queueing.
Past the crossover each request spans the full stripe group, the disks
sit pinned near 100% either way, and the prefetcher's overlap is free.

Run:  python examples/utilization_dashboard.py
"""

from repro.experiments.common import run_collective, scaled_file_size

KB = 1024

#: Table 1 sizes bracketing the paper's 160->224 KB crossover.
REQUEST_SIZES_KB = (64, 128, 160, 224, 512)


def main() -> None:
    print("Table 1 crossover, instrumented (8 compute / 8 I/O nodes)")
    print("=" * 57)
    for size_kb in REQUEST_SIZES_KB:
        request = size_kb * KB
        file_size = scaled_file_size(request)
        off = run_collective(request_size=request, file_size=file_size, prefetch=False)
        on = run_collective(
            request_size=request,
            file_size=file_size,
            prefetch=True,
            telemetry=True,
            keep_machine=True,
        )
        ratio = off.collective_bandwidth_mbps and (
            on.collective_bandwidth_mbps / off.collective_bandwidth_mbps
        )
        verdict = "prefetch wins" if ratio > 1.0 else "prefetch loses"
        print(
            f"\n--- request {size_kb} KB: "
            f"{off.collective_bandwidth_mbps:.2f} MB/s off, "
            f"{on.collective_bandwidth_mbps:.2f} MB/s on "
            f"(ratio {ratio:.2f}, {verdict}) ---"
        )
        print(on.bottleneck.describe())
        obs = on.machine.obs
        print()
        print(obs.timeline(
            family="disk_busy_seconds",
            bins=24,
            title=f"per-disk utilization, {size_kb}KB requests (prefetch on)",
            height=10,
        ))
        print()
        print(obs.heatmap(family="disk_busy_seconds", bins=48))


if __name__ == "__main__":
    main()
