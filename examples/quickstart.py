#!/usr/bin/env python
"""Quickstart: does prefetching help my application?

Builds the paper's machine (8 compute nodes, 8 I/O nodes, 64KB
file-system blocks), runs a balanced parallel read workload -- each node
reads 64KB records of a shared 32MB file in M_RECORD mode with 50ms of
computation between reads -- once without and once with the
one-request-ahead prefetcher, and reports the paper's collective read
bandwidth metric plus the prefetch hit statistics.

Run:  python examples/quickstart.py
"""

from repro import (
    CollectiveReadWorkload,
    IOMode,
    Machine,
    MachineConfig,
    OneRequestAhead,
    PFSConfig,
    Prefetcher,
)

KB = 1024
MB = 1024 * 1024


def run(prefetch: bool) -> None:
    # A fresh machine per configuration: simulations are deterministic,
    # so the comparison is exact.
    machine = Machine(MachineConfig(n_compute=8, n_io=8))
    mount = machine.mount("/pfs", PFSConfig(stripe_unit=64 * KB))
    machine.create_file(mount, "data", 32 * MB)

    workload = CollectiveReadWorkload(
        machine,
        mount,
        "data",
        request_size=64 * KB,
        compute_delay=0.05,  # 50 ms of computation per record
        iomode=IOMode.M_RECORD,
        prefetcher_factory=(
            (lambda rank: Prefetcher(OneRequestAhead())) if prefetch else None
        ),
    )
    result = workload.run()
    report = result.report

    label = "with prefetching" if prefetch else "without prefetching"
    print(f"--- {label} ---")
    print(f"  collective read bandwidth: {report.collective_bandwidth_mbps:8.2f} MB/s")
    print(f"  wall-clock (simulated):    {result.elapsed_s:8.2f} s")
    print(f"  mean read access time:     {report.mean_read_access_time_s * 1000:8.2f} ms")
    print(f"  per-node balance (min/max):{report.balanced:8.2f}")
    if report.prefetch is not None:
        print(f"  prefetch: {report.prefetch.summary()}")
    print()


def main() -> None:
    print(__doc__)
    run(prefetch=False)
    run(prefetch=True)
    print(
        "With computation to hide the disk latency behind, prefetching\n"
        "turns most reads into buffer hits and the observed read\n"
        "bandwidth rises by several x -- exactly the paper's Figure 4."
    )


if __name__ == "__main__":
    main()
