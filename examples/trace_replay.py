#!/usr/bin/env python
"""Trace-driven evaluation: record once, replay under both configurations.

The reproduction band for this paper calls for trace-driven simulation;
this example shows the machinery end to end:

1. Run a "production" application (mixed sequential reads with varying
   compute phases) and record every I/O call per rank.
2. Replay the recorded trace -- same offsets, same inter-arrival
   compute gaps -- through a fresh machine without prefetching, and
   again with it.
3. Compare the replays and print per-rank prefetch statistics.

Run:  python examples/trace_replay.py
"""

from repro import (
    IOMode,
    Machine,
    MachineConfig,
    OneRequestAhead,
    PFSConfig,
    Prefetcher,
)
from repro.workloads.traces import TraceRecorder, TraceReplayer, load_trace

KB = 1024
MB = 1024 * 1024

NPROCS = 8
FILE_BYTES = 32 * MB


def build_machine():
    machine = Machine(MachineConfig(n_compute=NPROCS, n_io=8))
    mount = machine.mount("/pfs", PFSConfig(stripe_unit=64 * KB))
    machine.create_file(mount, "data", FILE_BYTES)
    return machine, mount


def application(recorder, env):
    """The 'production' app: phases of small and large reads with
    data-dependent compute bursts."""
    # Phase 1: scan header blocks quickly.
    for _ in range(4):
        yield from recorder.read(64 * KB)
    # Phase 2: heavy compute per large record.
    for _ in range(6):
        yield from recorder.handle.node.compute(0.08)
        yield from recorder.read(128 * KB)
    # Phase 3: lighter compute, medium records.
    for _ in range(6):
        yield from recorder.handle.node.compute(0.03)
        yield from recorder.read(64 * KB)


def record_trace():
    machine, mount = build_machine()
    recorders = []

    def run_rank(rank):
        handle = yield from machine.clients[rank].open(
            mount, "data", IOMode.M_RECORD, rank=rank, nprocs=NPROCS
        )
        recorder = TraceRecorder(handle)
        recorders.append(recorder)
        yield from application(recorder, machine.env)
        yield from handle.close()

    for rank in range(NPROCS):
        machine.spawn(run_rank(rank))
    machine.run()

    lines = [line for r in recorders for line in r.dump()]
    print(f"recorded {len(lines)} I/O events across {NPROCS} ranks")
    return lines


def replay(lines, prefetch: bool):
    machine, mount = build_machine()
    events = load_trace(lines)
    handles = []

    def run_rank(rank):
        prefetcher = Prefetcher(OneRequestAhead()) if prefetch else None
        handle = yield from machine.clients[rank].open(
            mount,
            "data",
            IOMode.M_RECORD,
            rank=rank,
            nprocs=NPROCS,
            prefetcher=prefetcher,
        )
        handles.append(handle)
        replayer = TraceReplayer(handle, events, honour_gaps=True)
        yield from replayer.replay()
        yield from handle.close()

    for rank in range(NPROCS):
        machine.spawn(run_rank(rank))
    machine.run()

    elapsed = machine.env.now
    read_time = max(h.stats.read_call_time for h in handles)
    total = sum(h.stats.bytes_read for h in handles)
    return elapsed, total / read_time / MB, handles


def main() -> None:
    print(__doc__)
    lines = record_trace()

    base_elapsed, base_bw, _ = replay(lines, prefetch=False)
    pf_elapsed, pf_bw, pf_handles = replay(lines, prefetch=True)

    print(f"\nreplay without prefetching: {base_elapsed:6.2f}s, read BW {base_bw:6.2f} MB/s")
    print(f"replay with prefetching:    {pf_elapsed:6.2f}s, read BW {pf_bw:6.2f} MB/s")
    print(f"observed-bandwidth gain:    {pf_bw / base_bw:6.2f}x\n")

    print("per-rank prefetch statistics:")
    for handle in sorted(pf_handles, key=lambda h: h.rank):
        print(f"  rank {handle.rank}: {handle.prefetcher.stats.summary()}")


if __name__ == "__main__":
    main()
