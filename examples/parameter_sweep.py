#!/usr/bin/env python
"""Sweeping the configuration space with the Campaign tool.

Runs the (request size x compute delay x prefetch) grid on fresh
machines, prints the CSV (paste into any plotting tool), and reports the
best-performing point plus the prefetching break-even frontier: for each
request size, the smallest delay at which prefetching pays >25%.

Run:  python examples/parameter_sweep.py
"""

from repro.experiments.campaign import Campaign
from repro.experiments.common import KB, run_collective, scaled_file_size


def measure(point):
    report = run_collective(
        request_size=point["request_kb"] * KB,
        file_size=scaled_file_size(point["request_kb"] * KB, 8, 12),
        compute_delay=point["delay_s"],
        prefetch=point["prefetch"],
        rounds=12,
    )
    return {"bw_mbps": report.collective_bandwidth_mbps}


def main() -> None:
    print(__doc__)
    campaign = Campaign(
        name="prefetch-frontier",
        axes={
            "request_kb": [64, 256, 1024],
            "delay_s": [0.0, 0.05, 0.1, 0.2],
            "prefetch": [False, True],
        },
        run=measure,
    )
    print(f"running {len(campaign.points)} configurations...\n")
    campaign.run_all()
    print(campaign.to_csv())
    print()

    best = campaign.best("bw_mbps")
    print(
        f"best observed: {best['bw_mbps']:.1f} MB/s at "
        f"{best['request_kb']}KB requests, {best['delay_s']}s delay, "
        f"prefetch={best['prefetch']}\n"
    )

    by_key = {(r["request_kb"], r["delay_s"], r["prefetch"]): r["bw_mbps"] for r in campaign.rows}
    print("prefetching break-even frontier (first delay with >25% gain):")
    for request_kb in (64, 256, 1024):
        frontier = None
        for delay in (0.0, 0.05, 0.1, 0.2):
            gain = by_key[(request_kb, delay, True)] / by_key[(request_kb, delay, False)]
            if gain > 1.25:
                frontier = delay
                break
        label = f"{frontier}s" if frontier is not None else "never (in this sweep)"
        print(f"  {request_kb:>5}KB requests: {label}")
    print(
        "\nThe frontier tracks each request size's access time (paper "
        "Table 2):\nprefetching pays exactly when the computation between "
        "reads covers the read."
    )


if __name__ == "__main__":
    main()
