#!/usr/bin/env python
"""Checkpoint / restart -- exercising the PFS write path and prefetched
restart reads together.

A long-running simulation on 8 compute nodes periodically checkpoints
its distributed state (M_RECORD writes: each node writes its own record
slot, no coordination messages) and later restarts, reading the
checkpoint back.  The restart read alternates state-rebuild computation
with record reads -- exactly the balanced access pattern where the
paper's prefetcher shines -- so restart time drops substantially with
prefetching enabled.

Run:  python examples/checkpoint_restart.py
"""

from repro import (
    IOMode,
    Machine,
    MachineConfig,
    OneRequestAhead,
    PFSConfig,
    Prefetcher,
)
from repro.ufs.data import SyntheticData

KB = 1024
MB = 1024 * 1024

NPROCS = 8
RECORD = 128 * KB          # per-node state slice per checkpoint step
STEPS = 8                  # checkpoint records per node
REBUILD_S = 0.08           # computation to rebuild state per record


def build():
    machine = Machine(MachineConfig(n_compute=NPROCS, n_io=8))
    mount = machine.mount("/ckpt", PFSConfig(stripe_unit=64 * KB))
    machine.create_file(mount, "checkpoint", 0)
    return machine, mount


def checkpoint(machine, mount):
    """Phase 1: all nodes write their state, step by step."""
    handles = [None] * NPROCS

    def writer(rank):
        handle = yield from machine.clients[rank].open(
            mount, "checkpoint", IOMode.M_RECORD, rank=rank, nprocs=NPROCS
        )
        handles[rank] = handle
        for step in range(STEPS):
            # Simulated state: deterministic content per (rank, step).
            state = SyntheticData(rank * 1000 + step, 0, RECORD)
            yield from handle.node.compute(0.02)  # produce the state
            yield from handle.write(state)
        yield from handle.close()

    t0 = machine.env.now
    for rank in range(NPROCS):
        machine.spawn(writer(rank))
    machine.run()
    return machine.env.now - t0


def restart(machine, mount, prefetch: bool):
    """Phase 2: read the checkpoint back, rebuilding state per record."""
    handles = [None] * NPROCS

    def reader(rank):
        prefetcher = Prefetcher(OneRequestAhead()) if prefetch else None
        handle = yield from machine.clients[rank].open(
            mount,
            "checkpoint",
            IOMode.M_RECORD,
            rank=rank,
            nprocs=NPROCS,
            prefetcher=prefetcher,
        )
        handles[rank] = handle
        for step in range(STEPS):
            data = yield from handle.read(RECORD)
            expected = SyntheticData(rank * 1000 + step, 0, RECORD)
            assert data == expected, f"corrupt restart at rank {rank} step {step}"
            yield from handle.node.compute(REBUILD_S)  # rebuild state
        yield from handle.close()

    t0 = machine.env.now
    for rank in range(NPROCS):
        machine.spawn(reader(rank))
    machine.run()
    return machine.env.now - t0, handles


def main() -> None:
    print(__doc__)
    machine, mount = build()
    t_ckpt = checkpoint(machine, mount)
    total = NPROCS * STEPS * RECORD / MB
    print(f"checkpoint: {total:.0f}MB written in {t_ckpt:.2f}s " f"({total / t_ckpt:.2f} MB/s)\n")

    t_cold, _ = restart(machine, mount, prefetch=False)
    print(f"restart without prefetching: {t_cold:6.2f}s")

    t_warm, handles = restart(machine, mount, prefetch=True)
    pf = handles[0].prefetcher.stats
    for h in handles[1:]:
        pf = pf.merge(h.prefetcher.stats)
    print(f"restart with prefetching:    {t_warm:6.2f}s "
          f"({(1 - t_warm / t_cold):.0%} faster; {pf.summary()})")
    print(
        "\nEvery record was verified byte-identical to what was written --\n"
        "prefetching changes timing, never data.  The M_RECORD layout means\n"
        "each node's next record is predictable, so restart reads overlap\n"
        "with the state rebuild computation."
    )
    assert t_warm < t_cold


if __name__ == "__main__":
    main()
