"""Unit tests for the bandwidth metrics (the paper's section-4 definitions)."""

import pytest

from repro.metrics import MB, BandwidthReport, report_from_handles


def make_report(**kwargs):
    defaults = dict(total_bytes=8 * MB, elapsed_s=2.0)
    defaults.update(kwargs)
    return BandwidthReport(**defaults)


class TestBandwidthReport:
    def test_collective_bandwidth_uses_slowest_node(self):
        report = make_report()
        report.read_call_time_by_rank = {0: 1.0, 1: 2.0, 2: 0.5}
        # 8MB / 2.0s (slowest node's in-call time) = 4 MB/s.
        assert report.read_time_s == 2.0
        assert report.collective_bandwidth_mbps == pytest.approx(4.0)

    def test_elapsed_bandwidth(self):
        report = make_report()
        assert report.elapsed_bandwidth_mbps == pytest.approx(4.0)

    def test_empty_report_is_safe(self):
        report = make_report(total_bytes=0, elapsed_s=0.0)
        assert report.collective_bandwidth_mbps == 0.0
        assert report.elapsed_bandwidth_mbps == 0.0
        assert report.read_time_s == 0.0
        assert report.mean_read_access_time_s == 0.0
        assert report.balanced == 1.0

    def test_per_node_bandwidth(self):
        report = make_report()
        report.read_call_time_by_rank = {0: 1.0, 1: 2.0}
        report.bytes_by_rank = {0: 4 * MB, 1: 4 * MB}
        per_node = report.per_node_bandwidth_mbps
        assert per_node[0] == pytest.approx(4.0)
        assert per_node[1] == pytest.approx(2.0)

    def test_balanced_metric(self):
        report = make_report()
        report.read_call_time_by_rank = {0: 1.0, 1: 1.0}
        report.bytes_by_rank = {0: 4 * MB, 1: 2 * MB}
        # min/max per-node bandwidth = 2/4.
        assert report.balanced == pytest.approx(0.5)

    def test_mean_access_time(self):
        report = make_report()
        report.read_call_time_by_rank = {0: 1.0, 1: 3.0}
        report.calls_by_rank = {0: 10, 1: 10}
        assert report.mean_read_access_time_s == pytest.approx(0.2)


class TestReportFromHandles:
    def test_aggregates_real_handles(self):
        from repro.config import MachineConfig, PFSConfig
        from repro.machine import Machine
        from repro.pfs import IOMode

        machine = Machine(MachineConfig(n_compute=2, n_io=2))
        mount = machine.mount("/pfs", PFSConfig())
        machine.create_file(mount, "data", 1024 * 1024)
        handles = []

        def runner(rank):
            handle = yield from machine.clients[rank].open(
                mount, "data", IOMode.M_RECORD, rank=rank, nprocs=2
            )
            handles.append(handle)
            yield from handle.read(64 * 1024)
            yield from handle.read(64 * 1024)

        for rank in range(2):
            machine.spawn(runner(rank))
        machine.run()

        report = report_from_handles(handles, elapsed_s=machine.env.now)
        assert report.total_bytes == 4 * 64 * 1024
        assert set(report.read_call_time_by_rank) == {0, 1}
        times = report.read_call_time_by_rank
        assert all(times[r] > 0 for r in sorted(times))
        assert report.calls_by_rank == {0: 2, 1: 2}
        assert report.prefetch is None
        assert 0 < report.collective_bandwidth_mbps < 1000

    def test_merges_prefetch_stats(self):
        from repro.config import MachineConfig, PFSConfig
        from repro.core import OneRequestAhead, Prefetcher
        from repro.machine import Machine
        from repro.pfs import IOMode

        machine = Machine(MachineConfig(n_compute=2, n_io=2))
        mount = machine.mount("/pfs", PFSConfig())
        machine.create_file(mount, "data", 4 * 1024 * 1024)
        handles = []

        def runner(rank):
            handle = yield from machine.clients[rank].open(
                mount,
                "data",
                IOMode.M_RECORD,
                rank=rank,
                nprocs=2,
                prefetcher=Prefetcher(OneRequestAhead()),
            )
            handles.append(handle)
            for _ in range(3):
                yield from handle.read(64 * 1024)

        for rank in range(2):
            machine.spawn(runner(rank))
        machine.run()

        report = report_from_handles(handles, elapsed_s=machine.env.now)
        assert report.prefetch is not None
        # Both ranks' stats merged: 3 demand reads each.
        assert report.prefetch.demand_reads == 6
