"""Safety net for the PR-6 kernel fast paths.

The fast-kernel refactor (merged grants, closed-form RAID transfers,
callback worms on the mesh, event elision) is only legal if it is
*unobservable*: every report must stay bit-identical to the stepped
implementation, under either same-timestamp tie-break, with or without
telemetry, and the fast paths must fall back to stepping whenever a
fault plan, tracer, or telemetry probe could observe the difference.
This module pins each of those contracts:

- the bench3 and copy-back-rebuild golden fingerprints re-verified
  under *both* tie-breaks (the goldens were captured before any fast
  path existed, so matching them proves the refactor changed nothing);
- a mid-window fault spec splitting what the fast path would have
  batched -- with any fault plan active, batching is disabled wholesale
  and the stepped fallback must remain tie-order deterministic;
- telemetry on vs. off produces identical report fingerprints (the
  zero-overhead fast paths may skip *events*, never *numbers*);
- the zero-overhead contract itself: an unconfigured machine installs
  no tick hooks and takes no samples, so the per-event fast path in
  ``Environment.run`` pays nothing for observability it isn't using.
"""

import json
import pathlib

import pytest

from repro.analysis.sanitizers import report_fingerprint
from repro.experiments.common import (
    KB,
    run_collective,
    run_multipass,
    run_separate_files,
    scaled_file_size,
)
from repro.faults import FaultPlan, FaultSpec
from repro.pfs import IOMode

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The canonical rebuild scenario pinned by the rebuild golden: spindle
#: 0 of raid0 dies at t=0, its replacement arrives at t=0.01 and is
#: copied back at half rate.  The repair window opens *mid-run*, so a
#: sequential read stream that the fast path would schedule as one
#: batch is split by the rebuild traffic -- the definitive fallback
#: test.
REBUILD_PLAN = FaultPlan(
    specs=(
        FaultSpec(kind="disk_failure", target="raid0", at_s=0.0, disk_index=0),
        FaultSpec(kind="disk_repair", target="raid0", at_s=0.01, disk_index=0, rebuild_rate=0.5),
    ),
)


def _bench3_cell(size_kb: int, prefetch: bool, tie_break: str = "fifo", **kwargs):
    return run_collective(
        request_size=size_kb * KB,
        file_size=scaled_file_size(size_kb * KB, rounds=4),
        iomode=IOMode.M_RECORD,
        prefetch=prefetch,
        rounds=4,
        tie_break=tie_break,
        **kwargs,
    )


class TestGoldensUnderBothTieBreaks:
    """Fast paths reproduce the pre-refactor goldens, fifo and lifo."""

    @pytest.fixture(scope="class")
    def bench3_golden(self):
        with open(GOLDEN_DIR / "bench3_fingerprints.json") as fh:
            return json.load(fh)["cells"]

    @pytest.fixture(scope="class")
    def rebuild_golden(self):
        with open(GOLDEN_DIR / "rebuild_fingerprint.json") as fh:
            return json.load(fh)

    @pytest.mark.parametrize("tie_break", ["fifo", "lifo"])
    @pytest.mark.parametrize("size_kb,prefetch", [(64, False), (64, True), (256, True)])
    def test_bench3_cells(self, bench3_golden, size_kb, prefetch, tie_break):
        report = _bench3_cell(size_kb, prefetch, tie_break=tie_break)
        key = f"table1:{size_kb}kb:prefetch={prefetch}"
        assert report_fingerprint(report) == bench3_golden[key]

    @pytest.mark.parametrize("tie_break", ["fifo", "lifo"])
    def test_separate_files_cell(self, bench3_golden, tie_break):
        report = run_separate_files(
            request_size=64 * KB,
            file_size_per_node=64 * KB * 4,
            tie_break=tie_break,
        )
        key = "figure2:64kb:SEPARATE_FILES"
        assert report_fingerprint(report) == bench3_golden[key]

    @pytest.mark.parametrize("tie_break", ["fifo", "lifo"])
    def test_rebuild_golden_mid_window_split(self, rebuild_golden, tie_break):
        """A fault window opening mid-run forces the stepped fallback.

        With ``faults`` set, every batching gate (RAID closed-form
        transfers, mesh callback worms, fire-and-forget inbox puts) is
        off from construction, so the rebuild window can never observe
        a half-merged batch; this pins that the fallback still matches
        the golden capture under both tie-breaks.
        """
        report = run_multipass(
            64 * KB,
            scaled_file_size(64 * KB, rounds=4),
            passes=6,
            rounds=4,
            faults=REBUILD_PLAN,
            tie_break=tie_break,
        )
        assert report_fingerprint(report) == rebuild_golden["fingerprint"]


class TestTelemetryInvariance:
    """Telemetry may add samples, never change measured numbers."""

    @pytest.mark.parametrize("prefetch", [False, True])
    def test_fingerprint_identical_with_telemetry(self, prefetch):
        plain = _bench3_cell(64, prefetch)
        sampled = _bench3_cell(64, prefetch, telemetry=True)
        assert report_fingerprint(plain) == report_fingerprint(sampled)

    def test_telemetry_actually_sampled(self):
        report = _bench3_cell(64, True, telemetry=True, keep_machine=True)
        telemetry = report.machine.obs.telemetry
        assert telemetry.enabled
        assert telemetry.n_samples > 0
        # The sampler rides the environment's tick hook.
        assert report.machine.env._tick_hooks


class TestZeroOverheadContract:
    """An unconfigured machine pays nothing per event for observability."""

    def test_no_tick_hooks_no_samples_by_default(self):
        report = _bench3_cell(64, True, keep_machine=True)
        machine = report.machine
        assert machine.env._tick_hooks == []
        telemetry = machine.obs.telemetry
        assert not telemetry.enabled
        assert telemetry.n_samples == 0
        assert not telemetry.registry.families

    def test_disabled_tick_hook_is_a_no_op(self):
        """Defensive guard: even a stray hook on a disabled telemetry
        must not sample (the hook is normally never installed)."""
        report = _bench3_cell(64, False, keep_machine=True)
        telemetry = report.machine.obs.telemetry
        telemetry._on_tick(1.0)
        assert telemetry.n_samples == 0
