"""Tests for the ASCII chart renderer used by figure artifacts."""

import pytest

from repro.experiments.ascii_chart import plot_series, plot_table
from repro.experiments.common import ExperimentTable


class TestPlotSeries:
    def test_basic_render_contains_markers_and_legend(self):
        text = plot_series(
            [0, 1, 2],
            {"up": [0.0, 5.0, 10.0], "flat": [3.0, 3.0, 3.0]},
            title="demo",
        )
        assert "demo" in text
        assert "o=up" in text and "x=flat" in text
        assert "o" in text and "x" in text

    def test_higher_values_render_higher(self):
        text = plot_series([0, 1], {"s": [0.0, 10.0]})
        lines = [line for line in text.splitlines() if "|" in line]
        first_marker_row = next(i for i, l in enumerate(lines) if "o" in l)
        last_marker_row = max(i for i, l in enumerate(lines) if "o" in l)
        # The y=10 point is on an earlier (higher) row than the y=0 point.
        assert first_marker_row < last_marker_row

    def test_axis_labels(self):
        text = plot_series([0, 1], {"s": [1.0, 2.0]}, x_label="delay", y_label="MB/s")
        assert "x: delay" in text
        assert "y: MB/s" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            plot_series([0, 1], {"s": [1.0]})

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            plot_series([], {"s": []})
        with pytest.raises(ValueError):
            plot_series([0], {})

    def test_constant_zero_series(self):
        # Degenerate range must not divide by zero.
        text = plot_series([0, 1], {"s": [0.0, 0.0]})
        assert "o" in text

    def test_single_point(self):
        text = plot_series([5], {"s": [2.5]})
        assert "o" in text


class TestPlotTable:
    def test_plots_numeric_columns_only(self):
        table = ExperimentTable(title="t", columns=["x", "bw", "name"])
        table.add_row(0, 1.0, "a")
        table.add_row(1, 2.0, "b")
        text = plot_table(table, "x")
        assert "o=bw" in text
        assert "name" not in text.split("legend:")[1]

    def test_uses_table_title_by_default(self):
        table = ExperimentTable(title="My Figure", columns=["x", "y"])
        table.add_row(0, 1.0)
        table.add_row(1, 2.0)
        assert "My Figure" in plot_table(table, "x")

    def test_real_figure45_panel_plots(self):
        from repro.experiments.figure45 import run_figure45

        panels = run_figure45(request_sizes_kb=(64,), delays_s=(0.0, 0.05), max_rounds=4)
        text = plot_table(panels[64], "delay_s")
        assert "bw_prefetch_mbps" in text
