"""Analytical validation: simulated times vs closed-form expectations.

Each test derives the expected duration of a scenario directly from the
hardware parameters and asserts the simulation lands on it.  These are
the calibration's regression tests: if a model change silently double-
charges a copy or drops a positioning delay, these fail with numbers.
"""

import pytest

from repro.config import MachineConfig, PFSConfig
from repro.hardware.params import DEFAULT_HARDWARE
from repro.machine import Machine
from repro.pfs import IOMode

KB = 1024
MB = 1024 * 1024
HW = DEFAULT_HARDWARE


def single_read(machine, mount, nbytes, offset=0):
    """One M_ASYNC read from compute node 0; returns the call duration."""
    box = {}

    def proc():
        handle = yield from machine.clients[0].open(mount, "data", IOMode.M_ASYNC, rank=0, nprocs=1)
        if offset:
            yield from handle.lseek(offset)
        t0 = machine.env.now
        yield from handle.read(nbytes)
        box["t"] = machine.env.now - t0

    machine.spawn(proc())
    machine.run()
    return box["t"]


class TestSingleReadLatency:
    def expected_single_piece(self, nbytes, positioning):
        """Closed form for an uncontended one-piece read."""
        node = HW.node
        mesh = HW.mesh
        stream = nbytes / min(HW.scsi.bandwidth_bps, HW.raid.data_disks * HW.disk.media_rate_bps)
        return (
            node.client_call_overhead_s
            + 2 * mesh.sw_overhead_s  # request + inbox handoff (send side)
            + node.server_request_overhead_s
            + HW.raid.controller_overhead_s
            + positioning
            + HW.scsi.arbitration_s
            + stream
            + mesh.sw_overhead_s  # reply
            + nbytes / node.receive_bps
        )

    def test_one_block_first_read(self):
        machine = Machine(MachineConfig(n_compute=1, n_io=1))
        mount = machine.mount("/pfs", PFSConfig(stripe_factor=1))
        machine.create_file(mount, "data", 1 * MB)
        t = single_read(machine, mount, 64 * KB)
        # First read: seek from LBA 0 to 0 is free, rotation is jittered
        # in [0, rotation]; bound with the extremes.
        lo = self.expected_single_piece(64 * KB, 0.0)
        hi = self.expected_single_piece(64 * KB, HW.disk.rotation_s)
        assert lo * 0.98 <= t <= hi * 1.05

    def test_sequential_second_read_has_no_positioning(self):
        machine = Machine(MachineConfig(n_compute=1, n_io=1))
        mount = machine.mount("/pfs", PFSConfig(stripe_factor=1))
        machine.create_file(mount, "data", 1 * MB)
        box = {}

        def proc():
            handle = yield from machine.clients[0].open(
                mount, "data", IOMode.M_ASYNC, rank=0, nprocs=1
            )
            yield from handle.read(64 * KB)
            t0 = machine.env.now
            yield from handle.read(64 * KB)
            box["t"] = machine.env.now - t0

        machine.spawn(proc())
        machine.run()
        expected = self.expected_single_piece(64 * KB, 0.0)
        assert box["t"] == pytest.approx(expected, rel=0.03)

    def test_reception_floor_dominates_large_reads(self):
        # For a multi-node read, per-piece receptions serialise on the
        # message co-processor: total >= nbytes / receive_bps.
        machine = Machine(MachineConfig(n_compute=1, n_io=8))
        mount = machine.mount("/pfs", PFSConfig())
        machine.create_file(mount, "data", 4 * MB)
        t = single_read(machine, mount, 1 * MB)
        floor = (1 * MB) / HW.node.receive_bps
        assert t >= floor
        # And it is within 40% of that floor (positioning + overheads).
        assert t <= floor * 1.4

    def test_anchor_1024kb_collective_near_0_4s(self):
        # The headline calibration anchor, measured directly.
        from repro.workloads import CollectiveReadWorkload

        machine = Machine(MachineConfig())
        mount = machine.mount("/pfs", PFSConfig())
        machine.create_file(mount, "data", 8 * 8 * MB)
        result = CollectiveReadWorkload(machine, mount, "data", request_size=1 * MB, rounds=8).run()
        durations = [d for h in result.handles for d in h.stats.call_durations]
        assert 0.3 <= min(durations) <= 0.5


class TestTokenCosts:
    def test_m_unix_read_includes_token_round_trips(self):
        # Identical single reads: M_UNIX pays two coordinator RPCs plus
        # service time more than M_ASYNC.
        def run(mode):
            machine = Machine(MachineConfig(n_compute=1, n_io=1))
            mount = machine.mount("/pfs", PFSConfig(stripe_factor=1))
            machine.create_file(mount, "data", 1 * MB)
            box = {}

            def proc():
                handle = yield from machine.clients[0].open(mount, "data", mode, rank=0, nprocs=1)
                yield from handle.read(64 * KB)  # warm positioning
                t0 = machine.env.now
                yield from handle.read(64 * KB)
                box["t"] = machine.env.now - t0

            machine.spawn(proc())
            machine.run()
            return box["t"]

        from repro.pfs.coordinator import COORDINATION_OVERHEAD_S

        t_unix = run(IOMode.M_UNIX)
        t_async = run(IOMode.M_ASYNC)
        extra = t_unix - t_async
        # Two coordination ops + the atomic completion bookkeeping, plus
        # four mesh crossings; no token migration (same holder).
        mesh_rt = 4 * HW.mesh.sw_overhead_s
        expected_extra = 2 * COORDINATION_OVERHEAD_S + HW.node.client_call_overhead_s + mesh_rt
        assert extra == pytest.approx(expected_extra, rel=0.25)


class TestCopyCosts:
    def test_prefetch_hit_cost_is_copy_plus_overheads(self):
        # A guaranteed-ready hit costs: client call + hit memcpy +
        # buffer-alloc + ART setup for the next prefetch.
        from repro.core import OneRequestAhead, Prefetcher

        machine = Machine(MachineConfig(n_compute=1, n_io=1))
        mount = machine.mount("/pfs", PFSConfig(stripe_factor=1))
        machine.create_file(mount, "data", 4 * MB)
        pf = Prefetcher(OneRequestAhead())
        box = {}

        def proc():
            handle = yield from machine.clients[0].open(
                mount, "data", IOMode.M_ASYNC, rank=0, nprocs=1, prefetcher=pf
            )
            yield from handle.read(64 * KB)  # miss; issues prefetch
            yield machine.env.timeout(1.0)  # let it land
            t0 = machine.env.now
            yield from handle.read(64 * KB)  # hit
            box["t"] = machine.env.now - t0

        machine.spawn(proc())
        machine.run()
        assert pf.stats.hits == 1
        node = HW.node
        expected = (
            node.client_call_overhead_s
            + 64 * KB / node.memcpy_bps
            + node.buffer_alloc_overhead_s
            + node.async_setup_overhead_s
        )
        assert box["t"] == pytest.approx(expected, rel=0.05)

    def test_mesh_transfer_time_formula(self):
        from repro.hardware import Mesh, MeshMessage
        from repro.sim import Environment

        env = Environment()
        mesh = Mesh(env, 8, 3, params=HW.mesh)

        def proc():
            t0 = env.now
            yield from mesh.send(MeshMessage((0, 0), (7, 2), 1 * MB))
            return env.now - t0

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(mesh.transfer_time((0, 0), (7, 2), 1 * MB))

    def test_raid_estimate_is_honest(self):
        # estimate_service_time (used for planning) stays within 25% of
        # the realised jittered service time.
        from repro.hardware import RAID3Array, SCSIBus
        from repro.sim import Environment

        env = Environment()
        raid = RAID3Array(env, SCSIBus(env))
        estimate = raid.estimate_service_time(100 * MB, 256 * KB)

        def proc():
            t0 = env.now
            yield from raid.read(100 * MB, 256 * KB)
            return env.now - t0

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(estimate, rel=0.25)
