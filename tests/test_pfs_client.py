"""Integration tests: PFS client + server + coordinator on a full machine."""

import pytest

from repro.config import MachineConfig, PFSConfig
from repro.machine import Machine
from repro.pfs import IOMode
from repro.ufs.data import LiteralData

KB = 1024
MB = 1024 * 1024

# The ``machine`` fixture (4 compute / 4 I/O) comes from tests/conftest.py.


def setup_file(machine, size=4 * MB, name="data", pfs=None):
    mount = machine.mount("/pfs", pfs or PFSConfig())
    pfs_file = machine.create_file(mount, name, size)
    return mount, pfs_file


def open_all(machine, mount, name, mode, nprocs=None, prefetchers=None):
    """Open the file from the first *nprocs* compute nodes; returns handles."""
    nprocs = nprocs or len(machine.clients)
    handles = [None] * nprocs

    def opener(rank):
        pf = prefetchers[rank] if prefetchers else None
        handle = yield from machine.clients[rank].open(
            mount, name, mode, rank=rank, nprocs=nprocs, prefetcher=pf
        )
        handles[rank] = handle

    for rank in range(nprocs):
        machine.spawn(opener(rank))
    machine.run()
    return handles


class TestOpenClose:
    def test_open_sets_mode_and_counts(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_RECORD)
        assert pfs_file.iomode is IOMode.M_RECORD
        assert pfs_file.nprocs == 4
        assert pfs_file.open_handles == 4
        assert all(h is not None for h in handles)

    def test_bad_rank_rejected(self, machine):
        mount, _ = setup_file(machine)

        def proc():
            yield from machine.clients[0].open(mount, "data", IOMode.M_UNIX, rank=5, nprocs=4)

        machine.spawn(proc())
        from repro.pfs.client import PFSClientError

        with pytest.raises(PFSClientError):
            machine.run()

    def test_close_decrements_and_blocks_io(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_RECORD)

        def closer():
            yield from handles[0].close()
            assert handles[0].closed
            try:
                yield from handles[0].read(64 * KB)
            except Exception as exc:
                return type(exc).__name__

        p = machine.spawn(closer())
        machine.run()
        assert p.value == "PFSClientError"
        assert pfs_file.open_handles == 3

    def test_double_close_is_noop(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_RECORD)

        def closer():
            yield from handles[0].close()
            yield from handles[0].close()

        machine.spawn(closer())
        machine.run()
        assert pfs_file.open_handles == 3


class TestMRecord:
    def test_node_ordered_offsets(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_RECORD)
        results = {}

        def reader(h):
            data = yield from h.read(64 * KB)
            results[h.rank] = data

        for h in handles:
            machine.spawn(reader(h))
        machine.run()
        # Rank r read [r*64K, (r+1)*64K) -- check against ground truth.
        for rank, data in results.items():
            expected = machine.clients[0].env  # placeholder to satisfy lints
            del expected
            ufs_view = pfs_content(machine, pfs_file, rank * 64 * KB, 64 * KB)
            assert data == ufs_view

    def test_successive_rounds_advance(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_RECORD)
        h = handles[1]  # rank 1 of 4

        def reader():
            d1 = yield from h.read(64 * KB)
            d2 = yield from h.read(64 * KB)
            return d1, d2

        p = machine.spawn(reader())
        machine.run()
        d1, d2 = p.value
        assert d1 == pfs_content(machine, pfs_file, 1 * 64 * KB, 64 * KB)
        assert d2 == pfs_content(machine, pfs_file, (4 + 1) * 64 * KB, 64 * KB)

    def test_no_coordinator_messages(self, machine):
        mount, _ = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_RECORD)
        before = machine.monitor.counter_value("rpc.served")

        def reader(h):
            yield from h.read(64 * KB)

        for h in handles:
            machine.spawn(reader(h))
        machine.run()
        served = machine.monitor.counter_value("rpc.served") - before
        # Only I/O-node reads: one piece per node, no coordination RPCs.
        assert served == 4

    def test_eof_returns_short_then_empty(self, machine):
        mount, _ = setup_file(machine, size=96 * KB)  # 1.5 blocks
        handles = open_all(machine, mount, "data", IOMode.M_RECORD, nprocs=2)

        def reader(h):
            first = yield from h.read(64 * KB)
            second = yield from h.read(64 * KB)
            return len(first), len(second)

        procs = [machine.spawn(reader(h)) for h in handles]
        machine.run()
        # Round 0: rank0 gets [0,64K) full, rank1 gets [64K,96K) short.
        assert procs[0].value == (64 * KB, 0)
        assert procs[1].value == (32 * KB, 0)


class TestMUnix:
    def test_arrival_order_partitions_file(self, machine):
        mount, pfs_file = setup_file(machine, size=4 * 64 * KB)
        handles = open_all(machine, mount, "data", IOMode.M_UNIX)
        chunks = []

        def reader(h):
            data = yield from h.read(64 * KB)
            chunks.append(data)

        for h in handles:
            machine.spawn(reader(h))
        machine.run()
        # Shared pointer: the four reads cover the file exactly once.
        assert pfs_file.shared_offset == 4 * 64 * KB
        got = sorted(c.to_bytes() for c in chunks)
        expected = sorted(
            pfs_content(machine, pfs_file, k * 64 * KB, 64 * KB).to_bytes() for k in range(4)
        )
        assert got == expected

    def test_atomic_reads_serialise(self, machine):
        # M_UNIX holds the token across the transfer, so concurrent reads
        # take ~N times one read; M_RECORD reads overlap.
        t_unix = read_all_elapsed(machine, IOMode.M_UNIX, req=64 * KB, rounds=12)
        machine2 = Machine(MachineConfig(n_compute=4, n_io=4))
        t_record = read_all_elapsed(machine2, IOMode.M_RECORD, req=64 * KB, rounds=12)
        assert t_unix > 2.0 * t_record


class TestMLog:
    def test_pointer_updates_atomic_but_transfers_overlap(self, machine):
        mount, pfs_file = setup_file(machine, size=4 * 64 * KB)
        handles = open_all(machine, mount, "data", IOMode.M_LOG)

        def reader(h):
            yield from h.read(64 * KB)

        for h in handles:
            machine.spawn(reader(h))
        machine.run()
        assert pfs_file.shared_offset == 4 * 64 * KB

    def test_faster_than_m_unix(self):
        m1 = Machine(MachineConfig(n_compute=4, n_io=4))
        t_unix = read_all_elapsed(m1, IOMode.M_UNIX, req=256 * KB)
        m2 = Machine(MachineConfig(n_compute=4, n_io=4))
        t_log = read_all_elapsed(m2, IOMode.M_LOG, req=256 * KB)
        assert t_log < t_unix


class TestMSync:
    def test_rank_ordered_offsets(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_SYNC)
        results = {}

        def reader(h, size):
            data = yield from h.read(size)
            results[h.rank] = data

        # Different sizes per rank: offsets must follow rank order.
        sizes = {0: 64 * KB, 1: 32 * KB, 2: 128 * KB, 3: 16 * KB}
        for h in handles:
            machine.spawn(reader(h, sizes[h.rank]))
        machine.run()
        base = 0
        for rank in range(4):
            expected = pfs_content(machine, pfs_file, base, sizes[rank])
            assert results[rank] == expected
            base += sizes[rank]
        assert pfs_file.shared_offset == base

    def test_barrier_blocks_until_all_arrive(self, machine):
        mount, _ = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_SYNC)
        finish_times = {}

        def reader(h, delay):
            yield machine.env.timeout(delay)
            yield from h.read(64 * KB)
            finish_times[h.rank] = machine.env.now

        delays = {0: 0.0, 1: 0.0, 2: 0.0, 3: 1.0}  # rank 3 is late
        for h in handles:
            machine.spawn(reader(h, delays[h.rank]))
        machine.run()
        # Nobody can finish before the last arrival at t=1.0.
        assert min(finish_times.values()) > 1.0


class TestMGlobal:
    def test_all_ranks_see_same_data(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_GLOBAL)
        results = {}

        def reader(h):
            data = yield from h.read(64 * KB)
            results[h.rank] = data

        for h in handles:
            machine.spawn(reader(h))
        machine.run()
        expected = pfs_content(machine, pfs_file, 0, 64 * KB)
        assert all(d == expected for d in results.values())
        # Pointer advanced once, not four times.
        assert pfs_file.shared_offset == 64 * KB

    def test_single_disk_read_for_collective(self, machine):
        mount, _ = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_GLOBAL)
        before = machine.monitor.counter_value("raid0.reads")

        def reader(h):
            yield from h.read(64 * KB)

        for h in handles:
            machine.spawn(reader(h))
        machine.run()
        after = machine.monitor.counter_value("raid0.reads")
        assert after - before == 1  # one leader read, not four


class TestMAsync:
    def test_private_pointers_independent(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_ASYNC)
        results = {}

        def reader(h):
            d1 = yield from h.read(64 * KB)
            d2 = yield from h.read(64 * KB)
            results[h.rank] = (d1, d2)

        for h in handles:
            machine.spawn(reader(h))
        machine.run()
        # Every rank starts at 0 and reads the same first two blocks.
        b0 = pfs_content(machine, pfs_file, 0, 64 * KB)
        b1 = pfs_content(machine, pfs_file, 64 * KB, 64 * KB)
        for d1, d2 in results.values():
            assert d1 == b0 and d2 == b1

    def test_lseek_repositions(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_ASYNC, nprocs=1)
        h = handles[0]

        def proc():
            yield from h.lseek(128 * KB)
            return (yield from h.read(64 * KB))

        p = machine.spawn(proc())
        machine.run()
        assert p.value == pfs_content(machine, pfs_file, 128 * KB, 64 * KB)


class TestWrites:
    def test_write_read_roundtrip_m_async(self, machine):
        mount, pfs_file = setup_file(machine, size=0)
        handles = open_all(machine, mount, "data", IOMode.M_ASYNC, nprocs=1)
        h = handles[0]
        payload = bytes(range(256)) * 512  # 128 KB crosses stripe units

        def proc():
            yield from h.write(LiteralData(payload))
            yield from h.lseek(0)
            return (yield from h.read(len(payload)))

        p = machine.spawn(proc())
        machine.run()
        assert p.value.to_bytes() == payload
        assert pfs_file.size_bytes == len(payload)

    def test_m_record_writes_land_in_rank_slots(self, machine):
        mount, pfs_file = setup_file(machine, size=4 * 64 * KB)
        handles = open_all(machine, mount, "data", IOMode.M_RECORD)

        def writer(h):
            payload = bytes([h.rank]) * (64 * KB)
            yield from h.write(LiteralData(payload))

        for h in handles:
            machine.spawn(writer(h))
        machine.run()
        for rank in range(4):
            got = pfs_content(machine, pfs_file, rank * 64 * KB, 64 * KB)
            assert got.to_bytes() == bytes([rank]) * (64 * KB)


class TestIread:
    def test_async_read_overlaps_with_compute(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_RECORD, nprocs=1)
        h = handles[0]

        def proc():
            request = yield from h.iread(64 * KB)
            # Computation happens while the ART reads.
            yield machine.env.timeout(0.5)
            data = yield request.event
            return data, machine.env.now

        p = machine.spawn(proc())
        machine.run()
        data, t = p.value
        assert data == pfs_content(machine, pfs_file, 0, 64 * KB)
        # The read overlapped the 0.5s compute (total well under serial sum).
        assert t < 0.6


class TestBufferedPath:
    def test_buffered_rereads_hit_cache(self):
        machine = Machine(MachineConfig(n_compute=1, n_io=2))
        mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=2))
        pfs_file = machine.create_file(mount, "data", 1 * MB)
        handle = open_all(machine, mount, "data", IOMode.M_ASYNC, nprocs=1)[0]

        def proc():
            yield from handle.read(128 * KB)
            t0 = machine.env.now
            yield from handle.lseek(0)
            yield from handle.read(128 * KB)
            return machine.env.now - t0

        before = machine.monitor.counter_value("raid0.reads")
        p = machine.spawn(proc())
        machine.run()
        after = machine.monitor.counter_value("raid0.reads")
        # Second read served from the I/O-node cache: no extra disk reads
        # beyond the first pass.
        assert machine.monitor.counter_value("bcache0.hits") >= 1
        assert p.value < 0.05
        del pfs_file, before, after

    def test_fastpath_always_hits_disk(self):
        machine = Machine(MachineConfig(n_compute=1, n_io=1))
        mount = machine.mount("/pfs", PFSConfig(buffered=False, stripe_factor=1))
        machine.create_file(mount, "data", 1 * MB)
        handle = open_all(machine, mount, "data", IOMode.M_ASYNC, nprocs=1)[0]

        def proc():
            yield from handle.read(64 * KB)
            yield from handle.lseek(0)
            yield from handle.read(64 * KB)

        machine.spawn(proc())
        machine.run()
        assert machine.monitor.counter_value("raid0.reads") == 2
        assert machine.monitor.counter_value("bcache0.hits") == 0


class TestSetIOMode:
    def test_mode_change_midstream(self, machine):
        mount, pfs_file = setup_file(machine)
        handles = open_all(machine, mount, "data", IOMode.M_UNIX, nprocs=1)
        h = handles[0]

        def proc():
            yield from h.read(64 * KB)
            yield from h.setiomode(IOMode.M_RECORD)
            data = yield from h.read(64 * KB)
            return data

        p = machine.spawn(proc())
        machine.run()
        # After the switch, record base starts at the shared offset (64K).
        assert p.value == pfs_content(machine, pfs_file, 64 * KB, 64 * KB)


# -- helpers ------------------------------------------------------------------


def pfs_content(machine, pfs_file, offset, nbytes):
    """Ground-truth PFS content assembled from the UFS stripe files."""
    from repro.pfs.stripe import decluster
    from repro.ufs.data import concat_data

    parts = []
    for piece in decluster(pfs_file.attrs, offset, nbytes):
        ufs = machine.ufses[piece.io_node]
        parts.append(ufs.content(pfs_file.file_id, piece.ufs_offset, piece.length))
    return concat_data(parts)


def read_all_elapsed(machine, mode, req=64 * KB, rounds=2):
    """Elapsed time for all compute nodes to read *rounds* requests."""
    mount = machine.mount("/pfs", PFSConfig())
    machine.create_file(mount, "data", 16 * MB)
    handles = open_all(machine, mount, "data", mode)

    def reader(h):
        for _ in range(rounds):
            yield from h.read(req)

    for h in handles:
        machine.spawn(reader(h))
    machine.run()
    return machine.env.now
