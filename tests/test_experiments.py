"""Tests for the experiment harnesses: table plumbing, shape checks,
and small-scale smoke runs of each artifact."""

import pytest

from repro.experiments.common import (
    KB,
    ExperimentTable,
    run_collective,
    run_separate_files,
    scaled_file_size,
    speedup,
)


class TestExperimentTable:
    def test_add_and_column(self):
        table = ExperimentTable(title="t", columns=["a", "b"])
        table.add_row(1, 2.0)
        table.add_row(3, 4.0)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.0, 4.0]

    def test_row_arity_checked(self):
        table = ExperimentTable(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_everything(self):
        table = ExperimentTable(title="My Table", columns=["x", "y"])
        table.add_row(7, 1.2345)
        table.notes.append("a note")
        text = table.render()
        assert "My Table" in text
        assert "x" in text and "y" in text
        assert "7" in text and "1.23" in text
        assert "note: a note" in text

    def test_unknown_column(self):
        table = ExperimentTable(title="t", columns=["a"])
        with pytest.raises(ValueError):
            table.column("zzz")

    def test_to_jsonable_round_trips(self, tmp_path):
        import json

        table = ExperimentTable(title="t", columns=["a", "b"])
        table.add_row(1, 2.5)
        table.notes.append("a note")
        expected = {
            "title": "t",
            "columns": ["a", "b"],
            "rows": [[1, 2.5]],
            "notes": ["a note"],
        }
        assert table.to_jsonable() == expected
        assert json.loads(table.to_json()) == expected
        path = tmp_path / "t.json"
        table.write_json(path)
        assert json.loads(path.read_text()) == expected


class TestCommonHelpers:
    def test_scaled_file_size(self):
        assert scaled_file_size(64 * KB, 8, 16) == 64 * KB * 8 * 16

    def test_speedup(self):
        assert speedup(4.0, 2.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_run_collective_smoke(self):
        report = run_collective(
            request_size=64 * KB,
            file_size=scaled_file_size(64 * KB, 4, 4),
            n_compute=4,
            n_io=4,
            rounds=4,
        )
        assert report.total_bytes == 64 * KB * 4 * 4
        assert report.collective_bandwidth_mbps > 0

    def test_run_collective_with_prefetch_reports_stats(self):
        report = run_collective(
            request_size=64 * KB,
            file_size=scaled_file_size(64 * KB, 4, 4),
            compute_delay=0.05,
            n_compute=4,
            n_io=4,
            rounds=4,
            prefetch=True,
        )
        assert report.prefetch is not None
        assert report.prefetch.issued > 0

    def test_run_separate_files_smoke(self):
        report = run_separate_files(
            request_size=64 * KB,
            file_size_per_node=4 * 64 * KB,
            n_compute=4,
            n_io=4,
        )
        assert report.total_bytes == 4 * 4 * 64 * KB


class TestShapeCheckers:
    def test_figure2_checker_detects_unix_win(self):
        from repro.experiments.figure2 import check_figure2_shape

        table = ExperimentTable(
            title="t",
            columns=["request_kb", "M_UNIX", "M_LOG", "M_SYNC", "M_RECORD", "M_ASYNC"],
        )
        table.add_row(64, 10.0, 1.0, 1.0, 1.0, 1.0)  # M_UNIX wins: wrong
        assert check_figure2_shape(table) is not None

    def test_figure2_checker_accepts_paper_shape(self):
        from repro.experiments.figure2 import check_figure2_shape

        table = ExperimentTable(
            title="t",
            columns=["request_kb", "M_UNIX", "M_LOG", "M_SYNC", "M_RECORD", "M_ASYNC"],
        )
        table.add_row(64, 1.0, 1.1, 8.0, 9.0, 8.5)
        table.add_row(1024, 2.4, 2.5, 12.0, 15.0, 16.0)
        assert check_figure2_shape(table) is None

    def test_table1_checker_flags_big_divergence(self):
        from repro.experiments.table1 import check_table1_shape

        table = ExperimentTable(
            title="t",
            columns=["request_kb", "file_mb", "bw_no_prefetch_mbps", "bw_prefetch_mbps", "ratio"],
        )
        table.add_row(64, 8, 10.0, 5.0, 0.5)  # halved: not "comparable"
        assert check_table1_shape(table) is not None

    def test_table2_checker_requires_monotone_times(self):
        from repro.experiments.table2 import check_table2_shape

        table = ExperimentTable(title="t", columns=["request_kb", "min_access_s", "mean_access_s"])
        table.add_row(64, 0.05, 0.06)
        table.add_row(128, 0.04, 0.05)  # decreased: wrong
        assert check_table2_shape(table) is not None

    def test_table2_checker_validates_anchor(self):
        from repro.experiments.table2 import check_table2_shape

        table = ExperimentTable(title="t", columns=["request_kb", "min_access_s", "mean_access_s"])
        table.add_row(512, 0.1, 0.2)
        table.add_row(1024, 0.2, 5.0)  # way off the 0.4s anchor
        assert check_table2_shape(table) is not None

    def test_table4_checker_requires_group8_win(self):
        from repro.experiments.table4 import check_table4_shape

        def make(speedups):
            table = ExperimentTable(
                title="t",
                columns=["request_kb", "file_mb", "bw_sgroup=1", "bw_sgroup=8", "speedup_R2/R1"],
            )
            for i, sp in enumerate(speedups):
                table.add_row(64 * (i + 1), 8, 1.0, sp, sp)
            return table

        good_with, good_without = make([4.0, 5.0]), make([4.2, 5.0])
        assert check_table4_shape(good_with, good_without) is None
        bad = make([0.9, 5.0])  # group 8 loses at one size
        assert check_table4_shape(bad, good_without) is not None


class TestArtifactSmokeRuns:
    """Tiny-parameter runs of each experiment module (fast end-to-end)."""

    def test_figure2_small(self):
        from repro.experiments.figure2 import run_figure2

        table = run_figure2(
            request_sizes_kb=(64,),
            rounds=4,
            n_compute=2,
            n_io=2,
            include_separate_files=False,
        )
        assert len(table.rows) == 1
        assert all(v > 0 for v in table.rows[0][1:])

    def test_table1_small(self):
        from repro.experiments.table1 import run_table1

        table = run_table1(request_sizes_kb=(64,), rounds=4, n_compute=2, n_io=2)
        assert len(table.rows) == 1
        assert table.column("ratio")[0] > 0

    def test_table2_small(self):
        from repro.experiments.table2 import run_table2

        table = run_table2(request_sizes_kb=(64, 128), rounds=4, n_compute=2, n_io=2)
        assert table.column("min_access_s")[0] > 0

    def test_figure45_small(self):
        from repro.experiments.figure45 import run_figure45

        panels = run_figure45(request_sizes_kb=(64,), delays_s=(0.0, 0.1), max_rounds=4)
        assert 64 in panels
        assert len(panels[64].rows) == 2

    def test_table3_small(self):
        from repro.experiments.table3 import run_table3

        table = run_table3(
            request_sizes_kb=(64,),
            stripe_units_kb=(64,),
            rounds=4,
            n_compute=2,
            n_io=2,
        )
        assert table.column("bw_su=64KB")[0] > 0

    def test_table4_small(self):
        from repro.experiments.table4 import run_table4

        table = run_table4(request_sizes_kb=(64,), rounds=4, n_compute=2, n_io=8)
        assert table.column("speedup_R2/R1")[0] > 1.0

    def test_runall_writes_files(self, tmp_path, monkeypatch):
        # Patch the heavy runners with trivial stand-ins; verify plumbing.
        import json

        import repro.experiments.runall as runall

        tiny = ExperimentTable(title="tiny", columns=["a"])
        tiny.add_row(1)
        monkeypatch.setattr(runall, "_run_all", lambda: [("tiny", tiny.render(), None, [tiny])])
        rc = runall.main([str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "tiny.txt").read_text().startswith("tiny")
        artifact = json.loads((tmp_path / "tiny.json").read_text())
        assert artifact["shape_problem"] is None
        assert artifact["tables"] == [tiny.to_jsonable()]

    def test_runall_reports_shape_failures(self, monkeypatch, capsys):
        import repro.experiments.runall as runall

        monkeypatch.setattr(runall, "_run_all", lambda: [("x", "rendering", "broken", [])])
        rc = runall.main([])
        assert rc == 1
        assert "SHAPE PROBLEM" in capsys.readouterr().out
