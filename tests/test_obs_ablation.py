"""The mechanism-importance observatory: registry, sweep, tripwire.

Fast paths use --quick-sized sweeps (one mode, one size, few rounds);
the golden no-op validation runs the committed bench3 cells once.
"""

import copy
import json

import pytest

from repro.config import MachineConfig, PFSConfig
from repro.obs.ablation import (
    ABS_TOL,
    COLLAPSE_RATIO,
    MECHANISMS,
    MIN_IMPORTANCE,
    AblationError,
    baseline_overrides,
    check_importance,
    execute_runs,
    generate_runs,
    main,
    mechanism,
    render_ascii,
    render_markdown,
    resolve_configs,
    run_sweep,
    validate_registry,
)


class TestRegistry:
    def test_every_mechanism_has_off_overrides(self):
        for mech in MECHANISMS:
            assert mech.off, mech.name

    def test_mechanism_lookup(self):
        assert mechanism("prefetch").name == "prefetch"
        with pytest.raises(AblationError):
            mechanism("warp-drive")

    def test_baseline_resolves_to_pure_defaults(self):
        machine_cfg, pfs_cfg, workload = resolve_configs(baseline_overrides())
        assert machine_cfg == MachineConfig()
        assert pfs_cfg == PFSConfig()
        assert workload == {"prefetch": True, "family": "collective"}

    def test_structural_validation_passes(self):
        result = validate_registry(golden=False)
        assert result["all_on_noop"] is True
        assert result["mechanisms"] == len(MECHANISMS)

    def test_unknown_override_path_rejected(self):
        with pytest.raises(AblationError):
            resolve_configs({"machine.flux_capacitor": True})
        with pytest.raises(AblationError):
            resolve_configs({"spaceship.warp": 9})

    def test_off_overrides_change_the_resolved_config(self):
        base = resolve_configs(baseline_overrides())
        for mech in MECHANISMS:
            off = resolve_configs({**baseline_overrides(), **mech.context, **mech.off})
            assert off != base, f"{mech.name} off-state resolves to the baseline"


class TestGoldenNoop:
    def test_all_on_configuration_matches_bench3_goldens(self):
        """The observatory's own all-on baseline reproduces the committed
        golden fingerprints bit-for-bit -- toggles at their default
        positions are a strict no-op."""
        result = validate_registry(golden=True)
        assert "golden_skipped" not in result
        assert result["golden_cells_checked"] >= 3


class TestRunSet:
    def test_run_ids_are_stable_and_complete(self):
        runs = generate_runs(modes=("M_RECORD",), sizes_kb=(64,))
        ids = [r.run_id for r in runs]
        assert "ablation:M_RECORD:64kb:baseline" in ids
        assert "ablation:M_RECORD:64kb:off=prefetch" in ids
        assert "ablation:M_RECORD:64kb:ctx=server_readahead:on" in ids
        assert "ablation:M_RECORD:64kb:ctx=server_readahead:off" in ids
        assert len(ids) == len(set(ids))
        # One baseline + one off per plain mechanism + on/off per context
        # mechanism.
        n_context = sum(1 for m in MECHANISMS if m.context)
        assert len(runs) == 1 + (len(MECHANISMS) - n_context) + 2 * n_context

    def test_equivalent_configs_share_a_signature(self):
        """Spelling the same machine differently (explicit default vs
        absent key) dedupes to one simulation."""
        runs = {r.run_id: r for r in generate_runs(modes=("M_RECORD",), sizes_kb=(64,))}
        fastpath_off = runs["ablation:M_RECORD:64kb:off=fastpath"]
        readahead_ctx_off = runs["ablation:M_RECORD:64kb:ctx=server_readahead:off"]
        assert fastpath_off.overrides != readahead_ctx_off.overrides
        assert fastpath_off.signature == readahead_ctx_off.signature

    def test_execute_runs_dedupes_by_signature(self):
        runs = generate_runs(modes=("M_RECORD",), sizes_kb=(64,))
        records = execute_runs(runs, rounds=2, compute_delay=0.0)
        assert len(records) == len(runs)
        deduped = [r for r in records.values() if "deduped_from" in r]
        assert deduped, "expected at least one deduplicated run"
        for rec in deduped:
            source = records[rec["deduped_from"]]
            assert rec["bandwidth_mbps"] == source["bandwidth_mbps"]


class TestSweepAndReport:
    @pytest.fixture(scope="class")
    def quick_report(self):
        return run_sweep(
            modes=("M_RECORD",),
            sizes_kb=(64,),
            rounds=3,
            compute_delay=0.05,
            golden=False,
        )

    def test_report_shape(self, quick_report):
        report = quick_report
        assert report["bench"] == "ablation-observatory"
        assert report["settings"]["modes"] == ["M_RECORD"]
        assert len(report["mechanisms"]) == len(MECHANISMS)
        assert len(report["cells"]) == len(MECHANISMS)
        ranked = report["importance"]["aggregate"]
        assert len(ranked) == len(MECHANISMS)
        importances = [e["importance"] for e in ranked]
        assert importances == sorted(importances, reverse=True)

    def test_prefetch_matters_in_m_record(self, quick_report):
        by_name = {e["mechanism"]: e for e in quick_report["importance"]["aggregate"]}
        assert by_name["prefetch"]["importance"] > 0

    def test_cells_carry_attribution_shift(self, quick_report):
        for cell in quick_report["cells"]:
            assert "attribution_shift" in cell
            assert "disk_util_shift" in cell["attribution_shift"]

    def test_renderers_cover_every_mechanism(self, quick_report):
        ascii_out = render_ascii(quick_report)
        md_out = render_markdown(quick_report)
        for mech in MECHANISMS:
            assert mech.name in ascii_out
            assert mech.name in md_out

    def test_sweep_is_deterministic(self, quick_report):
        again = run_sweep(
            modes=("M_RECORD",),
            sizes_kb=(64,),
            rounds=3,
            compute_delay=0.05,
            golden=False,
        )
        assert json.dumps(again, sort_keys=True) == json.dumps(
            quick_report, sort_keys=True
        )


class TestTripwire:
    @pytest.fixture(scope="class")
    def report(self):
        return run_sweep(
            modes=("M_RECORD",),
            sizes_kb=(64,),
            rounds=3,
            compute_delay=0.05,
            golden=False,
        )

    def test_self_check_passes(self, report):
        assert check_importance(report, report) == []

    def test_collapsed_mechanism_trips(self, report):
        doctored = copy.deepcopy(report)
        for entry in doctored["importance"]["aggregate"]:
            if entry["mechanism"] == "prefetch":
                entry["importance"] = 0.001
        violations = check_importance(doctored, report)
        assert len(violations) == 1
        assert "prefetch" in violations[0]
        assert "collapsed" in violations[0]

    def test_missing_mechanism_trips(self, report):
        doctored = copy.deepcopy(report)
        doctored["importance"]["aggregate"] = [
            e
            for e in doctored["importance"]["aggregate"]
            if e["mechanism"] != "prefetch"
        ]
        violations = check_importance(doctored, report)
        assert violations and "missing" in violations[0]

    def test_unimportant_mechanisms_never_trip(self, report):
        """Mechanisms below min_importance in the baseline are exempt --
        honest zeros (art_queueing) must not page anyone."""
        doctored = copy.deepcopy(report)
        for entry in doctored["importance"]["aggregate"]:
            if entry["importance"] < MIN_IMPORTANCE:
                entry["importance"] = -1.0
        assert check_importance(doctored, report) == []

    def test_settings_mismatch_is_a_violation(self, report):
        other = copy.deepcopy(report)
        other["settings"]["rounds"] = 99
        violations = check_importance(other, report)
        assert violations and "settings" in violations[0]
        assert check_importance(other, report, check_settings=False) == []

    def test_thresholds_respect_abs_tol(self, report):
        """A collapse smaller than abs_tol in absolute terms is noise,
        not a tripwire event."""
        base = copy.deepcopy(report)
        cur = copy.deepcopy(report)
        for entry in base["importance"]["aggregate"]:
            entry["importance"] = MIN_IMPORTANCE
        for entry in cur["importance"]["aggregate"]:
            entry["importance"] = MIN_IMPORTANCE - ABS_TOL
        assert (
            MIN_IMPORTANCE - ABS_TOL < MIN_IMPORTANCE * COLLAPSE_RATIO
            or check_importance(cur, base) == []
        )


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for mech in MECHANISMS:
            assert mech.name in out

    def test_check_against_fixture_with_disconnected_mechanism(self, tmp_path):
        """End-to-end acceptance: --check exits non-zero on a report
        whose top mechanism was artificially disconnected, and zero
        against the intact baseline."""
        baseline = run_sweep(
            modes=("M_RECORD",),
            sizes_kb=(64,),
            rounds=3,
            compute_delay=0.05,
            golden=False,
        )
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(baseline))

        intact_path = tmp_path / "intact.json"
        intact_path.write_text(json.dumps(baseline))
        assert (
            main(
                [
                    "--check",
                    "--report",
                    str(intact_path),
                    "--baseline",
                    str(base_path),
                ]
            )
            == 0
        )

        broken = copy.deepcopy(baseline)
        for entry in broken["importance"]["aggregate"]:
            if entry["mechanism"] == "prefetch":
                entry["importance"] = 0.0
        broken_path = tmp_path / "broken.json"
        broken_path.write_text(json.dumps(broken))
        args = [
            "--check",
            "--report",
            str(broken_path),
            "--baseline",
            str(base_path),
        ]
        assert main(args) == 1
        assert main(args + ["--advisory"]) == 0

    def test_check_missing_baseline_exits_two(self, tmp_path):
        report_path = tmp_path / "report.json"
        report_path.write_text(
            json.dumps(
                run_sweep(
                    modes=("M_RECORD",),
                    sizes_kb=(64,),
                    rounds=3,
                    compute_delay=0.05,
                    golden=False,
                )
            )
        )
        rc = main(
            [
                "--check",
                "--report",
                str(report_path),
                "--baseline",
                str(tmp_path / "nope.json"),
            ]
        )
        assert rc == 2

    def test_quick_sweep_writes_report(self, tmp_path):
        out = tmp_path / "BENCH_ablation.json"
        md = tmp_path / "report.md"
        rc = main(
            [
                "--quick",
                "--skip-golden",
                "--output",
                str(out),
                "--markdown",
                str(md),
            ]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["settings"]["modes"] == ["M_RECORD"]
        assert md.read_text().startswith("#")


class TestCommittedBaseline:
    def test_committed_report_passes_its_own_tripwire(self):
        """The repo-root BENCH_ablation.json and the committed tripwire
        baseline agree -- the wire ships untripped."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        report_path = root / "BENCH_ablation.json"
        baseline_path = root / "benchmarks" / "baseline_ablation.json"
        if not (report_path.exists() and baseline_path.exists()):
            pytest.skip("committed ablation artifacts absent")
        report = json.loads(report_path.read_text())
        baseline = json.loads(baseline_path.read_text())
        assert check_importance(report, baseline) == []
        ranked = report["importance"]["aggregate"]
        assert len(ranked) == len(MECHANISMS)
        assert len(report["settings"]["modes"]) >= 3
