"""Integration tests for the PFS write path across I/O modes."""

from repro.config import MachineConfig, PFSConfig
from repro.machine import Machine
from repro.pfs import IOMode
from repro.ufs.data import LiteralData

KB = 1024
MB = 1024 * 1024

# The ``machine`` fixture (4 compute / 4 I/O) comes from tests/conftest.py.


def open_all(machine, mount, name, mode, nprocs=4):
    handles = [None] * nprocs

    def opener(rank):
        handles[rank] = yield from machine.clients[rank].open(
            mount, name, mode, rank=rank, nprocs=nprocs
        )

    for rank in range(nprocs):
        machine.spawn(opener(rank))
    machine.run()
    return handles


def content(machine, pfs_file, offset, nbytes):
    from repro.pfs.stripe import decluster
    from repro.ufs.data import concat_data

    return concat_data(
        [
            machine.ufses[p.io_node].content(pfs_file.file_id, p.ufs_offset, p.length)
            for p in decluster(pfs_file.attrs, offset, nbytes)
        ]
    )


class TestMUnixWrites:
    def test_appends_serialise_without_overlap(self, machine):
        mount = machine.mount("/pfs")
        pfs_file = machine.create_file(mount, "log", 0)
        handles = open_all(machine, mount, "log", IOMode.M_UNIX)

        def writer(h):
            payload = bytes([h.rank + 1]) * (64 * KB)
            yield from h.write(LiteralData(payload))

        for h in handles:
            machine.spawn(writer(h))
        machine.run()
        assert pfs_file.size_bytes == 4 * 64 * KB
        assert pfs_file.shared_offset == 4 * 64 * KB
        # Every 64KB extent is one writer's payload, each exactly once.
        raw = content(machine, pfs_file, 0, 4 * 64 * KB).to_bytes()
        seen = set()
        for k in range(4):
            chunk = raw[k * 64 * KB : (k + 1) * 64 * KB]
            assert len(set(chunk)) == 1
            seen.add(chunk[0])
        assert seen == {1, 2, 3, 4}


class TestMSyncWrites:
    def test_rank_ordered_layout(self, machine):
        mount = machine.mount("/pfs")
        pfs_file = machine.create_file(mount, "data", 0)
        handles = open_all(machine, mount, "data", IOMode.M_SYNC)

        def writer(h):
            payload = bytes([h.rank + 10]) * (32 * KB)
            yield from h.write(LiteralData(payload))

        for h in handles:
            machine.spawn(writer(h))
        machine.run()
        raw = content(machine, pfs_file, 0, 4 * 32 * KB).to_bytes()
        for rank in range(4):
            chunk = raw[rank * 32 * KB : (rank + 1) * 32 * KB]
            assert chunk == bytes([rank + 10]) * (32 * KB)


class TestMGlobalWrites:
    def test_single_physical_write(self, machine):
        mount = machine.mount("/pfs")
        pfs_file = machine.create_file(mount, "data", 64 * KB)
        handles = open_all(machine, mount, "data", IOMode.M_GLOBAL)
        before = sum(machine.monitor.counter_value(f"raid{i}.writes") for i in range(4))

        def writer(h):
            yield from h.write(LiteralData(b"G" * (64 * KB)))

        for h in handles:
            machine.spawn(writer(h))
        machine.run()
        after = sum(machine.monitor.counter_value(f"raid{i}.writes") for i in range(4))
        assert after - before == 1  # only the leader wrote
        assert content(machine, pfs_file, 0, 64 * KB).to_bytes() == b"G" * (64 * KB)
        assert pfs_file.shared_offset == 64 * KB


class TestMLogWrites:
    def test_arrival_order_without_holes(self, machine):
        mount = machine.mount("/pfs")
        pfs_file = machine.create_file(mount, "log", 0)
        handles = open_all(machine, mount, "log", IOMode.M_LOG)

        def writer(h, n):
            for k in range(n):
                payload = bytes([h.rank * 16 + k + 1]) * (16 * KB)
                yield from h.write(LiteralData(payload))

        for h in handles:
            machine.spawn(writer(h, 2))
        machine.run()
        assert pfs_file.size_bytes == 8 * 16 * KB
        raw = content(machine, pfs_file, 0, 8 * 16 * KB).to_bytes()
        # Each 16KB record is homogeneous: no interleaving of payloads.
        markers = []
        for k in range(8):
            chunk = raw[k * 16 * KB : (k + 1) * 16 * KB]
            assert len(set(chunk)) == 1
            markers.append(chunk[0])
        assert len(set(markers)) == 8  # all eight records landed once


class TestWriteReadConsistency:
    def test_buffered_write_then_fastpath_style_read(self):
        machine = Machine(MachineConfig(n_compute=2, n_io=2))
        mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=2))
        machine.create_file(mount, "data", 0)
        handles = open_all(machine, mount, "data", IOMode.M_ASYNC, nprocs=2)
        payload = bytes(range(256)) * 512  # 128KB

        def writer():
            yield from handles[0].write(LiteralData(payload))

        machine.spawn(writer())
        machine.run()

        def reader():
            return (yield from handles[1].read(len(payload)))

        p = machine.spawn(reader())
        machine.run()
        assert p.value.to_bytes() == payload

    def test_unaligned_concurrent_region_writes(self, machine):
        # Each writer updates a disjoint unaligned region; all must land.
        mount = machine.mount("/pfs")
        pfs_file = machine.create_file(mount, "data", 1 * MB)
        handles = open_all(machine, mount, "data", IOMode.M_ASYNC)
        before = content(machine, pfs_file, 0, 1 * MB).to_bytes()

        regions = {0: (100, 5000), 1: (200_000, 333), 2: (650_001, 4097), 3: (999_000, 1000)}

        def writer(h):
            start, length = regions[h.rank]
            yield from h.lseek(start)
            yield from h.write(LiteralData(bytes([h.rank + 65]) * length))

        for h in handles:
            machine.spawn(writer(h))
        machine.run()
        after = bytearray(before)
        for rank, (start, length) in regions.items():
            after[start : start + length] = bytes([rank + 65]) * length
        assert content(machine, pfs_file, 0, 1 * MB).to_bytes() == bytes(after)

    def test_write_grows_shared_size_for_readers(self, machine):
        mount = machine.mount("/pfs")
        pfs_file = machine.create_file(mount, "data", 0)
        handles = open_all(machine, mount, "data", IOMode.M_ASYNC, nprocs=2)

        def sequence():
            yield from handles[0].write(LiteralData(b"x" * (64 * KB)))
            data = yield from handles[1].read(64 * KB)
            return len(data)

        p = machine.spawn(sequence())
        machine.run()
        assert p.value == 64 * KB
        assert pfs_file.size_bytes == 64 * KB
