"""Unit tests for the instrumentation (monitor) module."""

import math

import pytest

from repro.sim import Environment, Monitor
from repro.sim.monitor import CounterStat, SeriesStat, TimeWeightedStat


@pytest.fixture
def env():
    return Environment()


class TestCounterStat:
    def test_add(self):
        counter = CounterStat("n")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        counter = CounterStat("n")
        with pytest.raises(ValueError):
            counter.add(-1)


class TestTimeWeightedStat:
    def test_mean_weights_by_time(self, env):
        stat = TimeWeightedStat(env, "depth", initial=0.0)

        def proc():
            yield env.timeout(1.0)
            stat.set(10.0)  # 0 for 1s
            yield env.timeout(3.0)
            stat.set(0.0)  # 10 for 3s

        env.process(proc())
        env.run()
        # mean over [0,4] = (0*1 + 10*3) / 4 = 7.5
        assert stat.mean() == pytest.approx(7.5)

    def test_adjust_and_max(self, env):
        stat = TimeWeightedStat(env, "q")
        stat.adjust(+3)
        stat.adjust(+4)
        stat.adjust(-5)
        assert stat.value == 2
        assert stat.maximum == 7

    def test_mean_at_time_zero(self, env):
        stat = TimeWeightedStat(env, "q", initial=5.0)
        assert stat.mean() == 5.0

    def test_degenerate_window_mid_simulation(self, env):
        """A stat created at t>0 and queried at that same instant has a
        zero-width window: the mean is *defined* as the current value
        (the limit as the window shrinks), never a 0/0 artefact."""
        means = []

        def proc():
            yield env.timeout(3.0)
            stat = TimeWeightedStat(env, "q", initial=2.5)
            means.append(stat.mean())

        env.process(proc())
        env.run()
        assert means == [2.5]

    def test_degenerate_window_tracks_instantaneous_sets(self, env):
        """Even several set() calls at the creation instant keep the
        degenerate mean equal to the *current* value."""
        results = []

        def proc():
            yield env.timeout(1.0)
            stat = TimeWeightedStat(env, "q")
            stat.set(7.0)
            stat.set(9.0)
            results.append((stat.mean(), stat.value, stat.maximum))

        env.process(proc())
        env.run()
        assert results == [(9.0, 9.0, 9.0)]

    def test_mean_is_finite_once_time_advances(self, env):
        stat = TimeWeightedStat(env, "q", initial=4.0)

        def proc():
            yield env.timeout(2.0)

        env.process(proc())
        env.run()
        assert stat.mean() == pytest.approx(4.0)
        assert math.isfinite(stat.mean())


class TestSeriesStat:
    def test_summary_statistics(self):
        series = SeriesStat("lat")
        for v in [1.0, 2.0, 3.0, 4.0]:
            series.record(v)
        assert series.count == 4
        assert series.total == 10.0
        assert series.mean() == 2.5
        assert series.minimum() == 1.0
        assert series.maximum() == 4.0
        assert series.stdev() == pytest.approx(1.2909944, rel=1e-6)

    def test_percentiles(self):
        series = SeriesStat("lat")
        for v in range(1, 11):
            series.record(float(v))
        assert series.percentile(0) == 1.0
        assert series.percentile(100) == 10.0
        assert series.percentile(50) == pytest.approx(5.5)

    def test_empty_series(self):
        series = SeriesStat("lat")
        assert math.isnan(series.mean())
        assert math.isnan(series.percentile(50))
        assert series.stdev() == 0.0

    def test_percentile_bounds(self):
        series = SeriesStat("lat")
        series.record(1.0)
        with pytest.raises(ValueError):
            series.percentile(101)


class TestMonitor:
    def test_named_stats_are_singletons(self, env):
        mon = Monitor(env)
        assert mon.counter("a") is mon.counter("a")
        assert mon.series("b") is mon.series("b")
        assert mon.time_weighted("c") is mon.time_weighted("c")

    def test_counter_value_of_missing_is_zero(self, env):
        mon = Monitor(env)
        assert mon.counter_value("nope") == 0.0

    def test_snapshot_contains_all_kinds(self, env):
        mon = Monitor(env)
        mon.counter("reads").add(3)
        mon.series("lat").record(0.5)
        mon.time_weighted("q").set(2.0)
        snap = mon.snapshot()
        assert snap["counter.reads"] == 3
        assert snap["series.lat.count"] == 1
        assert "tw.q.mean" in snap
