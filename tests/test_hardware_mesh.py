"""Unit tests for the 2D mesh interconnect model."""

import pytest

from repro.hardware import Mesh, MeshMessage, MeshParams
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def mesh(env):
    return Mesh(env, width=4, height=4)


class TestTopology:
    def test_bad_dimensions(self, env):
        with pytest.raises(ValueError):
            Mesh(env, 0, 4)
        with pytest.raises(ValueError):
            Mesh(env, 4, -1)

    def test_contains(self, mesh):
        assert mesh.contains((0, 0))
        assert mesh.contains((3, 3))
        assert not mesh.contains((4, 0))
        assert not mesh.contains((0, -1))

    def test_route_is_xy_ordered(self, mesh):
        links = mesh.route((0, 0), (2, 2))
        # X moves first, then Y.
        assert links == [
            ((0, 0), (1, 0)),
            ((1, 0), (2, 0)),
            ((2, 0), (2, 1)),
            ((2, 1), (2, 2)),
        ]

    def test_route_negative_directions(self, mesh):
        links = mesh.route((3, 3), (1, 2))
        assert links == [
            ((3, 3), (2, 3)),
            ((2, 3), (1, 3)),
            ((1, 3), (1, 2)),
        ]

    def test_route_to_self_is_empty(self, mesh):
        assert mesh.route((1, 1), (1, 1)) == []

    def test_route_length_equals_hops(self, mesh):
        for src in [(0, 0), (2, 1), (3, 3)]:
            for dst in [(0, 0), (1, 3), (3, 0)]:
                assert len(mesh.route(src, dst)) == mesh.hops(src, dst)

    def test_route_outside_raises(self, mesh):
        with pytest.raises(ValueError):
            mesh.route((0, 0), (9, 9))
        with pytest.raises(ValueError):
            mesh.route((-1, 0), (1, 1))


class TestTransmission:
    def test_uncontended_latency(self, env):
        params = MeshParams(link_bandwidth_bps=100.0, sw_overhead_s=1.0, per_hop_s=0.5)
        mesh = Mesh(env, 4, 1, params=params)
        msg = MeshMessage(src=(0, 0), dst=(2, 0), size_bytes=200)

        def proc(env):
            yield from mesh.send(msg)
            return env.now

        p = env.process(proc(env))
        env.run()
        # 1.0 sw + 2 hops * 0.5 + 200/100 = 4.0
        assert p.value == pytest.approx(4.0)
        assert msg.delivered_at == pytest.approx(4.0)

    def test_transfer_time_estimate_matches(self, env):
        params = MeshParams(link_bandwidth_bps=100.0, sw_overhead_s=1.0, per_hop_s=0.5)
        mesh = Mesh(env, 4, 1, params=params)

        def proc(env):
            yield from mesh.send(MeshMessage((0, 0), (2, 0), 200))
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(mesh.transfer_time((0, 0), (2, 0), 200))

    def test_zero_size_message(self, env, mesh):
        def proc(env):
            yield from mesh.send(MeshMessage((0, 0), (1, 0), 0))
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value > 0  # still pays software overhead

    def test_negative_size_rejected(self, env, mesh):
        def proc(env):
            yield from mesh.send(MeshMessage((0, 0), (1, 0), -1))

        env.process(proc(env))
        with pytest.raises(ValueError):
            env.run()

    def test_link_contention_serialises(self, env):
        # Two messages over the same single link: the second waits.
        params = MeshParams(link_bandwidth_bps=100.0, sw_overhead_s=0.0, per_hop_s=0.0)
        mesh = Mesh(env, 2, 1, params=params)
        done = []

        def proc(env, tag):
            yield from mesh.send(MeshMessage((0, 0), (1, 0), 100))
            done.append((tag, env.now))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert done[0] == ("a", pytest.approx(1.0))
        assert done[1] == ("b", pytest.approx(2.0))

    def test_disjoint_paths_run_concurrently(self, env):
        params = MeshParams(link_bandwidth_bps=100.0, sw_overhead_s=0.0, per_hop_s=0.0)
        mesh = Mesh(env, 2, 2, params=params)
        done = []

        def proc(env, src, dst, tag):
            yield from mesh.send(MeshMessage(src, dst, 100))
            done.append((tag, env.now))

        env.process(proc(env, (0, 0), (1, 0), "row0"))
        env.process(proc(env, (0, 1), (1, 1), "row1"))
        env.run()
        times = dict(done)
        assert times["row0"] == pytest.approx(1.0)
        assert times["row1"] == pytest.approx(1.0)

    def test_many_crossing_messages_all_deliver(self, env):
        mesh = Mesh(env, 4, 4)
        delivered = []

        def proc(env, src, dst, size):
            msg = yield from mesh.send(MeshMessage(src, dst, size))
            delivered.append(msg)

        coords = [(x, y) for x in range(4) for y in range(4)]
        n = 0
        for i, src in enumerate(coords):
            dst = coords[(i * 7 + 3) % len(coords)]
            env.process(proc(env, src, dst, 64 * 1024))
            n += 1
        env.run()
        assert len(delivered) == n
        assert all(m.delivered_at >= m.enqueued_at for m in delivered)

    def test_monitor_records_traffic(self, env):
        from repro.sim import Monitor

        mon = Monitor(env)
        mesh = Mesh(env, 2, 1, monitor=mon)

        def proc(env):
            yield from mesh.send(MeshMessage((0, 0), (1, 0), 1000))

        env.process(proc(env))
        env.run()
        assert mon.counter_value("mesh.messages") == 1
        assert mon.counter_value("mesh.bytes") == 1000
