"""Shared pytest fixtures.

The canonical machine shapes were previously duplicated per test module;
they live here once.  ``machine_factory`` is the escape hatch for tests
that need a non-standard shape or extra :class:`MachineConfig` knobs
(``trace=True``, ``write_back=True``, ...).
"""

import pytest

from repro.config import MachineConfig
from repro.core import OneRequestAhead, Prefetcher
from repro.machine import Machine

KB = 1024
MB = 1024 * 1024


@pytest.fixture
def machine_factory():
    """Build a :class:`Machine` with arbitrary config overrides."""

    def make(n_compute: int = 4, n_io: int = 4, **kwargs) -> Machine:
        return Machine(MachineConfig(n_compute=n_compute, n_io=n_io, **kwargs))

    return make


@pytest.fixture
def machine(machine_factory):
    """The standard integration testbed: 4 compute / 4 I/O nodes."""
    return machine_factory()


@pytest.fixture
def small_machine(machine_factory):
    """Minimal 2 compute / 2 I/O machine for cheap integration tests."""
    return machine_factory(n_compute=2, n_io=2)


@pytest.fixture
def traced_machine(machine_factory):
    """Standard testbed with request tracing enabled (machine.obs.tracer)."""
    return machine_factory(trace=True)


@pytest.fixture(params=[False, True], ids=["prefetch-off", "prefetch-on"])
def prefetch_enabled(request):
    """Parametrised on/off axis for prefetching behaviour tests."""
    return request.param


@pytest.fixture
def prefetcher_factory():
    """Per-rank prefetcher factory: ``make(enabled, depth=1)`` returns a
    callable suitable for handing one fresh prefetcher to each rank, or
    None when disabled."""

    def make(enabled: bool = True, depth: int = 1):
        if not enabled:
            return None
        return lambda rank: Prefetcher(OneRequestAhead(depth=depth))

    return make
