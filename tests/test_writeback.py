"""Tests for write-back caching and the sync daemon."""

import pytest

from repro.config import MachineConfig, PFSConfig
from repro.machine import Machine
from repro.paragonos import SyncDaemon
from repro.pfs import IOMode
from repro.sim import Environment
from repro.ufs.data import LiteralData

KB = 1024
MB = 1024 * 1024


def make_machine(write_back=True, sync_interval=30.0, cache_blocks=64):
    return Machine(
        MachineConfig(
            n_compute=2,
            n_io=2,
            write_back=write_back,
            sync_interval_s=sync_interval,
            cache_blocks=cache_blocks,
        )
    )


def open_handle(machine, mount, name="data"):
    box = {}

    def opener():
        box["h"] = yield from machine.clients[0].open(mount, name, IOMode.M_ASYNC, rank=0, nprocs=1)

    machine.spawn(opener())
    machine.run()
    return box["h"]


class TestWriteBack:
    def test_write_back_returns_faster_than_write_through(self):
        def timed_write(write_back):
            machine = make_machine(write_back=write_back)
            mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=1))
            machine.create_file(mount, "data", 0)
            handle = open_handle(machine, mount)

            def proc():
                t0 = machine.env.now
                yield from handle.write(LiteralData(b"w" * (256 * KB)))
                return machine.env.now - t0

            p = machine.spawn(proc())
            machine.run(until=p)
            return p.value

        assert timed_write(True) < 0.5 * timed_write(False)

    def test_dirty_blocks_marked_and_no_disk_writes_yet(self):
        machine = make_machine(sync_interval=1000.0)
        mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=1))
        machine.create_file(mount, "data", 0)
        handle = open_handle(machine, mount)

        def proc():
            yield from handle.write(LiteralData(b"w" * (128 * KB)))

        p = machine.spawn(proc())
        machine.run(until=p)
        assert machine.caches[0].dirty_count == 2
        assert machine.monitor.counter_value("raid0.writes") == 0

    def test_read_sees_unflushed_write(self):
        machine = make_machine(sync_interval=1000.0)
        mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=1))
        machine.create_file(mount, "data", 0)
        handle = open_handle(machine, mount)
        payload = bytes(range(256)) * 512  # 128KB

        def proc():
            yield from handle.write(LiteralData(payload))
            yield from handle.lseek(0)
            return (yield from handle.read(len(payload)))

        p = machine.spawn(proc())
        machine.run(until=p)
        assert p.value.to_bytes() == payload

    def test_unaligned_write_back_merges_correctly(self):
        machine = make_machine(sync_interval=1000.0)
        mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=1))
        machine.create_file(mount, "data", 128 * KB)
        handle = open_handle(machine, mount)

        def proc():
            before = yield from handle.read(128 * KB)
            yield from handle.lseek(1000)
            yield from handle.write(LiteralData(b"XYZ"))
            yield from handle.lseek(0)
            after = yield from handle.read(128 * KB)
            return before.to_bytes(), after.to_bytes()

        p = machine.spawn(proc())
        machine.run(until=p)
        before, after = p.value
        assert after == before[:1000] + b"XYZ" + before[1003:]

    def test_explicit_flush_persists_to_disk(self):
        machine = make_machine(sync_interval=1000.0)
        mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=1))
        pfs_file = machine.create_file(mount, "data", 0)
        handle = open_handle(machine, mount)
        payload = b"p" * (64 * KB)

        def proc():
            yield from handle.write(LiteralData(payload))
            yield from machine.clients[0].flush(mount, "data")

        p = machine.spawn(proc())
        machine.run(until=p)
        assert machine.caches[0].dirty_count == 0
        assert machine.monitor.counter_value("raid0.writes") >= 1
        # The UFS itself now holds the content.
        assert machine.ufses[0].content(pfs_file.file_id, 0, 64 * KB).to_bytes() == payload

    def test_sync_daemon_flushes_on_interval(self):
        machine = make_machine(sync_interval=5.0)
        mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=1))
        machine.create_file(mount, "data", 0)
        handle = open_handle(machine, mount)

        def proc():
            yield from handle.write(LiteralData(b"d" * (64 * KB)))

        machine.spawn(proc())
        machine.run(until=6.0)
        assert machine.caches[0].dirty_count == 0
        assert machine.sync_daemons[0].flushes >= 1

    def test_dirty_overflow_then_flush_restores_capacity(self):
        machine = make_machine(sync_interval=1000.0, cache_blocks=2)
        mount = machine.mount("/pfs", PFSConfig(buffered=True, stripe_factor=1))
        machine.create_file(mount, "data", 0)
        handle = open_handle(machine, mount)

        def proc():
            # 4 dirty blocks in a 2-block cache: overflow.
            yield from handle.write(LiteralData(b"o" * (256 * KB)))

        p = machine.spawn(proc())
        machine.run(until=p)
        cache = machine.caches[0]
        assert cache.overflow_blocks == 2
        assert machine.verify() == []  # dirty overflow is legal

        def flusher():
            yield from machine.clients[0].flush(mount, "data")

        p2 = machine.spawn(flusher())
        machine.run(until=p2)
        assert cache.overflow_blocks == 0
        assert len(cache) <= 2

    def test_write_back_requires_cache(self):
        from repro.hardware import Mesh, Node, NodeKind, RAID3Array, SCSIBus
        from repro.paragonos.rpc import RPCEndpoint
        from repro.pfs.server import PFSServer
        from repro.ufs import UFS, BlockDevice

        env = Environment()
        node = Node(env, 0, NodeKind.IO, (0, 0))
        ufs = UFS(BlockDevice(RAID3Array(env, SCSIBus(env)), 64 * KB))
        with pytest.raises(ValueError):
            PFSServer(
                env,
                node,
                RPCEndpoint(env, node, Mesh(env, 1, 1)),
                ufs,
                cache=None,
                write_back=True,
            )


class TestSyncDaemonUnit:
    def test_interval_validation(self):
        from repro.paragonos.buffercache import BufferCache

        env = Environment()
        cache = BufferCache(env, capacity_blocks=4, block_size=64)
        with pytest.raises(ValueError):
            SyncDaemon(env, cache, interval_s=0)

    def test_no_flush_when_clean(self):
        from repro.paragonos.buffercache import BufferCache

        env = Environment()
        cache = BufferCache(env, capacity_blocks=4, block_size=64)
        daemon = SyncDaemon(env, cache, interval_s=1.0)
        env.run(until=5.5)
        assert daemon.flushes == 0
