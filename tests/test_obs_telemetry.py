"""Tests for the fleet-wide telemetry subsystem (repro.obs.telemetry).

Covers the PR's acceptance criteria:

- telemetry (and tracing) enabled leaves every measured number in the
  :class:`BandwidthReport` bit-identical to a plain run;
- the Prometheus text exposition matches a golden snapshot exactly;
- degenerate runs behave: zero-duration runs still produce a sample,
  sample intervals longer than the run still yield an exact bottleneck
  report (it reads final counters, not samples);
- the time-series exporters (CSV / JSONL) and ASCII charts render;
- ``PrefetchStats.merge`` is commutative and associative, so
  machine-wide aggregation cannot depend on rank iteration order.
"""

import json

import pytest

from repro.experiments.common import run_collective, scaled_file_size
from repro.obs import (
    NULL_TELEMETRY,
    Telemetry,
    bottleneck_report,
    get_telemetry,
    prometheus_text,
    timeseries_csv,
    timeseries_jsonl,
    utilization_heatmap,
    utilization_matrix,
)
from repro.obs.stats import PrefetchStats
from repro.obs.telemetry import NULL_METRIC
from repro.sim import Environment

KB = 1024


def small_run(prefetch=False, **kwargs):
    """A fast 4C/4IO collective read (16 read calls total)."""
    request = 128 * KB
    return run_collective(
        request_size=request,
        file_size=scaled_file_size(request, n_compute=4, rounds=4),
        prefetch=prefetch,
        rounds=4,
        n_compute=4,
        n_io=4,
        **kwargs,
    )


# -- the core contract: observability never changes what a run measures ------


class TestBitIdentical:
    def test_full_instrumentation_equals_plain_run(self, prefetch_enabled):
        plain = small_run(prefetch=prefetch_enabled)
        instrumented = small_run(prefetch=prefetch_enabled, trace=True, telemetry=True)
        # Dataclass equality covers every measured field; breakdown and
        # bottleneck are compare=False so only measurements participate.
        assert plain == instrumented
        assert (plain.collective_bandwidth_mbps == instrumented.collective_bandwidth_mbps)
        assert plain.read_call_time_by_rank == instrumented.read_call_time_by_rank
        # And the instrumented run actually carried its extras.
        assert instrumented.breakdown is not None
        assert instrumented.bottleneck is not None
        assert plain.breakdown is None and plain.bottleneck is None

    def test_disabled_telemetry_registers_nothing(self, machine):
        telemetry = machine.obs.telemetry
        assert not telemetry
        assert telemetry.counter("x") is NULL_METRIC
        assert telemetry.gauge("x") is NULL_METRIC
        assert telemetry.histogram("x") is NULL_METRIC
        telemetry.register_probe("x", lambda: 1.0)
        assert telemetry.n_samples == 0
        assert not telemetry.registry.families

    def test_get_telemetry_fallback(self):
        assert get_telemetry(None) is NULL_TELEMETRY
        assert get_telemetry(object()) is NULL_TELEMETRY


# -- sampling ----------------------------------------------------------------


class TestSampler:
    def test_machine_run_produces_resource_series(self, machine_factory):
        machine = machine_factory(telemetry=True, telemetry_interval_s=0.01)
        report = small_run(telemetry=True, keep_machine=True)
        telemetry = report.machine.obs.telemetry
        assert telemetry.n_samples > 1
        disk = telemetry.series_by_name("disk_busy_seconds")
        assert disk, "disks must publish busy-seconds probes"
        for points in disk.values():
            values = [v for _t, v in points]
            assert values == sorted(values), "busy-seconds is monotonic"
        # Sample timestamps strictly increase (idempotent per-time).
        times = telemetry.sample_times
        assert all(b > a for a, b in zip(times, times[1:]))
        # The configured machine fixture is unused beyond exercising the
        # telemetry_interval_s config path.
        assert machine.obs.telemetry.interval_s == 0.01

    def test_zero_duration_run_still_samples_once(self):
        env = Environment()
        telemetry = Telemetry(env, enabled=True)
        telemetry.register_probe(
            "disk_busy_seconds",
            lambda: 0.0,
            labels={"device": "d0"},
            kind="counter",
        )
        env.run()  # no events: the clock never advances
        telemetry.finalize()
        assert telemetry.n_samples == 1
        assert telemetry.sample_times == [0.0]
        assert telemetry.elapsed_s == 0.0
        # Zero elapsed time -> no meaningful utilization -> no report.
        assert bottleneck_report(telemetry) is None
        assert utilization_matrix(telemetry, "disk_busy_seconds") is None
        assert "(no samples" in utilization_heatmap(telemetry)

    def test_interval_longer_than_run(self, machine_factory):
        machine = machine_factory(n_compute=2, n_io=2, telemetry=True, telemetry_interval_s=1e6)
        from repro.config import PFSConfig
        from repro.pfs import IOMode

        mount = machine.mount("/pfs", PFSConfig())
        machine.create_file(mount, "data", 256 * KB)
        handles = [None, None]

        def opener(rank):
            handles[rank] = yield from machine.clients[rank].open(
                mount, "data", IOMode.M_RECORD, rank=rank, nprocs=2
            )

        def reader(rank):
            yield from handles[rank].read(128 * KB)

        for rank in (0, 1):
            machine.spawn(opener(rank))
        machine.run()
        for rank in (0, 1):
            machine.spawn(reader(rank))
        machine.run()
        telemetry = machine.obs.telemetry
        telemetry.finalize()
        # First tick + finalize; the 1e6 s cadence never came due again.
        assert 1 <= telemetry.n_samples <= 2
        # The bottleneck report reads final counters, so it is exact
        # even though the sampler effectively never fired.
        report = bottleneck_report(telemetry)
        assert report is not None
        assert 0.0 < report.utilization <= 1.0
        assert report.elapsed_s == machine.env.now

    def test_finalize_is_idempotent(self, machine_factory):
        report = small_run(telemetry=True, keep_machine=True)
        telemetry = report.machine.obs.telemetry
        n = telemetry.n_samples
        telemetry.finalize()
        telemetry.finalize()
        assert telemetry.n_samples == n


# -- exporters ---------------------------------------------------------------


GOLDEN_PROMETHEUS = """\
# HELP reads_total Total read calls.
# TYPE reads_total counter
reads_total{node="0"} 3
reads_total{node="1"} 1
# TYPE queue_depth gauge
queue_depth{device="raid0"} 2
# HELP service_seconds Device service time.
# TYPE service_seconds histogram
service_seconds_bucket{device="raid0",le="0.01"} 1
service_seconds_bucket{device="raid0",le="0.1"} 2
service_seconds_bucket{device="raid0",le="1"} 2
service_seconds_bucket{device="raid0",le="+Inf"} 3
service_seconds_sum{device="raid0"} 5.055
service_seconds_count{device="raid0"} 3
"""


class TestExporters:
    def golden_telemetry(self):
        telemetry = Telemetry(env=None, enabled=True)
        telemetry.counter("reads_total", labels={"node": "0"}, help="Total read calls.").inc(3)
        telemetry.counter("reads_total", labels={"node": "1"}).inc()
        telemetry.gauge("queue_depth", labels={"device": "raid0"}).set(2)
        hist = telemetry.histogram(
            "service_seconds",
            labels={"device": "raid0"},
            help="Device service time.",
            buckets=(0.01, 0.1, 1.0),
        )
        for value in (0.005, 0.05, 5.0):
            hist.observe(value)
        return telemetry

    def test_prometheus_golden_snapshot(self):
        assert prometheus_text(self.golden_telemetry()) == GOLDEN_PROMETHEUS

    def test_csv_and_jsonl_shapes(self):
        telemetry = self.golden_telemetry()
        telemetry.sample(0.5)
        telemetry.sample(1.0)
        csv_text = timeseries_csv(telemetry)
        lines = csv_text.strip().split("\n")
        assert lines[0] == "time_s,metric,labels,value"
        # 3 scalar series (2 counters + 1 gauge; histogram excluded) x 2.
        assert len(lines) == 1 + 3 * 2
        assert "0.5,queue_depth,device=raid0,2" in lines
        rows = [json.loads(line) for line in timeseries_jsonl(telemetry).strip().split("\n")]
        assert len(rows) == 6
        assert {"t", "metric", "labels", "value"} == set(rows[0])
        assert {"t": 0.5, "metric": "queue_depth",
                "labels": {"device": "raid0"}, "value": 2.0} in rows

    def test_heatmap_and_timeline_render_from_a_real_run(self):
        report = small_run(telemetry=True, keep_machine=True)
        obs = report.machine.obs
        heatmap = obs.heatmap(bins=24)
        assert "utilization heatmap" in heatmap
        assert heatmap.count("|") >= 2 * 4, "one shaded row per raid device"
        timeline = obs.timeline(bins=16)
        assert "% busy" in timeline
        prom = obs.prometheus()
        assert "disk_busy_seconds" in prom
        assert "pfs_server_active_requests" in prom
        assert "client_read_bytes_total" in prom

    def test_bottleneck_names_the_disks_for_io_bound_reads(self):
        report = small_run(prefetch=True, telemetry=True)
        bottleneck = report.bottleneck
        assert bottleneck is not None
        # An I/O-bound collective read saturates the raid devices, not
        # the mesh or the CPUs (the paper's section 4.1 story).
        assert bottleneck.resource.startswith("disk ")
        assert bottleneck.utilization > 0.5
        assert "disk" in bottleneck.by_family
        described = bottleneck.describe()
        assert "bottleneck: disk" in described
        jsonable = bottleneck.to_jsonable()
        assert json.loads(json.dumps(jsonable)) == jsonable

    def test_bottleneck_none_when_disabled(self):
        assert bottleneck_report(NULL_TELEMETRY) is None


# -- PrefetchStats.merge algebra --------------------------------------------


def stats(hits, fractions):
    out = PrefetchStats(hits=hits, issued=hits)
    out.overlap_fractions = list(fractions)
    return out


class TestMergeAlgebra:
    def test_merge_is_commutative(self):
        a = stats(2, [0.9, 0.1])
        b = stats(3, [0.5])
        assert a.merge(b) == b.merge(a)

    def test_merge_is_associative(self):
        a = stats(1, [0.7, 0.2])
        b = stats(4, [1.0])
        c = stats(2, [0.0, 0.4])
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_sums_and_preserves_mean(self):
        a = stats(2, [0.8, 0.4])
        b = stats(1, [0.6])
        merged = a.merge(b)
        assert merged.hits == 3
        assert merged.overlap_fractions == [0.4, 0.6, 0.8]
        assert merged.mean_overlap_fraction == pytest.approx(0.6)
